//! Property-based tests (proptest) over the core data structures and the
//! memory hierarchy, checked against reference models.

use cbws_repro::core::{CbwsConfig, CbwsPredictor, CbwsVec, Differential};
use cbws_repro::sim_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy};
use cbws_repro::trace::{Addr, BlockId, LineAddr};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Eq. 1: a CBWS is a set — observing any sequence yields unique lines
    /// in first-touch order, bounded by capacity.
    #[test]
    fn cbws_uniqueness_and_order(lines in proptest::collection::vec(0u64..64, 0..120)) {
        let mut ws = CbwsVec::new(16);
        let mut reference = Vec::new();
        for &l in &lines {
            let line = LineAddr(l);
            let fresh = !reference.contains(&line) && reference.len() < 16;
            prop_assert_eq!(ws.observe(line), fresh);
            if fresh {
                reference.push(line);
            }
        }
        prop_assert_eq!(ws.lines(), &reference[..]);
        prop_assert!(ws.len() <= 16);
    }

    /// Eq. 2: Δ(A,B) = −Δ(B,A), and both align to the shorter vector.
    #[test]
    fn differential_antisymmetry(
        a in proptest::collection::vec(0u64..100_000, 1..16),
        b in proptest::collection::vec(0u64..100_000, 1..16),
    ) {
        let mk = |v: &[u64]| {
            let mut ws = CbwsVec::new(16);
            for &l in v {
                ws.observe(LineAddr(l));
            }
            ws
        };
        let (wa, wb) = (mk(&a), mk(&b));
        let dab = wb.differential(&wa);
        let dba = wa.differential(&wb);
        prop_assert_eq!(dab.len(), dba.len());
        prop_assert_eq!(dab.len(), wa.len().min(wb.len()));
        for (x, y) in dab.strides().iter().zip(dba.strides()) {
            prop_assert_eq!(i32::from(*x), -i32::from(*y));
        }
    }

    /// Applying Δ(A,B) to A recovers B (when strides fit 16 bits).
    #[test]
    fn differential_apply_roundtrip(
        a in proptest::collection::vec(0u64..1_000_000, 1..16),
        deltas in proptest::collection::vec(-30_000i64..30_000, 1..16),
    ) {
        let mut wa = CbwsVec::new(16);
        let mut wb = CbwsVec::new(16);
        for (i, &base) in a.iter().enumerate() {
            // Space lines out so shifted lines stay distinct and positive.
            let la = LineAddr(base + i as u64 * 2_000_000 + 1_000_000);
            wa.observe(la);
            if let Some(&d) = deltas.get(i) {
                wb.observe(la.offset(d));
            }
        }
        // Only proceed when all lines were distinct (observe() dedups).
        prop_assume!(wa.len() == a.len());
        prop_assume!(wb.len() == a.len().min(deltas.len()));
        let d = wb.differential(&wa);
        prop_assert!(!d.was_truncated());
        let predicted = d.apply(&wa);
        prop_assert_eq!(&predicted[..], wb.lines());
    }

    /// The 12-bit hash stays in range and is a pure function.
    #[test]
    fn differential_hash12_is_bounded_and_pure(
        strides in proptest::collection::vec(-4096i64..4096, 0..16)
    ) {
        let d1 = Differential::from_strides(strides.iter().copied());
        let d2 = Differential::from_strides(strides.iter().copied());
        prop_assert!(d1.hash12() <= 0xFFF);
        prop_assert_eq!(d1.hash12(), d2.hash12());
    }

    /// The cache never exceeds capacity, never duplicates a line, and
    /// residency matches a reference set under arbitrary insert/invalidate
    /// sequences.
    #[test]
    fn cache_capacity_and_residency(ops in proptest::collection::vec((0u64..40, any::<bool>()), 1..300)) {
        let cfg = CacheConfig { size_bytes: 8 * 64, assoc: 2, latency: 1, mshrs: 1 };
        let mut cache = Cache::new(cfg);
        let mut resident: HashSet<u64> = HashSet::new();
        for (line, invalidate) in ops {
            let l = LineAddr(line);
            if invalidate {
                cache.invalidate(l);
                resident.remove(&line);
            } else if let Some(victim) = cache.insert(l, false, None) {
                prop_assert!(resident.remove(&victim.line.0), "evicted non-resident line");
                resident.insert(line);
            } else {
                resident.insert(line);
            }
            prop_assert!(cache.resident_lines() <= cfg.lines());
            prop_assert_eq!(cache.resident_lines(), resident.len());
        }
        for &line in &resident {
            prop_assert!(cache.probe(LineAddr(line)));
        }
    }

    /// Hierarchy invariants under random demand/prefetch interleavings:
    /// the classification partitions demand L2 accesses, inclusion holds,
    /// and time only moves forward.
    #[test]
    fn hierarchy_invariants(
        ops in proptest::collection::vec((0u64..2000, any::<bool>(), any::<bool>()), 1..400)
    ) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let mut now = 0u64;
        for (line, store, prefetch) in ops {
            now += 17;
            if prefetch {
                m.enqueue_prefetch(now, LineAddr(line));
            } else {
                let out = m.demand_access(now, LineAddr(line).base(), store);
                prop_assert!(out.latency >= 2);
                prop_assert!(out.latency <= 2 + 30 + 300);
                // Inclusion: anything in L1 must be in L2.
                prop_assert!(m.l2().probe(LineAddr(line)));
            }
        }
        let stats = m.finish(now);
        prop_assert!(stats.classification_is_partition());
        // Conservation: every issued prefetch either filled or was still
        // in flight at finish (then landed).
        prop_assert_eq!(stats.prefetch_issued, stats.prefetch_fills);
        // Wrong prefetches cannot exceed fills.
        prop_assert!(stats.wrong <= stats.prefetch_fills);
    }

    /// The CBWS predictor is deterministic and its prediction, if any, has
    /// bounded size (≤ prediction_depth × max_vector lines).
    #[test]
    fn predictor_prediction_bounded(
        blocks in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 1..20), 1..40
        )
    ) {
        let cfg = CbwsConfig::default();
        let mut p1 = CbwsPredictor::new(cfg);
        let mut p2 = CbwsPredictor::new(cfg);
        for block in &blocks {
            p1.block_begin(BlockId(0));
            p2.block_begin(BlockId(0));
            for &l in block {
                p1.observe(LineAddr(l));
                p2.observe(LineAddr(l));
            }
            let o1 = p1.block_end(BlockId(0));
            let o2 = p2.block_end(BlockId(0));
            prop_assert_eq!(&o1, &o2, "predictor must be deterministic");
            prop_assert!(o1.len() <= cfg.prediction_depth * cfg.max_vector);
        }
        prop_assert_eq!(p1.stats().blocks, blocks.len() as u64);
    }

    /// L1 hits never perturb prefetcher-visible L2 state: a re-access of a
    /// resident line is free and classified as an L1 hit.
    #[test]
    fn repeated_access_is_l1_hit(line in 0u64..512) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let addr = Addr(line * 64);
        m.demand_access(0, addr, false);
        let second = m.demand_access(400, addr, false);
        prop_assert!(second.l1_hit);
        prop_assert_eq!(second.latency, 2);
    }
}
