//! Integration tests asserting the paper's qualitative claims end-to-end:
//! full simulations (trace → core → hierarchy → prefetcher) must reproduce
//! the per-benchmark winners and losers of §VII.

use cbws_repro::harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_repro::stats::RunRecord;
use cbws_repro::workloads::{by_name, Scale};

fn run(name: &str, kind: PrefetcherKind) -> RunRecord {
    let w = by_name(name).unwrap_or_else(|| panic!("workload {name} not registered"));
    let trace = w.generate(Scale::Small);
    Simulator::new(SystemConfig::default()).run(name, true, &trace, kind)
}

#[test]
fn hybrid_beats_sms_on_block_structured_loops() {
    // §VII-A: "the CBWS schemes effectively eliminate misses in block
    // structured benchmarks such as sgemm and radix", and both CBWS
    // prefetchers outperform all others on nw, sgemm, radix, stencil,
    // lu_ncb.
    for name in [
        "sgemm-medium",
        "radix-simlarge",
        "stencil-default",
        "nw",
        "lu-ncb-simlarge",
    ] {
        let sms = run(name, PrefetcherKind::Sms);
        let hybrid = run(name, PrefetcherKind::CbwsSms);
        assert!(
            hybrid.mpki() < sms.mpki() * 0.8,
            "{name}: hybrid MPKI {:.2} not clearly below SMS {:.2}",
            hybrid.mpki(),
            sms.mpki()
        );
        assert!(
            hybrid.ipc() >= sms.ipc(),
            "{name}: hybrid IPC {:.3} below SMS {:.3}",
            hybrid.ipc(),
            sms.ipc()
        );
    }
}

#[test]
fn cbws_cannot_predict_data_dependent_histo() {
    // Fig. 16 / §VII-C: histo's access pattern is input data, so CBWS
    // gains nothing over no-prefetching, and the hybrid rides on SMS.
    let none = run("histo-large", PrefetcherKind::None);
    let cbws = run("histo-large", PrefetcherKind::Cbws);
    let sms = run("histo-large", PrefetcherKind::Sms);
    let hybrid = run("histo-large", PrefetcherKind::CbwsSms);
    assert!(
        (cbws.mpki() - none.mpki()).abs() / none.mpki() < 0.05,
        "standalone CBWS should not move histo: {:.2} vs {:.2}",
        cbws.mpki(),
        none.mpki()
    );
    assert!((hybrid.mpki() - sms.mpki()).abs() / sms.mpki() < 0.1);
}

#[test]
fn soplex_skew_is_not_enough() {
    // §VII-A: "the failure to reduce MPKI in soplex demonstrates that a
    // skewed distribution of differentials is not always sufficient".
    let none = run("450.soplex-ref", PrefetcherKind::None);
    let cbws = run("450.soplex-ref", PrefetcherKind::Cbws);
    assert!(
        cbws.mpki() > none.mpki() * 0.9,
        "CBWS should not fix soplex: {:.2} vs {:.2}",
        cbws.mpki(),
        none.mpki()
    );
}

#[test]
fn bzip2_oversized_blocks_defeat_standalone_cbws() {
    // §VII-C: bzip2's loops read hundreds of lines per iteration while
    // CBWS traces only 16, so standalone CBWS is far behind SMS.
    let sms = run("401.bzip2-source", PrefetcherKind::Sms);
    let cbws = run("401.bzip2-source", PrefetcherKind::Cbws);
    assert!(
        cbws.mpki() > sms.mpki() * 2.0,
        "standalone CBWS should trail SMS badly on bzip2: {:.2} vs {:.2}",
        cbws.mpki(),
        sms.mpki()
    );
    // The hybrid must not be dragged down below SMS.
    let hybrid = run("401.bzip2-source", PrefetcherKind::CbwsSms);
    assert!(hybrid.ipc() >= sms.ipc() * 0.95);
}

#[test]
fn streamcluster_thrashes_standalone_cbws_but_hybrid_recovers() {
    // §VII-A: fft and streamcluster have too many distinct differential
    // vectors for the 16-entry history table; the hybrid falls back to SMS.
    let sms = run("streamcluster-simlarge", PrefetcherKind::Sms);
    let cbws = run("streamcluster-simlarge", PrefetcherKind::Cbws);
    let hybrid = run("streamcluster-simlarge", PrefetcherKind::CbwsSms);
    assert!(cbws.mpki() > sms.mpki());
    assert!(hybrid.ipc() >= sms.ipc() * 0.95);
}

#[test]
fn hybrid_never_loses_badly_to_sms() {
    // The integration's whole point (§VII): falling back to SMS bounds the
    // downside everywhere.
    for name in [
        "429.mcf-ref",
        "462.libquantum-ref",
        "433.milc-su3imp",
        "fft-simlarge",
        "lbm-long",
        "mri-q-large",
    ] {
        let sms = run(name, PrefetcherKind::Sms);
        let hybrid = run(name, PrefetcherKind::CbwsSms);
        assert!(
            hybrid.ipc() >= sms.ipc() * 0.9,
            "{name}: hybrid {:.3} far below SMS {:.3}",
            hybrid.ipc(),
            sms.ipc()
        );
    }
}

#[test]
fn standalone_cbws_is_the_most_accurate_scheme() {
    // §VII-B: "the CBWS scheme achieves the best accuracy, as wrong
    // accesses average to 5% of all demand accesses" in the MI group.
    // Asserted here on a representative subset (the full-suite averages
    // are recorded in EXPERIMENTS.md: 5.6% measured vs the paper's 5%).
    let names = [
        "nw",
        "lu-ncb-simlarge",
        "sgemm-medium",
        "radix-simlarge",
        "433.milc-su3imp",
    ];
    let mut cbws_wrong = 0.0;
    for name in names {
        cbws_wrong += run(name, PrefetcherKind::Cbws).timeliness().wrong;
    }
    let mean = cbws_wrong / names.len() as f64;
    assert!(
        mean < 0.08,
        "standalone CBWS mean wrong {mean:.3} exceeds the paper's ~5%"
    );
}

#[test]
fn hybrid_has_the_best_timeliness() {
    // §VII-B: integrating CBWS improves timeliness — the timely fraction
    // rises over standalone SMS (paper: 24% -> 31% on the MI group).
    let names = [
        "nw",
        "lu-ncb-simlarge",
        "sgemm-medium",
        "radix-simlarge",
        "433.milc-su3imp",
    ];
    let mut sms_timely = 0.0;
    let mut hybrid_timely = 0.0;
    for name in names {
        sms_timely += run(name, PrefetcherKind::Sms).timeliness().timely;
        hybrid_timely += run(name, PrefetcherKind::CbwsSms).timeliness().timely;
    }
    assert!(
        hybrid_timely > sms_timely,
        "hybrid mean timely {:.3} vs SMS {:.3}",
        hybrid_timely / names.len() as f64,
        sms_timely / names.len() as f64
    );
}

#[test]
fn prefetching_never_changes_committed_work() {
    for name in ["stencil-default", "histo-large"] {
        let counts: Vec<u64> = PrefetcherKind::ALL
            .iter()
            .map(|&k| run(name, k).cpu.instructions)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{name}: {counts:?}"
        );
    }
}

#[test]
fn storage_budget_claims_hold() {
    let cfg = SystemConfig::default();
    // "The proposed scheme requires less than 1KB of storage, which is
    // small in comparison to the other evaluated schemes."
    let cbws = PrefetcherKind::Cbws.storage_bits(&cfg);
    assert!(cbws < 8192);
    for kind in [
        PrefetcherKind::Stride,
        PrefetcherKind::GhbGDc,
        PrefetcherKind::GhbPcDc,
        PrefetcherKind::Sms,
    ] {
        assert!(kind.storage_bits(&cfg) > cbws, "{}", kind.name());
    }
}

#[test]
fn classification_partitions_on_every_mi_workload() {
    for w in cbws_repro::workloads::mi_suite() {
        let trace = w.generate(Scale::Tiny);
        let sim = Simulator::new(SystemConfig::default());
        for kind in [PrefetcherKind::Sms, PrefetcherKind::CbwsSms] {
            let r = sim.run(w.name, true, &trace, kind);
            assert!(
                r.mem.classification_is_partition(),
                "{} under {}: {:?}",
                w.name,
                kind.name(),
                r.mem
            );
        }
    }
}
