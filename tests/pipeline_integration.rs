//! Cross-crate integration tests of the DSL → annotator → simulator
//! pipeline and of end-to-end reproducibility.

use cbws_repro::core::analysis::{collect_block_histories, DifferentialSkew};
use cbws_repro::harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_repro::workloads::dsl::{e, Program, Stmt};
use cbws_repro::workloads::{by_name, Scale};

/// A strided two-stream nest used across these tests.
fn saxpy_nest(n: i64) -> Program {
    let x = 0x1000_0000i64;
    let y = 0x3000_0000i64;
    Program::new(vec![Stmt::Loop {
        var: "i",
        count: e::c(n),
        body: vec![
            Stmt::Load {
                pc: 0x10,
                addr: e::v("i").mul(e::c(512)).add(e::c(x)),
            },
            Stmt::Load {
                pc: 0x14,
                addr: e::v("i").mul(e::c(512)).add(e::c(y)),
            },
            Stmt::Alu { pc: 0x18, count: 2 },
            Stmt::Store {
                pc: 0x1c,
                addr: e::v("i").mul(e::c(512)).add(e::c(y)),
            },
        ],
    }])
}

#[test]
fn dsl_to_simulation_pipeline() {
    let mut p = saxpy_nest(4000);
    assert_eq!(p.annotate(), 1);
    let trace = p.execute().expect("closed program");
    let sim = Simulator::new(SystemConfig::default());
    let none = sim.run("saxpy", true, &trace, PrefetcherKind::None);
    let hybrid = sim.run("saxpy", true, &trace, PrefetcherKind::CbwsSms);
    assert!(
        hybrid.mpki() < none.mpki() / 2.0,
        "{} vs {}",
        hybrid.mpki(),
        none.mpki()
    );
    assert!(hybrid.ipc() > none.ipc());
}

#[test]
fn unrolling_preserves_simulated_behaviour() {
    // The paper's §IV-A invariance claim, measured at the far end of the
    // pipeline: unrolling must not change the CBWS prefetcher's
    // effectiveness because the annotations replicate with the body.
    let sim = Simulator::new(SystemConfig::default());
    let mut plain = saxpy_nest(4000);
    plain.annotate();
    let plain_trace = plain.execute().unwrap();
    let mut unrolled = saxpy_nest(4000);
    unrolled.annotate();
    unrolled.unroll_innermost(4);
    let unrolled_trace = unrolled.execute().unwrap();

    let a = sim.run("saxpy", true, &plain_trace, PrefetcherKind::Cbws);
    let b = sim.run(
        "saxpy-unrolled",
        true,
        &unrolled_trace,
        PrefetcherKind::Cbws,
    );
    // Memory-side behaviour is near-identical: the access stream is the
    // same; only front-end timing shifts slightly (fewer back-branches),
    // which can move a handful of prefetches across timeliness classes.
    assert_eq!(a.mem.l1_accesses, b.mem.l1_accesses);
    let miss_gap = (a.mem.l2_misses() as f64 - b.mem.l2_misses() as f64).abs();
    assert!(
        miss_gap / a.mem.l1_accesses as f64 <= 0.01,
        "unrolling changed CBWS effectiveness: {} vs {} misses over {} accesses",
        a.mem.l2_misses(),
        b.mem.l2_misses(),
        a.mem.l1_accesses
    );
}

#[test]
fn full_runs_are_deterministic() {
    let w = by_name("429.mcf-ref").unwrap();
    let sim = Simulator::new(SystemConfig::default());
    let t1 = w.generate(Scale::Tiny);
    let t2 = w.generate(Scale::Tiny);
    let a = sim.run(w.name, true, &t1, PrefetcherKind::CbwsSms);
    let b = sim.run(w.name, true, &t2, PrefetcherKind::CbwsSms);
    assert_eq!(a.cpu, b.cpu);
    assert_eq!(a.mem, b.mem);
}

#[test]
fn offline_analysis_agrees_with_online_predictor() {
    // The trace-level skew (Fig. 5 machinery) must be consistent with the
    // online predictor's hit rate: a single-differential loop ⇒ near-100%
    // table hits after warm-up.
    let mut p = saxpy_nest(400);
    p.annotate();
    let trace = p.execute().unwrap();
    let h = collect_block_histories(&trace, 16);
    let skew = DifferentialSkew::from_histories(h.values());
    assert_eq!(skew.distinct(), 1);

    let sim = Simulator::new(SystemConfig::default());
    let r = sim.run("saxpy", true, &trace, PrefetcherKind::Cbws);
    // Online: all but the warm-up iterations hit the history table, so the
    // steady-state misses are a small fraction of the no-prefetch misses.
    let base = sim.run("saxpy", true, &trace, PrefetcherKind::None);
    assert!(r.mem.l2_misses() * 4 < base.mem.l2_misses());
}

#[test]
fn workload_registry_round_trips_through_simulation() {
    // Every registered workload must survive a full Tiny simulation under
    // the headline prefetcher without violating hierarchy invariants.
    let sim = Simulator::new(SystemConfig::default());
    for w in cbws_repro::workloads::ALL {
        let trace = w.generate(Scale::Tiny);
        let r = sim.run(w.name, false, &trace, PrefetcherKind::CbwsSms);
        assert!(r.cpu.cycles > 0, "{}", w.name);
        assert!(r.mem.classification_is_partition(), "{}", w.name);
        assert_eq!(r.cpu.instructions, trace.stats().instructions, "{}", w.name);
    }
}

#[test]
fn trace_stats_match_cpu_accounting() {
    let w = by_name("sgemm-medium").unwrap();
    let trace = w.generate(Scale::Tiny);
    let s = trace.stats();
    let sim = Simulator::new(SystemConfig::default());
    let r = sim.run(w.name, true, &trace, PrefetcherKind::None);
    assert_eq!(r.cpu.instructions, s.instructions);
    assert_eq!(r.cpu.mem_accesses, s.mem_accesses);
    assert_eq!(r.mem.l1_accesses, s.mem_accesses);
}
