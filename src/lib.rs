#![warn(missing_docs)]

//! # cbws-repro
//!
//! A from-scratch Rust reproduction of *Loop-Aware Memory Prefetching Using
//! Code Block Working Sets* (Fuchs, Mannor, Weiser, Etsion — MICRO 2014).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`core`] — the paper's contribution: CBWS vectors, differentials, the
//!   CBWS predictor hardware, and the CBWS+SMS hybrid;
//! * [`prefetchers`] — the Stride, GHB G/DC, GHB PC/DC, and SMS baselines;
//! * [`sim_mem`] / [`sim_cpu`] — the Table II memory hierarchy and the
//!   approximate out-of-order core timing model;
//! * [`trace`] — trace events and the builder used by workloads;
//! * [`workloads`] — the 30 synthetic benchmark kernels plus the loop-nest
//!   DSL and its annotation pass;
//! * [`stats`] — MPKI, IPC, performance/cost, and the Fig. 13 taxonomy;
//! * [`harness`] — full-system simulation plus one regenerator per
//!   table/figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use cbws_repro::harness::{PrefetcherKind, Simulator, SystemConfig};
//! use cbws_repro::workloads::{by_name, Scale};
//!
//! let trace = by_name("stencil-default").unwrap().generate(Scale::Tiny);
//! let sim = Simulator::new(SystemConfig::default());
//! let sms = sim.run("stencil-default", true, &trace, PrefetcherKind::Sms);
//! let hybrid = sim.run("stencil-default", true, &trace, PrefetcherKind::CbwsSms);
//! // On the paper's running example the hybrid beats SMS.
//! assert!(hybrid.ipc() > sms.ipc());
//! ```

pub use cbws_core as core;
pub use cbws_harness as harness;
pub use cbws_prefetchers as prefetchers;
pub use cbws_sim_cpu as sim_cpu;
pub use cbws_sim_mem as sim_mem;
pub use cbws_stats as stats;
pub use cbws_trace as trace;
pub use cbws_workloads as workloads;
