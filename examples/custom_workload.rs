//! Write your own kernel against the loop-nest DSL, let the annotation
//! pass mark its innermost loops, and simulate it under the CBWS+SMS
//! prefetcher — the full user journey for a new workload.
//!
//! Run with: `cargo run --release --example custom_workload`

use cbws_repro::harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_repro::workloads::dsl::{e, Cond, Program, Stmt};

fn main() {
    // A two-array saxpy-like nest with a guard branch:
    // for i in 0..256 { for j in 0..64 {
    //     if (i + j) % 7 < 6 { y[i*64 + j] += a * x[i*64 + j]; }
    // } }
    let x = 0x1000_0000i64;
    let y = 0x2000_0000i64;
    let elem = |arr: i64| {
        e::v("i")
            .mul(e::c(64))
            .add(e::v("j"))
            .mul(e::c(8))
            .add(e::c(arr))
    };
    let mut program = Program::new(vec![Stmt::Loop {
        var: "i",
        count: e::c(256),
        body: vec![Stmt::Loop {
            var: "j",
            count: e::c(64),
            body: vec![Stmt::If {
                pc: 0x30,
                cond: Cond::Lt(
                    cbws_repro::workloads::dsl::Expr::Rem(
                        Box::new(e::v("i").add(e::v("j"))),
                        Box::new(e::c(7)),
                    ),
                    e::c(6),
                ),
                then: vec![
                    Stmt::Load {
                        pc: 0x10,
                        addr: elem(x),
                    },
                    Stmt::Load {
                        pc: 0x14,
                        addr: elem(y),
                    },
                    Stmt::Alu { pc: 0x18, count: 2 },
                    Stmt::Store {
                        pc: 0x1c,
                        addr: elem(y),
                    },
                ],
                otherwise: vec![Stmt::Alu { pc: 0x20, count: 1 }],
            }],
        }],
    }]);

    // The "compiler pass": annotate innermost loops with block markers.
    let annotated = program.annotate();
    println!("annotation pass marked {annotated} innermost loop(s)");

    let trace = program.execute().expect("program is closed");
    let s = trace.stats();
    println!(
        "trace: {} instructions, {} accesses, {} block instances",
        s.instructions, s.mem_accesses, s.dynamic_blocks
    );
    println!(
        "blocks fitting 16 lines: {:.1}%",
        s.block_ws_within(16) * 100.0
    );

    let sim = Simulator::new(SystemConfig::default());
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::Sms,
        PrefetcherKind::CbwsSms,
    ] {
        let r = sim.run("custom-saxpy", true, &trace, kind);
        println!(
            "{:<12} IPC {:.3}  MPKI {:.2}",
            r.prefetcher,
            r.ipc(),
            r.mpki()
        );
    }
}
