//! Run all seven prefetcher configurations of the paper's evaluation on a
//! chosen set of workloads and print the per-benchmark winners.
//!
//! Run with:
//! `cargo run --release --example prefetcher_shootout [workload ...]`
//! (defaults to four representative benchmarks).

use cbws_repro::harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_repro::workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec![
            "stencil-default",
            "histo-large",
            "401.bzip2-source",
            "lu-ncb-simlarge",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    let sim = Simulator::new(SystemConfig::default());
    for name in names {
        let Some(w) = by_name(name) else {
            eprintln!("unknown workload `{name}` — see cbws_workloads::ALL");
            continue;
        };
        let trace = w.generate(Scale::Small);
        println!("\n== {} ({}) ==", w.name, w.suite);
        println!("   {}", w.pattern);
        let mut best: Option<(String, f64)> = None;
        for kind in PrefetcherKind::ALL {
            let r = sim.run(w.name, true, &trace, kind);
            let ipc = r.ipc();
            println!(
                "  {:<12} IPC {:>6.3}  MPKI {:>8.2}  wrong {:>5.1}%",
                r.prefetcher,
                ipc,
                r.mpki(),
                r.timeliness().wrong * 100.0
            );
            if best.as_ref().is_none_or(|(_, b)| ipc > *b) {
                best = Some((r.prefetcher.clone(), ipc));
            }
        }
        if let Some((who, ipc)) = best {
            println!("  -> best: {who} (IPC {ipc:.3})");
        }
    }
}
