//! Quickstart: simulate one workload under SMS and under CBWS+SMS and
//! compare the metrics the paper reports.
//!
//! Run with: `cargo run --release --example quickstart`

use cbws_repro::harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_repro::workloads::{by_name, Scale};

fn main() {
    let workload = by_name("stencil-default").expect("registered workload");
    println!("workload: {} — {}", workload.name, workload.pattern);

    let trace = workload.generate(Scale::Small);
    let stats = trace.stats();
    println!(
        "trace: {} instructions, {} memory accesses, {} loop iterations\n",
        stats.instructions, stats.mem_accesses, stats.dynamic_blocks
    );

    let sim = Simulator::new(SystemConfig::default());
    println!(
        "{:<12} {:>8} {:>8} {:>12} {:>10}",
        "prefetcher", "IPC", "MPKI", "bytes read", "timely %"
    );
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::Sms,
        PrefetcherKind::Cbws,
        PrefetcherKind::CbwsSms,
    ] {
        let r = sim.run(workload.name, true, &trace, kind);
        println!(
            "{:<12} {:>8.3} {:>8.2} {:>12} {:>10.1}",
            r.prefetcher,
            r.ipc(),
            r.mpki(),
            r.mem.bytes_read(),
            r.timeliness().timely * 100.0
        );
    }
    println!(
        "\nThe CBWS schemes lock onto the stencil's constant 1024-line\n\
         differential (Fig. 4) and prefetch whole future iterations, which\n\
         the 2 KB-region SMS prefetcher cannot follow."
    );
}
