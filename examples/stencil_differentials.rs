//! Reproduces the paper's running example (Figs. 2-4 and Table I): build
//! CBWS vectors from the Parboil Stencil inner loop, show their constant
//! differential, and walk the CBWS predictor through Algorithm 1 by hand.
//!
//! Run with: `cargo run --release --example stencil_differentials`

use cbws_repro::core::analysis::collect_block_histories;
use cbws_repro::core::{CbwsConfig, CbwsPredictor, CbwsVec};
use cbws_repro::trace::{BlockId, LineAddr};
use cbws_repro::workloads::{by_name, Scale};

fn main() {
    // Part 1 — Figs. 3 & 4 from the real kernel trace.
    let trace = by_name("stencil-default")
        .expect("registered")
        .generate(Scale::Tiny);
    let histories = collect_block_histories(&trace, 16);
    let history = histories
        .values()
        .next()
        .expect("stencil has one annotated loop");

    println!("Fig. 3 — CBWS vectors of eight stencil iterations:");
    for (i, ws) in history.instances.iter().take(8).enumerate() {
        println!("  CBWS{i} = {ws}");
    }

    println!("\nFig. 4 — their differentials (element-wise deltas, in lines):");
    for (i, pair) in history.instances.windows(2).take(7).enumerate() {
        println!(
            "  CBWS{} - CBWS{} = {}",
            i + 1,
            i,
            pair[1].differential(&pair[0])
        );
    }

    // Part 2 — Table I in miniature: feed two handcrafted block instances
    // through the predictor and watch the differential form.
    println!("\nTable I — CBWS construction from a two-instance trace:");
    let mut a = CbwsVec::new(16);
    for line in [0x120u64, 0x3F9, 0x1FF] {
        a.observe(LineAddr(line));
    }
    let mut b = CbwsVec::new(16);
    for line in [0x124u64, 0x3F1, 0x1FF] {
        b.observe(LineAddr(line));
    }
    println!("  CBWS0          = {a}");
    println!("  CBWS1          = {b}");
    println!("  Δ(0,1)         = {}", b.differential(&a));

    // Part 3 — the hardware predicting the next working set.
    println!("\nAlgorithm 1 — steady-state prediction on a strided loop:");
    let mut p = CbwsPredictor::new(CbwsConfig::default());
    let mut predicted = Vec::new();
    for i in 0..10u64 {
        p.block_begin(BlockId(0));
        p.observe(LineAddr(0x80));
        p.observe(LineAddr(0x1000 + i * 1024));
        p.observe(LineAddr(0x9000 + i * 1024));
        predicted = p.block_end(BlockId(0));
    }
    println!("  after 10 iterations the predictor prefetches: {predicted:?}");
    println!("  table hits so far: {}", p.stats().prediction_hits);
    assert!(predicted.contains(&LineAddr(0x1000 + 10 * 1024)));
}
