//! End-to-end drift-check tests: the committed repo must pass, and a
//! perturbed quote must demonstrably fail.

use cbws_harness::{component_registry, SystemConfig};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    docgen::repo_root(None)
}

#[test]
fn committed_repo_passes_the_full_check() {
    let root = repo_root();
    let registry = component_registry(&SystemConfig::default());
    let problems = docgen::check::run(&root, &registry);
    assert!(
        problems.is_empty(),
        "docgen --check should pass on the committed tree:\n{}",
        problems.join("\n")
    );
}

/// Copies the files the quote check reads into a scratch root.
fn scratch_docs_root(tag: &str) -> PathBuf {
    let root = repo_root();
    let scratch = std::env::temp_dir().join(format!("docgen-drift-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(scratch.join("results")).unwrap();
    for doc in ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"] {
        std::fs::copy(root.join(doc), scratch.join(doc)).unwrap();
    }
    for entry in std::fs::read_dir(root.join("results")).unwrap().flatten() {
        if entry.path().is_file() {
            std::fs::copy(
                entry.path(),
                scratch.join("results").join(entry.file_name()),
            )
            .unwrap();
        }
    }
    scratch
}

fn perturb(path: &Path, from: &str, to: &str) {
    let text = std::fs::read_to_string(path).unwrap();
    assert!(
        text.contains(from),
        "expected {} to contain {from:?}",
        path.display()
    );
    std::fs::write(path, text.replace(from, to)).unwrap();
}

#[test]
fn perturbed_readme_number_fails_the_quote_check() {
    let registry = component_registry(&SystemConfig::default());
    let scratch = scratch_docs_root("readme");

    // Sanity: the untouched copy passes.
    let clean = docgen::check::check_quotes(&scratch, &registry);
    assert!(
        clean.is_empty(),
        "clean copy should pass:\n{}",
        clean.join("\n")
    );

    // Inflate the headline speedup the README quotes.
    perturb(
        &scratch.join("README.md"),
        "CBWS+SMS vs SMS: 1.21×",
        "CBWS+SMS vs SMS: 1.35×",
    );
    let problems = docgen::check::check_quotes(&scratch, &registry);
    assert!(
        problems
            .iter()
            .any(|p| p.contains("speedup-mi") && p.contains("README.md")),
        "inflated README headline must be caught:\n{}",
        problems.join("\n")
    );

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn perturbed_artifact_fails_the_quote_check() {
    let registry = component_registry(&SystemConfig::default());
    let scratch = scratch_docs_root("artifact");

    // Shift the committed CSV out from under the docs: every doc quoting
    // the old geomean is now stale.
    perturb(
        &scratch.join("results/fig14_speedup.csv"),
        "average-MI,0.674,0.811,0.908,0.878,1.000,0.937,1.209",
        "average-MI,0.674,0.811,0.908,0.878,1.000,0.937,1.302",
    );
    let problems = docgen::check::check_quotes(&scratch, &registry);
    assert!(
        problems.iter().any(|p| p.contains("speedup-mi")),
        "stale docs after an artifact change must be caught:\n{}",
        problems.join("\n")
    );

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn describe_vs_tab03_consistency_catches_a_forged_artifact() {
    let registry = component_registry(&SystemConfig::default());
    let scratch = scratch_docs_root("tab03");
    perturb(
        &scratch.join("results/tab03_storage.csv"),
        "CBWS,8080,0.99",
        "CBWS,9000,1.10",
    );
    let problems = docgen::check::check_describe_consistency(&scratch, &registry);
    assert!(
        problems
            .iter()
            .any(|p| p.contains("CBWS") && p.contains("tab03")),
        "forged Table III must disagree with Describe:\n{}",
        problems.join("\n")
    );
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn stale_book_page_is_reported() {
    let root = repo_root();
    let registry = component_registry(&SystemConfig::default());
    let files = docgen::book::build_book(&root, &registry).unwrap();
    // Diffing against the committed tree with one generated page altered in
    // memory must flag exactly that page as stale.
    let mut tampered = files.clone();
    let key = "src/scorecard.md".to_string();
    let page = tampered.get_mut(&key).expect("scorecard is generated");
    page.extend_from_slice(b"\ntampered\n");
    let problems = docgen::book::diff_book(&root, &tampered);
    assert!(
        problems.iter().any(|p| p.contains("scorecard.md")),
        "{problems:?}"
    );
    // And the untampered set matches the committed tree exactly.
    assert!(docgen::book::diff_book(&root, &files).is_empty());
}
