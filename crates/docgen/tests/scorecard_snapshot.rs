//! Snapshot test for the generated scorecard page, against a tiny-scale
//! fixture artifact set, so renderer changes are reviewed as a golden-file
//! diff instead of silently reshaping the book.
//!
//! Regenerate the golden after an intentional change with:
//! `DOCGEN_UPDATE_GOLDEN=1 cargo test -p docgen --test scorecard_snapshot`

use cbws_harness::{component_registry, SystemConfig};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tiny")
}

#[test]
fn scorecard_page_matches_the_golden_snapshot() {
    let root = fixture_root();
    let registry = component_registry(&SystemConfig::default());
    let page = docgen::pages::scorecard_page(&root, &registry);
    let golden_path = root.join("scorecard.golden.md");
    if std::env::var_os("DOCGEN_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &page).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden snapshot missing — run with DOCGEN_UPDATE_GOLDEN=1");
    assert_eq!(
        page, golden,
        "scorecard rendering changed; rerun with DOCGEN_UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

#[test]
fn tiny_fixture_exercises_every_source_kind() {
    // The fixture intentionally feeds every claim: Csv-backed claims from
    // the tiny artifacts, Describe-backed claims from the live registry.
    let root = fixture_root();
    let registry = component_registry(&SystemConfig::default());
    for claim in docgen::claims::claims() {
        docgen::claims::measure(&claim, &root, &registry)
            .unwrap_or_else(|e| panic!("claim `{}` unmeasurable on the fixture: {e}", claim.id));
    }
}
