//! Minimal CSV reader for the committed `results/*.csv` artifacts.
//!
//! The harness writes plain comma-separated tables without quoting or
//! escaping, so a split-on-comma parser is exact for these files.

use std::path::Path;

/// One parsed CSV file: a header row plus data rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Column names from the first line.
    pub header: Vec<String>,
    /// Remaining lines, split on commas.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Parses CSV text (no quoting, as written by the harness).
    pub fn parse(text: &str) -> Table {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
            .unwrap_or_default();
        let rows = lines
            .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
            .collect();
        Table { header, rows }
    }

    /// Loads and parses a CSV file.
    pub fn load(path: &Path) -> Result<Table, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(Table::parse(&text))
    }

    /// Index of the column named `name`.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// The cell at (`key`, `col`), where `key` matches the leading cells of
    /// a row exactly (one key cell for most tables; two for long-format
    /// tables like `fig13_timeliness.csv`).
    pub fn cell(&self, key: &[&str], col: &str) -> Option<&str> {
        let c = self.col(col)?;
        let row = self.rows.iter().find(|r| {
            r.len() > c && r.iter().zip(key).all(|(a, b)| a == b) && r.len() >= key.len()
        })?;
        row.get(c).map(String::as_str)
    }

    /// Renders the table as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_lookup() {
        let t = Table::parse("a,b,c\nx,1,2\ny,3,4\n");
        assert_eq!(t.header, ["a", "b", "c"]);
        assert_eq!(t.cell(&["y"], "c"), Some("4"));
        assert_eq!(t.cell(&["z"], "c"), None);
        assert_eq!(t.cell(&["y"], "nope"), None);
    }

    #[test]
    fn two_cell_key() {
        let t = Table::parse("bench,pf,v\na,SMS,1\na,CBWS,2\nb,SMS,3\n");
        assert_eq!(t.cell(&["a", "CBWS"], "v"), Some("2"));
        assert_eq!(t.cell(&["b", "SMS"], "v"), Some("3"));
    }

    #[test]
    fn markdown_shape() {
        let t = Table::parse("a,b\n1,2\n");
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n| 1 | 2 |"));
    }
}
