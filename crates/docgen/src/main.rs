//! `docgen` CLI: regenerate the book, check doc drift, render HTML.
//!
//! ```text
//! cargo run -p docgen                  # regenerate book/ in place
//! cargo run -p docgen -- --check      # fail (exit 1) on any doc drift
//! cargo run -p docgen -- --html      # render book/src to book/html
//! cargo run -p docgen -- --root DIR  # operate on another checkout
//! ```

use cbws_harness::{component_registry, SystemConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "docgen — living-documentation generator\n\n\
             USAGE: docgen [--check | --html [DIR]] [--root DIR]\n\n\
             (default)    regenerate book/ from the code and results/ artifacts\n\
             --check      verify committed book, doc-quoted numbers, Describe\n\
             \u{20}            output, and links against the artifacts; exit 1 on drift\n\
             --html [DIR] render book/src to static HTML (default book/html)\n\
             --root DIR   repository root to operate on (default: this checkout)"
        );
        return ExitCode::SUCCESS;
    }
    let root_arg = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let root = docgen::repo_root(root_arg);
    let registry = component_registry(&SystemConfig::default());

    if args.iter().any(|a| a == "--check") {
        let problems = docgen::check::run(&root, &registry);
        return if problems.is_empty() {
            println!(
                "docgen --check: book, quoted numbers, Describe output, \
                 links, and service routes are all in sync"
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("docgen --check found {} problem(s):", problems.len());
            for p in &problems {
                eprintln!("  - {p}");
            }
            ExitCode::FAILURE
        };
    }

    if let Some(i) = args.iter().position(|a| a == "--html") {
        let out = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(|a| root.join(a))
            .unwrap_or_else(|| root.join("book/html"));
        return match docgen::html::render_book(&root, &out) {
            Ok(n) => {
                println!("rendered {n} page(s) to {}", out.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("docgen --html: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match docgen::book::build_book(&root, &registry)
        .and_then(|files| docgen::book::write_book(&root, &files).map(|()| files.len()))
    {
        Ok(n) => {
            println!("wrote {n} file(s) under {}", root.join("book").display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("docgen: {e}");
            ExitCode::FAILURE
        }
    }
}
