//! The paper-claim scorecard: each headline claim of the paper paired with
//! the reproduced number from the committed `results/` artifacts and the
//! places the repo's prose quotes it.
//!
//! Two different comparisons hang off this table:
//!
//! * the **scorecard page** shows paper-vs-measured and flags divergence
//!   beyond each claim's tolerance (some divergences are expected and
//!   documented — synthetic kernels, not SPEC binaries);
//! * the **drift check** (`docgen --check`) re-derives every number a doc
//!   quotes from the artifact it came from and fails when they disagree,
//!   so README/EXPERIMENTS can never silently go stale.

use crate::csvtab::Table;
use cbws_describe::ComponentDescription;
use std::path::Path;

/// Where a claim's reproduced number comes from.
#[derive(Debug, Clone, Copy)]
pub enum Source {
    /// A cell in a committed `results/*.csv`: the row whose leading cells
    /// equal `key`, at column `col`.
    Csv {
        /// File name under `results/`.
        file: &'static str,
        /// Leading row cells to match (1 cell, or 2 for long-format files).
        key: &'static [&'static str],
        /// Column name.
        col: &'static str,
    },
    /// A component's storage budget in KB, from its `Describe` impl.
    DescribeStorageKb {
        /// Component name as listed by `component_registry`.
        component: &'static str,
    },
    /// A numeric parameter default from a component's `Describe` impl.
    DescribeParam {
        /// Component name as listed by `component_registry`.
        component: &'static str,
        /// Parameter name.
        param: &'static str,
    },
}

/// One place in the repo's prose that quotes the claim's number.
///
/// `pattern` is literal text containing a single `{NUM}` placeholder;
/// whitespace runs in both the pattern and the document are collapsed
/// before matching, so patterns may span soft line wraps.
#[derive(Debug, Clone, Copy)]
pub struct DocQuote {
    /// Repo-relative file the quote lives in.
    pub file: &'static str,
    /// Literal text around the number, `{NUM}` marking it.
    pub pattern: &'static str,
}

/// One headline claim of the paper.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Stable identifier (used in test assertions and error messages).
    pub id: &'static str,
    /// Human title for the scorecard row.
    pub title: &'static str,
    /// The paper's number, as text (may carry units or qualifiers).
    pub paper_text: &'static str,
    /// The paper's number, as a value.
    pub paper_value: f64,
    /// Relative tolerance vs the paper value before the scorecard flags
    /// the reproduction as diverging.
    pub tolerance: f64,
    /// Where the reproduced number comes from.
    pub source: Source,
    /// Prose quoting this number, checked for drift.
    pub quotes: &'static [DocQuote],
    /// Commentary shown on the scorecard (what drives any divergence).
    pub note: &'static str,
}

/// The claim table. Order is the scorecard page order.
pub fn claims() -> Vec<Claim> {
    vec![
        Claim {
            id: "speedup-mi",
            title: "CBWS+SMS over SMS, memory-intensive geomean (Fig. 14)",
            paper_text: "1.31×",
            paper_value: 1.31,
            tolerance: 0.10,
            source: Source::Csv {
                file: "fig14_speedup.csv",
                key: &["average-MI"],
                col: "CBWS+SMS",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "CBWS+SMS vs SMS: {NUM}× on the memory-intensive suite",
                },
                DocQuote {
                    file: "EXPERIMENTS.md",
                    pattern: "memory-intensive group | 1.31× | **{NUM}×**",
                },
            ],
            note: "Synthetic kernels reproduce the shape, not the absolute \
                   gap; 1.21× vs the paper's 1.31× under the flat memory \
                   model (the DRAM model closes it — see the dram-headline \
                   row).",
        },
        Claim {
            id: "speedup-all",
            title: "CBWS+SMS over SMS, all 30 benchmarks (Fig. 14)",
            paper_text: "1.16×",
            paper_value: 1.16,
            tolerance: 0.08,
            source: Source::Csv {
                file: "fig14_speedup.csv",
                key: &["average-ALL"],
                col: "CBWS+SMS",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "suite, {NUM}× over all 30 benchmarks",
                },
                DocQuote {
                    file: "EXPERIMENTS.md",
                    pattern: "all 30 benchmarks | 1.16× | **{NUM}×**",
                },
            ],
            note: "Within 5% of the paper.",
        },
        Claim {
            id: "best-single",
            title: "Largest single-benchmark speedup (Fig. 14)",
            paper_text: "up to 4× (sgemm region)",
            paper_value: 4.0,
            tolerance: 0.25,
            source: Source::Csv {
                file: "fig14_speedup.csv",
                key: &["stencil-default"],
                col: "CBWS+SMS",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "up to {NUM}× on stencil",
                },
                DocQuote {
                    file: "EXPERIMENTS.md",
                    pattern: "4× (sgemm region) | {NUM}× (stencil)",
                },
            ],
            note: "Known divergence: the paper's 4× is a region-level \
                   number on real sgemm; our whole-kernel stencil peaks at \
                   2.14×.",
        },
        Claim {
            id: "cbws-standalone",
            title: "Standalone CBWS vs SMS, memory-intensive geomean",
            paper_text: "~1.0 (mixed)",
            paper_value: 1.0,
            tolerance: 0.10,
            source: Source::Csv {
                file: "fig14_speedup.csv",
                key: &["average-MI"],
                col: "CBWS",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "Standalone CBWS averages {NUM}×",
                },
                DocQuote {
                    file: "EXPERIMENTS.md",
                    pattern: "~1.0 (mixed) | {NUM}×",
                },
            ],
            note: "Ahead on regular loops, behind where the 16-entry table \
                   thrashes — the paper's finding.",
        },
        Claim {
            id: "cbws-storage",
            title: "CBWS storage budget (Table III)",
            paper_text: "< 1 KB (8,080 bits)",
            paper_value: 0.99,
            tolerance: 0.01,
            source: Source::Csv {
                file: "tab03_storage.csv",
                key: &["CBWS"],
                col: "KB",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "bits ≈ {NUM} KB",
                },
                DocQuote {
                    file: "README.md",
                    pattern: "CBWS {NUM} KB — Table III",
                },
                DocQuote {
                    file: "EXPERIMENTS.md",
                    pattern: "3.75 / 5.07 / **{NUM} KB**",
                },
            ],
            note: "Bit-for-bit: the Fig. 8 structure accounting reproduces \
                   Table III exactly. Cross-checked against the `Describe` \
                   implementation by `docgen --check`.",
        },
        Claim {
            id: "dht-entries",
            title: "Differential history table size (Fig. 8)",
            paper_text: "16 entries",
            paper_value: 16.0,
            tolerance: 0.0,
            source: Source::DescribeParam {
                component: "CBWS",
                param: "table_entries",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "the {NUM}-entry random-replacement differential history table",
                },
                DocQuote {
                    file: "DESIGN.md",
                    pattern: "hashes a 3-deep history of differentials into a {NUM}-entry",
                },
            ],
            note: "Read straight from the predictor's self-description, not \
                   from a results file.",
        },
        Claim {
            id: "cbws-wrong",
            title: "Standalone CBWS wrong-prefetch rate, MI average (Fig. 13)",
            paper_text: "5%",
            paper_value: 5.0,
            tolerance: 0.30,
            source: Source::Csv {
                file: "fig13_timeliness.csv",
                key: &["average-MI", "CBWS"],
                col: "wrong %",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "standalone CBWS {NUM}% wrong",
                },
                DocQuote {
                    file: "EXPERIMENTS.md",
                    pattern: "| **measured CBWS** | 14.4 | 24.7 | 0.0 | 26.5 | **{NUM}** |",
                },
            ],
            note: "Most accurate scheme in both the paper and the \
                   reproduction.",
        },
        Claim {
            id: "sms-timely",
            title: "SMS timely rate, MI average (Fig. 13)",
            paper_text: "24%",
            paper_value: 24.0,
            tolerance: 0.25,
            source: Source::Csv {
                file: "fig13_timeliness.csv",
                key: &["average-MI", "SMS"],
                col: "timely %",
            },
            quotes: &[DocQuote {
                file: "README.md",
                pattern: "SMS {NUM}% timely",
            }],
            note: "",
        },
        Claim {
            id: "sms-wrong",
            title: "SMS wrong-prefetch rate, MI average (Fig. 13)",
            paper_text: "14%",
            paper_value: 14.0,
            tolerance: 0.25,
            source: Source::Csv {
                file: "fig13_timeliness.csv",
                key: &["average-MI", "SMS"],
                col: "wrong %",
            },
            quotes: &[DocQuote {
                file: "README.md",
                pattern: "timely / {NUM}% wrong",
            }],
            note: "",
        },
        Claim {
            id: "hybrid-timely",
            title: "CBWS+SMS timely rate, MI average (Fig. 13)",
            paper_text: "31%",
            paper_value: 31.0,
            tolerance: 0.25,
            source: Source::Csv {
                file: "fig13_timeliness.csv",
                key: &["average-MI", "CBWS+SMS"],
                col: "timely %",
            },
            quotes: &[DocQuote {
                file: "EXPERIMENTS.md",
                pattern: "improvement appears as 27.5→{NUM}",
            }],
            note: "The hybrid improves timeliness over SMS alone in both \
                   testbeds (paper 24→31, here 27.5→36.5).",
        },
        Claim {
            id: "dram-headline",
            title: "CBWS+SMS over SMS under banked DRAM, geomean",
            paper_text: "1.31×",
            paper_value: 1.31,
            tolerance: 0.05,
            source: Source::Csv {
                file: "dram_model.csv",
                key: &["geomean"],
                col: "dram: CBWS+SMS/SMS",
            },
            quotes: &[
                DocQuote {
                    file: "README.md",
                    pattern: "headline rises to {NUM}×",
                },
                DocQuote {
                    file: "EXPERIMENTS.md",
                    pattern: "geomean from 1.248 to **{NUM}**",
                },
            ],
            note: "Once wrong prefetches cost real DRAM bandwidth, the \
                   accuracy advantage recovers the paper's headline.",
        },
        Claim {
            id: "fig5-skew",
            title: "Differential skew: top 1% of vectors, stencil (Fig. 5)",
            paper_text: "≈100% of iterations",
            paper_value: 100.0,
            tolerance: 0.05,
            source: Source::Csv {
                file: "fig05_differential_skew.csv",
                key: &["stencil-default (3)"],
                col: "1% vecs",
            },
            quotes: &[DocQuote {
                file: "EXPERIMENTS.md",
                pattern: "| stencil (3) | {NUM} |",
            }],
            note: "The tiny-alphabet property the whole design rests on: a \
                   handful of differential vectors cover nearly every \
                   iteration of a regular loop.",
        },
    ]
}

/// Evaluates a claim's [`Source`] against the repo at `root`.
///
/// `registry` is the output of `cbws_harness::component_registry`, passed in
/// so Describe-backed claims need no rebuild per claim.
pub fn measure(
    claim: &Claim,
    root: &Path,
    registry: &[ComponentDescription],
) -> Result<f64, String> {
    match claim.source {
        Source::Csv { file, key, col } => {
            let table = Table::load(&root.join("results").join(file))?;
            let cell = table
                .cell(key, col)
                .ok_or_else(|| format!("{file}: no cell at {key:?} × {col:?}"))?;
            cell.parse::<f64>()
                .map_err(|_| format!("{file}: cell {key:?} × {col:?} is not a number: {cell:?}"))
        }
        Source::DescribeStorageKb { component } => {
            let d = find_component(registry, component)?;
            Ok(d.storage_kb()
                .ok_or_else(|| format!("component {component} declares no storage budget"))?)
        }
        Source::DescribeParam { component, param } => {
            let d = find_component(registry, component)?;
            let p = d
                .params
                .iter()
                .find(|p| p.name == param)
                .ok_or_else(|| format!("component {component} has no param {param}"))?;
            p.default.parse::<f64>().map_err(|_| {
                format!(
                    "{component}.{param} default is not numeric: {:?}",
                    p.default
                )
            })
        }
    }
}

fn find_component<'a>(
    registry: &'a [ComponentDescription],
    name: &str,
) -> Result<&'a ComponentDescription, String> {
    registry
        .iter()
        .find(|d| d.name == name)
        .ok_or_else(|| format!("no component named {name} in the registry"))
}

/// A number extracted from prose, with the precision it was quoted at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quoted {
    /// The parsed value.
    pub value: f64,
    /// Digits after the decimal point in the quoted text.
    pub decimals: u32,
}

/// Collapses whitespace runs to single spaces (so patterns span soft line
/// wraps in the prose).
pub fn normalize_ws(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Extracts the `{NUM}` value for `pattern` from `text`.
///
/// Every occurrence of the leading context is tried (short prefixes like
/// `"CBWS "` appear many times in prose); the first occurrence followed by
/// a number and the trailing context wins.
pub fn quoted_number(text: &str, pattern: &str) -> Result<Quoted, String> {
    let (before, after) = pattern
        .split_once("{NUM}")
        .ok_or_else(|| format!("pattern has no {{NUM}} placeholder: {pattern:?}"))?;
    let text = normalize_ws(text);
    let before = normalize_ws(before);
    let after = normalize_ws(after);
    let mut found_prefix = false;
    for (pos, _) in text.match_indices(&before) {
        found_prefix = true;
        let rest = text[pos + before.len()..].trim_start();
        let Some(num_text) = leading_number(rest) else {
            continue;
        };
        if !after.is_empty() && !rest[num_text.len()..].trim_start().starts_with(&after) {
            continue;
        }
        let value = num_text
            .parse::<f64>()
            .map_err(|_| format!("unparseable number {num_text:?} after {before:?}"))?;
        let decimals = num_text
            .split_once('.')
            .map(|(_, frac)| frac.len() as u32)
            .unwrap_or(0);
        return Ok(Quoted { value, decimals });
    }
    Err(if found_prefix {
        format!("no occurrence of {before:?} is followed by a number and {after:?}")
    } else {
        format!("quote not found: {before:?}")
    })
}

/// The leading decimal literal of `s`, if any.
fn leading_number(s: &str) -> Option<&str> {
    let end = s
        .char_indices()
        .take_while(|&(i, c)| {
            c.is_ascii_digit() || (c == '.' && s[..i].contains(|d: char| d.is_ascii_digit()))
        })
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    let num = s[..end].trim_end_matches('.');
    (!num.is_empty()).then_some(num)
}

/// Whether `measured`, rounded to the quote's precision, equals the quote.
///
/// Values landing exactly on a rounding boundary (e.g. 2.145 quoted at two
/// decimals) are accepted either way — binary floats make the direction of
/// that half-step formatting-dependent.
pub fn quote_matches(measured: f64, quote: Quoted) -> bool {
    let half_step = 0.5 * 10f64.powi(-(quote.decimals as i32));
    (measured - quote.value).abs() <= half_step + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_and_rounds() {
        let q = quoted_number(
            "CBWS+SMS vs SMS: 1.21× on the memory-intensive\n  suite, more",
            "CBWS+SMS vs SMS: {NUM}× on the memory-intensive suite",
        )
        .unwrap();
        assert_eq!(
            q,
            Quoted {
                value: 1.21,
                decimals: 2
            }
        );
        assert!(quote_matches(1.209, q));
        assert!(!quote_matches(1.35, q));
    }

    #[test]
    fn integer_quote() {
        let q = quoted_number("a 16-entry table", "a {NUM}-entry table").unwrap();
        assert_eq!(
            q,
            Quoted {
                value: 16.0,
                decimals: 0
            }
        );
        assert!(quote_matches(16.0, q));
    }

    #[test]
    fn trailing_context_must_match() {
        assert!(quoted_number("rises to 1.33 overall", "rises to {NUM}× on").is_err());
    }

    #[test]
    fn missing_quote_is_an_error() {
        assert!(quoted_number("nothing here", "absent {NUM}").is_err());
    }

    #[test]
    fn half_values_round_as_quoted() {
        // The committed artifacts quote e.g. 2.145 as 2.14 (f64 rounding).
        assert!(quote_matches(
            2.145,
            Quoted {
                value: 2.14,
                decimals: 2
            }
        ));
        assert!(quote_matches(
            1.209,
            Quoted {
                value: 1.21,
                decimals: 2
            }
        ));
        assert!(quote_matches(
            0.937,
            Quoted {
                value: 0.94,
                decimals: 2
            }
        ));
    }
}
