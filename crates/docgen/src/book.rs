//! Assembles the complete `book/` tree (an mdBook source layout) and
//! diffs it against what is committed.
//!
//! Almost every page is generated; the one exception is the
//! hand-authored service chapter (`src/service.md`), which
//! [`build_book`] passes through from the committed file verbatim so the
//! orphan check still accounts for it. Its route table is held in sync
//! with the server by a dedicated gate in [`crate::check`].

use crate::pages;
use cbws_describe::ComponentDescription;
use std::collections::BTreeMap;
use std::path::Path;

/// The complete generated book: path relative to `book/` → file bytes.
pub type BookFiles = BTreeMap<String, Vec<u8>>;

/// Generates every file of the book from the repo at `root`.
///
/// The output is a valid mdBook source tree (`book.toml`, `src/SUMMARY.md`,
/// pages), so a real `mdbook build book` works where mdBook is installed,
/// and `docgen --html` renders the same tree offline.
pub fn build_book(root: &Path, registry: &[ComponentDescription]) -> Result<BookFiles, String> {
    let mut files = BookFiles::new();

    files.insert("book.toml".into(), BOOK_TOML.as_bytes().to_vec());
    files.insert(".gitignore".into(), b"html/\n".to_vec());

    // Component reference.
    files.insert(
        "src/registry/index.md".into(),
        pages::registry_index(registry).into_bytes(),
    );
    for d in registry {
        files.insert(
            format!("src/registry/{}.md", pages::slug(&d.name)),
            pages::component_page(d).into_bytes(),
        );
    }

    // Results gallery (+ copied plots so the book is self-contained).
    let figures = pages::figures();
    files.insert(
        "src/results/index.md".into(),
        pages::gallery_index(&figures).into_bytes(),
    );
    for s in &figures {
        files.insert(
            format!("src/results/{}.md", s.slug),
            pages::figure_page(root, s)?.into_bytes(),
        );
        if let Some(svg) = s.svg {
            let src = root.join("results").join(svg);
            let bytes =
                std::fs::read(&src).map_err(|e| format!("cannot read {}: {e}", src.display()))?;
            files.insert(format!("src/results/{svg}"), bytes);
        }
    }

    // Scorecard, introduction, reproduction guide, summary.
    files.insert(
        "src/scorecard.md".into(),
        pages::scorecard_page(root, registry).into_bytes(),
    );
    files.insert("src/introduction.md".into(), introduction().into_bytes());
    files.insert("src/reproducing.md".into(), reproducing().into_bytes());
    files.insert("src/trace-store.md".into(), trace_store(root)?.into_bytes());
    files.insert(
        "src/result-store.md".into(),
        result_store(root)?.into_bytes(),
    );
    // The service chapter is hand-authored prose, not generated: pass
    // the committed file through byte-for-byte. Regeneration can then
    // never clobber it, and diff_book never flags it (generated ==
    // committed by construction) — but a deleted file still fails the
    // build here, and a drifted route table fails the check gate.
    let service = root.join("book/src/service.md");
    let bytes = std::fs::read(&service).map_err(|e| {
        format!(
            "cannot read {} (the service chapter is hand-authored — \
             restore it from version control, docgen cannot regenerate \
             it): {e}",
            service.display()
        )
    })?;
    files.insert("src/service.md".into(), bytes);
    files.insert("src/observability.md".into(), observability().into_bytes());
    files.insert("src/perf-trends.md".into(), perf_trends(root)?.into_bytes());
    files.insert(
        "src/SUMMARY.md".into(),
        summary(registry, &figures).into_bytes(),
    );

    Ok(files)
}

/// Writes the generated files under `root/book/`, creating directories as
/// needed, and removes committed files the generator no longer produces.
pub fn write_book(root: &Path, files: &BookFiles) -> Result<(), String> {
    let book = root.join("book");
    for (rel, bytes) in files {
        let path = book.join(rel);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, bytes)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    for rel in committed_files(root) {
        if !files.contains_key(&rel) {
            let _ = std::fs::remove_file(book.join(&rel));
        }
    }
    Ok(())
}

/// Normalizes text for comparison: CRLF (and stray CR) line endings become
/// LF, and trailing spaces/tabs are stripped from every line. Checkouts on
/// platforms with `core.autocrlf`, or editors that trim whitespace, must
/// not make a byte-identical page read as stale.
fn normalize(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len());
    for line in bytes.split(|&b| b == b'\n') {
        let mut end = line.len();
        while end > 0 && matches!(line[end - 1], b'\r' | b' ' | b'\t') {
            end -= 1;
        }
        out.extend_from_slice(&line[..end]);
        out.push(b'\n');
    }
    out.pop(); // split() yields one entry past the final newline
    out
}

/// Compares the generated files against the committed `book/` tree.
/// Returns one human-readable problem per stale, missing, or orphaned file.
/// Line endings and trailing whitespace are normalized on both sides
/// before comparing, so CRLF checkouts pass the check.
pub fn diff_book(root: &Path, files: &BookFiles) -> Vec<String> {
    let book = root.join("book");
    let mut problems = Vec::new();
    for (rel, bytes) in files {
        match std::fs::read(book.join(rel)) {
            Ok(committed) if normalize(&committed) == normalize(bytes) => {}
            Ok(_) => problems.push(format!(
                "book/{rel} is stale — regenerate with `cargo run -p docgen`"
            )),
            Err(_) => problems.push(format!(
                "book/{rel} is missing — regenerate with `cargo run -p docgen`"
            )),
        }
    }
    for rel in committed_files(root) {
        if !files.contains_key(&rel) {
            problems.push(format!(
                "book/{rel} is not produced by the generator — remove it or \
                 extend docgen"
            ));
        }
    }
    problems
}

/// All files currently committed under `book/` (relative paths), excluding
/// the `html/` build output.
fn committed_files(root: &Path) -> Vec<String> {
    let book = root.join("book");
    let mut out = Vec::new();
    let mut stack = vec![book.clone()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "html") {
                    continue; // build output, never committed
                }
                stack.push(path);
            } else if let Ok(rel) = path.strip_prefix(&book) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    out
}

const BOOK_TOML: &str = r#"# GENERATED by `cargo run -p docgen` — do not edit by hand.
[book]
title = "cbws-repro reference"
description = "Generated reference for the CBWS prefetching reproduction"
src = "src"
language = "en"

[build]
build-dir = "html"
create-missing = false
"#;

fn introduction() -> String {
    format!(
        "{}# cbws-repro reference\n\n\
         This book is **generated** from the repository by `cargo run -p \
         docgen` — nothing in it is hand-written prose that can rot. Three \
         sources feed it:\n\n\
         1. the [component reference](registry/index.md), read from each \
         component's `Describe` implementation (`crates/describe`);\n\
         2. the [results gallery](results/index.md), read from the committed \
         `results/*.csv`, `*.svg`, and `*.manifest.json` artifacts;\n\
         3. the [paper-claim scorecard](scorecard.md), which pairs the \
         paper's headline numbers with the reproduced ones.\n\n\
         `cargo run -p docgen -- --check` regenerates everything in memory \
         and fails CI when a committed page, a README-quoted number, or a \
         `Describe` output disagrees with the artifacts.\n\n\
         ## Building this book\n\n\
         ```bash\n\
         cargo run -p docgen            # regenerate the markdown sources\n\
         mdbook build book              # render with mdBook, if installed\n\
         cargo run -p docgen -- --html  # offline fallback renderer (book/html)\n\
         ```\n\n\
         The paper: Fuchs, Mannor, Weiser, Etsion. *Loop-Aware Memory \
         Prefetching Using Code Block Working Sets.* MICRO-47, 2014. See \
         the repository's [README](../../README.md), [DESIGN](../../DESIGN.md), \
         and [EXPERIMENTS](../../EXPERIMENTS.md) for the narrative docs.\n",
        pages::GENERATED_BANNER
    )
}

fn reproducing() -> String {
    format!(
        "{}# Reproducing the figures\n\n\
         Every table and figure of the paper has one regenerator binary in \
         `cbws-harness`; `all_experiments` runs the whole evaluation and \
         writes every artifact.\n\n\
         ```bash\n\
         cargo run --release -p cbws-harness --bin all_experiments\n\
         cargo run --release -p cbws-harness --bin fig14_speedup -- --scale small\n\
         ```\n\n\
         ## Flags every binary accepts\n\n\
         | flag | effect |\n|---|---|\n\
         | `--scale tiny\\|small\\|full\\|huge` | trace length per workload (default `full`; `huge` is 12× full and replays through the [trace store](trace-store.md)'s streaming path; the committed artifacts record their scale in `results/*.manifest.json`) |\n\
         | `--jobs N` | worker threads for the work-stealing sweep engine; `0` or absent = all cores |\n\
         | `--quiet` | suppress console tables (CSVs, SVGs, and manifests are still written) |\n\
         | `--progress` | verbose per-phase and heartbeat logging |\n\
         | `--resume` | report how many jobs an interrupted sweep left behind; only those are simulated (the rest come from the [result store](result-store.md)) |\n\
         | `--no-result-cache` | turn the persistent result store off for this run (every job simulates) |\n\
         | `--trace-out F` / `--metrics-out F` | JSONL event trace / JSON metrics dump (see below) |\n\n\
         ## Environment\n\n\
         | variable | effect |\n|---|---|\n\
         | `CBWS_TRACE_CACHE_BYTES` | byte budget of the shared trace cache \
         (default 1 GiB). Generated traces are shared per (workload, scale) \
         across the sweep; lower it on small machines, raise it if \
         regeneration shows up in `--progress` phase timings. |\n\
         | `CBWS_TRACE_STORE_DIR` | directory of the persistent on-disk \
         [trace store](trace-store.md) (default `target/trace-store/`). The \
         sweep engine and figure regenerators read packed traces from here \
         and skip DSL generation on warm runs; delete the directory to \
         force regeneration. |\n\
         | `CBWS_STREAM_THRESHOLD_BYTES` | store files larger than this \
         replay through the disk-backed streaming cursor instead of a \
         memory map (default 256 MiB; `0` streams everything). See \
         [the trace store](trace-store.md). |\n\
         | `CBWS_TRACE_FRAME_EVENTS` | events per frame the trace-store \
         writer packs before flushing (default 64 Ki); smaller frames \
         lower streaming memory, larger frames amortize per-frame decode \
         setup better. |\n\
         | `CBWS_RESULT_STORE_DIR` | directory of the persistent \
         [result store](result-store.md) (default `target/result-store/`). \
         Finished jobs' records are served from here, skipping trace \
         loading and simulation entirely. |\n\
         | `CBWS_RESULT_CACHE_BYTES` | byte budget of the result store on \
         disk (default 64 MiB); oldest-used entries are evicted first when \
         a write exceeds it. |\n\n\
         ## Observability\n\n\
         Telemetry is off by default and costs one branch per hook when \
         disabled. `--trace-out` captures the structured event trace \
         (prefetch lifecycle, Fig. 13 demand classification, block \
         begin/end, differential-table lookups); `--metrics-out` dumps the \
         dotted-path metrics registry, including the \
         `trace_store.{{hit,miss,write,invalidate}}` counters and \
         `trace_store.{{load_us,generate_us}}` timings that show whether a \
         run replayed stored traces or regenerated them. The per-component \
         metric paths are listed on each page of the \
         [component reference](registry/index.md).\n\n\
         ## Scales and runtimes\n\n\
         The committed artifacts were produced at the scale their manifest \
         records (full for the headline run; `fig12_mpki` at small). Tiny \
         runs complete in seconds and are used by the test suite; full \
         reproduces the numbers quoted in [the scorecard](scorecard.md).\n",
        pages::GENERATED_BANNER
    )
}

fn trace_store(root: &Path) -> Result<String, String> {
    use cbws_bench::perf_history::{load_snapshot, STREAM_THROUGHPUT_FLOOR};
    let mut md = format!(
        "{}# The trace store\n\n\
         Workload traces are deterministic functions of `(workload, scale, \
         DSL version)`, so the harness persists them instead of regenerating \
         them every run. Traces are packed into a columnar (structure-of-\
         arrays) encoding — `cbws_trace::PackedTrace` — cut into \
         independently decodable **frames**, and written to a versioned, \
         checksummed binary file per `(workload, scale)` under \
         `CBWS_TRACE_STORE_DIR` (default `target/trace-store/`). The sweep \
         engine and the figure regenerators replay these files through a \
         cursor without ever materializing a `Vec<TraceEvent>` — \
         zero-copy from a memory map for ordinary files, or frame by frame \
         from disk for files past the streaming threshold.\n\n\
         ## File format (version 4)\n\n\
         All integers are little-endian. One file per `(workload, scale)`, \
         named `<workload>-<scale>.cbwstrace`.\n\n\
         | section | field | size | meaning |\n|---|---|---|---|\n\
         | header | magic | 8 | `CBWSTRCE` |\n\
         | | version | 4 | format version (currently 4) |\n\
         | | workload_hash | 8 | FNV-1a hash of the DSL sources that define \
         *this* workload (shared kernels + its suite's file + its name) |\n\
         | | scale | 1 | 0 = tiny, 1 = small, 2 = full, 3 = huge |\n\
         | | name_len + name | 2 + n | the workload name |\n\
         | | frame_events | 4 | events per frame the writer used |\n\
         | frames | payloads | var | N concatenated `PackedTrace` payloads, \
         each decodable on its own (delta predictors reset per frame) |\n\
         | footer | frame table | N × 24 | per frame: byte length, event \
         count, FNV-1a checksum of the payload |\n\
         | trailer | totals | 24 | total events, frame count, FNV-1a of \
         the footer |\n\n\
         Each frame payload is a 9-word header (event/lane entry counts and \
         lane byte extents) followed by the tag lane (one byte per event: \
         variant + store/dep/taken flags) and four LEB128 varint operand \
         lanes: PC deltas (zigzag, against the previous PC *of the same \
         event variant*), address deltas (zigzag), ALU run lengths, and \
         block ids. The cursor decodes lanes in 256-event batches into \
         flat scratch columns, routing each lane to a word-at-a-time or \
         scalar varint kernel by its bytes-per-entry (see \
         `cbws_trace::varint`); `BENCH_decode.json` tracks the decode \
         throughput. The fixed-size trailer at EOF locates the footer, so \
         the writer never needs the frame count up front and readers find \
         every frame with three bounded reads.\n\n\
         ## Streaming: O(1) memory in trace length\n\n\
         Framing (version 4) makes trace memory constant in trace length \
         on both sides of the store, which is what makes the `huge` scale \
         (12× full) usable at all:\n\n\
         * **Writing streams.** A store miss feeds the kernel's emitter \
         into a streaming `TraceBuilder`; every completed chunk of \
         `frame_events` events (default 64 Ki, `CBWS_TRACE_FRAME_EVENTS`) \
         is packed and flushed to disk immediately, so generating a huge \
         trace never holds more than one frame of events in memory.\n\
         * **Replaying streams past a threshold.** The engine asks the \
         store for a replay source; files larger than \
         `CBWS_STREAM_THRESHOLD_BYTES` (default 256 MiB; `0` streams \
         everything) come back as a disk-backed cursor whose read-ahead \
         thread fetches frame N+1 while the simulator drains frame N, \
         instead of mapping the whole file. Smaller files load zero-copy \
         through a memory map as before. Streamed and in-memory replay \
         are record-identical — property tests and the `stream_replay` \
         bench both assert it.\n\n\
         A counting-allocator test (`bounded_memory.rs`) pins the claim: \
         generating **and** replaying a huge ~10⁷-event trace stays under \
         a constant live-heap bound far below the trace's packed size.\n",
        pages::GENERATED_BANNER
    );
    let snap = root.join("BENCH_stream.json");
    if snap.exists() {
        let r = load_snapshot(&snap, "committed", 0)?;
        if let (Some(&mem), Some(&stream), Some(&ratio)) = (
            r.metrics.get("replay_memory_seconds"),
            r.metrics.get("replay_stream_seconds"),
            r.metrics.get("stream_throughput_ratio"),
        ) {
            md.push_str(&format!(
                "\n> On the committed `BENCH_stream.json` snapshot (scale \
                 {}, {} core(s)), warm in-memory replay took {mem:.4} s \
                 and disk-backed streamed replay {stream:.4} s — a \
                 throughput ratio of {ratio:.3}, including the streamed \
                 side's open and validation cost. `perf-history check` \
                 gates this ratio at {STREAM_THROUGHPUT_FLOOR}; see \
                 [Performance trends](perf-trends.md).\n",
                r.scale, r.cores,
            ));
        }
    }
    md.push_str(
        "\n## Invalidation\n\n\
         A file is rejected — with a `warn!` and transparent regeneration, \
         never a panic — when the magic or version differs, the \
         `workload_hash` does not match the current sources, the key does \
         not match the request, the footer checksum disagrees, or any \
         per-frame checksum disagrees. Version 1 hashed the whole DSL \
         binary, so any kernel edit invalidated every stored trace; version \
         2 hashes per workload (the shared kernel helpers, the one suite \
         source file the workload lives in, and its name), so editing one \
         suite regenerates only that suite's traces; version 3 changed the \
         PC lane encoding; version 4 framed the payload, so older stores \
         regenerate wholesale on first use. Streamed opens run a bounded \
         sequential validation pass (one frame resident at a time) before \
         handing out a cursor, so a corrupt frame is caught at open — not \
         mid-replay — and triggers the same regeneration path. Writes are \
         atomic (temp file + rename), so a crashed run cannot leave a torn \
         file that poisons the next one.\n\n\
         ## Telemetry\n\n\
         With telemetry enabled (`--trace-out`/`--metrics-out`), the store \
         counts `trace_store.hit`, `.miss`, `.write`, and `.invalidate`, \
         and accumulates `trace_store.load_us` / `.generate_us`; a warm CI \
         run asserts `trace_store.hit > 0`. Every drained streamed cursor \
         additionally reports `trace.stream.replays` / `.frames` / \
         `.bytes` / `.stalls` / `.stall_us` — the stall counters say how \
         often the simulator outran the read-ahead thread. With span \
         tracing enabled (`--spans-out`, see \
         [Observability](observability.md)), every load, generate, \
         validate, and write appears as a nested span on the worker's \
         timeline lane, and each streamed replay emits a `trace.stream` \
         span carrying the same numbers as attributes.\n",
    );
    Ok(md)
}

fn result_store(root: &Path) -> Result<String, String> {
    use cbws_bench::perf_history::{load_snapshot, CACHED_SWEEP_SPEEDUP_FLOOR};
    let mut md = format!(
        "{}# The result store\n\n\
         Simulation results are deterministic functions of the trace, the \
         prefetcher configuration, and the simulator code, so the harness \
         persists each job's `RunRecord` the same way the \
         [trace store](trace-store.md) persists traces. Every binary keeps \
         the store on by default; re-running a sweep whose inputs have not \
         changed serves every job from disk and skips both trace loading \
         and simulation. An interrupted sweep resumes with `--resume`, \
         simulating only the jobs the killed run never finished.\n\n\
         ## Keying and the file format (version 1)\n\n\
         One little-endian file per `(workload, scale, prefetcher, \
         config)`, named \
         `<workload>-<scale>-<prefetcher>-<config hash>.cbwsresult` under \
         `CBWS_RESULT_STORE_DIR` (default `target/result-store/`). The \
         config hash in the file name lets sensitivity sweeps that revisit \
         one `(workload, scale, prefetcher)` triple under many \
         configurations keep every point on disk at once — without it each \
         config overwrote the previous one's entry. The \
         header stores magic `CBWSRSLT`, the format version, and an FNV-1a \
         key hash folding together:\n\n\
         | component | invalidates when |\n|---|---|\n\
         | workload trace hash | the workload's DSL sources change (the \
         trace store's per-suite scheme) |\n\
         | prefetcher kind + `SystemConfig` hash | any cache, latency, or \
         prefetcher parameter changes (each sensitivity point keys \
         separately) |\n\
         | simulator version hash | any simulation source file changes |\n\
         | scale | the trace length changes |\n\n\
         The payload is the JSON-serialized `RunRecord` guarded by an \
         FNV-1a checksum. A mismatch on any field — including a single \
         flipped bit anywhere in the file — rejects the entry with a \
         `warn!`, removes it, and re-simulates; property tests in \
         `result_store_properties.rs` exercise exactly this. Writes are \
         atomic (temp file + rename), so a killed run never leaves a torn \
         entry.\n\n\
         ## Byte budget\n\n\
         `CBWS_RESULT_CACHE_BYTES` bounds the store on disk (default \
         64 MiB). When a write pushes past the budget, oldest-modified \
         entries are evicted first; hits bump an entry's mtime, so the \
         order is LRU. The entry just written is never evicted.\n\n\
         ## Telemetry\n\n\
         With telemetry enabled the store counts `result_store.hit`, \
         `.miss`, `.write`, `.invalidate`, and `.evict`, plus \
         `result_store.write_bytes` — the bytes each write adds, which the \
         [sweep service](service.md) charges against per-client quotas; \
         the cached CI leg asserts `result_store.hit > 0`. Each `results/*.manifest.json` \
         records per-worker `store_hits` / `store_misses`, so a committed \
         artifact says whether its records were simulated or served from \
         the store. Determinism is gated in `sweep_e2e`: records served \
         from the store must be byte-identical to fresh simulation.\n",
        pages::GENERATED_BANNER
    );
    let snap = root.join("BENCH_sweep.json");
    if snap.exists() {
        let r = load_snapshot(&snap, "committed", 0)?;
        if let (Some(&warm), Some(&cached)) = (
            r.metrics.get("engine_warm_seconds"),
            r.metrics.get("engine_cached_seconds"),
        ) {
            md.push_str(&format!(
                "\n> On the committed `BENCH_sweep.json` snapshot (scale \
                 {}, {} core(s)), the warm engine sweep took {:.4} s and \
                 the fully cached sweep {:.4} s — {:.1}x faster. \
                 `perf-history check` gates this ratio at \
                 {CACHED_SWEEP_SPEEDUP_FLOOR}x; see \
                 [Performance trends](perf-trends.md).\n",
                r.scale,
                r.cores,
                warm,
                cached,
                warm / cached
            ));
        }
    }
    Ok(md)
}

fn observability() -> String {
    format!(
        "{}# Observability\n\n\
         Three layers, all off by default and near-free when disabled:\n\n\
         1. **Telemetry** (`--trace-out F`, `--metrics-out F`) — structured \
         event trace and dotted-path metrics registry; one branch per hook \
         when disabled. See [Reproducing the figures](reproducing.md).\n\
         2. **Span tracing** (`--spans-out F`) — nested, thread-tagged \
         wall-clock spans exported as a Chrome trace-event JSON file.\n\
         3. **Heartbeat** (`--progress`) — rate-limited `n/total` job \
         progress lines from the sweep engine.\n\n\
         ## Span tracing\n\n\
         Every harness binary accepts `--spans-out F`. When present, a \
         process-wide `Spans` collector is enabled and the hot stack is \
         instrumented:\n\n\
         | layer | spans |\n|---|---|\n\
         | sweep engine | one `lane` per worker thread; one span per \
         (workload, prefetcher) job with `workload`/`prefetcher` \
         attributes; `idle` spans for steal-wait gaps |\n\
         | trace store | `trace.load` / `trace.generate` / `trace.write`, \
         with nested `trace.validate` under loads |\n\
         | simulator core | `core.run` per replayed trace |\n\
         | profiler phases | `phase.<name>` mirroring each `Profiler` \
         phase (e.g. `phase.static_tables`, `phase.sweep`) |\n\n\
         The output is Chrome trace-event JSON: load it in Perfetto \
         (<https://ui.perfetto.dev>) or `chrome://tracing` and each worker \
         renders as its own timeline lane, so load imbalance and store \
         stalls are visible at a glance.\n\n\
         ```bash\n\
         cargo run --release -p cbws-harness --bin all_experiments -- \\\n  \
           --scale tiny --jobs 2 --spans-out spans.json\n\
         ```\n\n\
         When `--spans-out` is absent the collector is disabled: `begin()` \
         returns a no-op guard without allocating, so instrumented code \
         costs one atomic load per span site (measured ≤ 2% on the warm \
         full-matrix sweep; see DESIGN.md).\n\n\
         ## Per-worker statistics\n\n\
         Independent of span collection, every engine run aggregates per-\
         worker job counts, busy/idle seconds, and a log2 histogram of job \
         durations. These land in each `results/*.manifest.json` under \
         `worker_stats` (with `host_cores` for context) and in \
         `BENCH_sweep.json` under `workers_detail`, so committed artifacts \
         record *how* they were produced, not just what they contain.\n\n\
         ## Performance history\n\n\
         `cargo run -p cbws-bench --bin perf-history -- record` appends \
         the current `BENCH_*.json` snapshots to \
         `results/perf-history/<bench>.jsonl` with git revision, core \
         count, and timestamp; `-- check` gates regressions. See \
         [Performance trends](perf-trends.md).\n",
        pages::GENERATED_BANNER
    )
}

fn perf_trends(root: &Path) -> Result<String, String> {
    use cbws_bench::perf_history::{benches_in, load, trends, HARD_METRICS, MIN_HISTORY};
    let dir = root.join("results/perf-history");
    let mut md = format!(
        "{}# Performance trends\n\n\
         Rendered from the append-only history in `results/perf-history/` \
         (one JSON line per recorded benchmark run; see \
         [Observability](observability.md)). For each metric the latest \
         run is compared against the mean ± stddev of every prior run. \
         `perf-history check` fails CI when a **hard-gated** metric ({}) \
         exceeds the prior mean by 3 stddevs (with a 2%-of-mean noise \
         floor); other `*_seconds` metrics only warn. Gating starts once a \
         metric has {} prior runs. Four absolute gates apply to the latest \
         record regardless of history: `replay_speedup >= 1.0` (direct \
         packed replay must beat materialize-then-replay AoS), \
         `stream_throughput_ratio >= 0.7` (disk-backed streamed replay \
         must hold 70% of warm in-memory replay throughput; see \
         [the trace store](trace-store.md)), \
         `engine_warm_seconds <= 1.02 x serial_seconds` on single-worker \
         sweep records (the engine fast path's overhead bound), and \
         `engine_warm_seconds / engine_cached_seconds >= 3.0` (a sweep \
         served from the [result store](result-store.md) must beat \
         re-simulation).\n",
        pages::GENERATED_BANNER,
        HARD_METRICS.join(", "),
        MIN_HISTORY
    );
    let benches = benches_in(&dir);
    if benches.is_empty() {
        md.push_str(
            "\nNo history recorded yet — run `cargo run -p cbws-bench --bin \
             perf-history -- record` after a bench run.\n",
        );
        return Ok(md);
    }
    for bench in benches {
        let history = load(&dir, &bench)?;
        let Some(latest) = history.last() else {
            continue;
        };
        md.push_str(&format!(
            "\n## {bench}\n\n{} runs recorded, latest at rev `{}` on {} \
             core(s), scale {}.\n\n",
            history.len(),
            latest.git_rev,
            latest.cores,
            latest.scale
        ));
        let rows = trends(&history);
        if rows.is_empty() {
            md.push_str("Not enough runs to trend yet.\n");
            continue;
        }
        md.push_str("| metric | latest | prior mean | prior stddev | prior runs | delta |\n");
        md.push_str("|---|---|---|---|---|---|\n");
        for t in rows {
            let gate = if HARD_METRICS.contains(&t.metric.as_str()) {
                " (hard gate)"
            } else {
                ""
            };
            md.push_str(&format!(
                "| `{}`{} | {:.4} | {:.4} | {:.4} | {} | {:+.1}% |\n",
                t.metric,
                gate,
                t.latest,
                t.mean,
                t.stddev,
                t.prior_runs,
                t.delta_fraction() * 100.0
            ));
        }
    }
    Ok(md)
}

fn summary(registry: &[ComponentDescription], figures: &[pages::FigureSpec]) -> String {
    let mut md = String::from("# Summary\n\n[Introduction](introduction.md)\n\n");
    md.push_str("- [Reproducing the figures](reproducing.md)\n");
    md.push_str("- [The trace store](trace-store.md)\n");
    md.push_str("- [The result store](result-store.md)\n");
    md.push_str("- [The sweep service](service.md)\n");
    md.push_str("- [Observability](observability.md)\n");
    md.push_str("- [Performance trends](perf-trends.md)\n");
    md.push_str("- [Component reference](registry/index.md)\n");
    for d in registry {
        md.push_str(&format!(
            "  - [{}](registry/{}.md)\n",
            d.name,
            pages::slug(&d.name)
        ));
    }
    md.push_str("- [Results gallery](results/index.md)\n");
    for s in figures {
        md.push_str(&format!("  - [{}](results/{}.md)\n", s.title, s.slug));
    }
    md.push_str("- [Paper-claim scorecard](scorecard.md)\n");
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cbws-book-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("book/src")).unwrap();
        dir
    }

    #[test]
    fn normalize_strips_crlf_and_trailing_whitespace() {
        assert_eq!(normalize(b"a \r\nb\t\r\nc"), b"a\nb\nc".to_vec());
        assert_eq!(normalize(b"plain\n"), b"plain\n".to_vec());
        assert_eq!(normalize(b""), b"".to_vec());
    }

    #[test]
    fn crlf_checkout_is_not_stale() {
        let root = scratch_root("crlf");
        std::fs::write(
            root.join("book/src/page.md"),
            b"# Title  \r\nbody\r\nlast\t\r\n",
        )
        .unwrap();
        let mut files = BookFiles::new();
        files.insert("src/page.md".into(), b"# Title\nbody\nlast\n".to_vec());
        let problems = diff_book(&root, &files);
        let _ = std::fs::remove_dir_all(&root);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn content_change_is_still_stale() {
        let root = scratch_root("stale");
        std::fs::write(root.join("book/src/page.md"), b"old\n").unwrap();
        let mut files = BookFiles::new();
        files.insert("src/page.md".into(), b"new\n".to_vec());
        let problems = diff_book(&root, &files);
        let _ = std::fs::remove_dir_all(&root);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("stale"), "{problems:?}");
    }
}
