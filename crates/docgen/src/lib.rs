#![warn(missing_docs)]

//! Living-documentation generator for the CBWS reproduction.
//!
//! `cargo run -p docgen` regenerates the `book/` mdBook source tree from
//! three machine sources — the component registry
//! ([`cbws_harness::component_registry`], backed by every component's
//! `Describe` implementation), the committed `results/` artifacts, and the
//! [paper-claim table](claims::claims) — so the reference documentation is
//! derived from the code rather than hand-maintained.
//!
//! `cargo run -p docgen -- --check` re-derives everything in memory and
//! fails (exit 1) when the committed book, a number quoted in
//! README/EXPERIMENTS/DESIGN, or a `Describe` output disagrees with the
//! artifacts; CI runs it on every push.
//!
//! `cargo run -p docgen -- --html` renders the book to static HTML with a
//! built-in renderer, for environments without the `mdbook` binary (the
//! sources remain a valid mdBook tree).

pub mod book;
pub mod check;
pub mod claims;
pub mod csvtab;
pub mod html;
pub mod linkcheck;
pub mod pages;

use std::path::{Path, PathBuf};

/// The repository root the generator operates on: `--root` if given, else
/// the workspace root this binary was built from.
pub fn repo_root(explicit: Option<&str>) -> PathBuf {
    match explicit {
        Some(p) => PathBuf::from(p),
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/docgen has a workspace root")
            .to_path_buf(),
    }
}
