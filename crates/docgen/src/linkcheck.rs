//! Offline markdown link checker.
//!
//! The container has no network and no external link-checker binary, so
//! `docgen` ships its own: every relative link and image target in the
//! checked markdown files must exist on disk. External (`http`/`https`/
//! `mailto`) targets and pure in-page anchors are skipped — they cannot be
//! validated offline.

use std::path::Path;

/// Checks every markdown file in `files` (paths relative to `root`).
/// Returns one problem string per broken link.
pub fn check_files(root: &Path, files: &[String]) -> Vec<String> {
    let mut problems = Vec::new();
    for rel in files {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            problems.push(format!("{rel}: cannot read file"));
            continue;
        };
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let file_part = target.split('#').next().unwrap_or(&target);
            let base = path.parent().unwrap_or(root);
            if !base.join(file_part).exists() {
                problems.push(format!("{rel}: broken link `{target}`"));
            }
        }
    }
    problems
}

/// Extracts `[text](target)` and `![alt](target)` destinations, skipping
/// fenced code blocks and inline code spans.
pub fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let line = strip_inline_code(line);
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let rest = &line[i + 2..];
                if let Some(end) = rest.find(')') {
                    let target = rest[..end].split_whitespace().next().unwrap_or("");
                    out.push(target.to_string());
                    i += 2 + end;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// Replaces `` `code` `` spans with spaces so links inside them are ignored.
fn strip_inline_code(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_code = false;
    for c in line.chars() {
        if c == '`' {
            in_code = !in_code;
            out.push(' ');
        } else if in_code {
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_links_and_images() {
        let t = link_targets("See [a](x.md) and ![p](y.svg 'title').");
        assert_eq!(t, ["x.md", "y.svg"]);
    }

    #[test]
    fn skips_code() {
        let t = link_targets("```\n[a](dead.md)\n```\nuse `[b](c.md)` inline");
        assert!(t.is_empty());
    }

    #[test]
    fn anchors_and_external_skipped_by_check() {
        let dir = std::env::temp_dir().join(format!("docgen-lc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("a.md"),
            "[x](https://example.com) [y](#here) [z](missing.md)",
        )
        .unwrap();
        let problems = check_files(&dir, &["a.md".into()]);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("missing.md"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
