//! The doc-drift check behind `docgen --check`.
//!
//! Four independent gates, all offline:
//!
//! 1. **Book drift** — the committed `book/` tree must equal a fresh
//!    regeneration byte-for-byte (stale, missing, and orphaned files all
//!    fail).
//! 2. **Quoted numbers** — every number README.md / EXPERIMENTS.md /
//!    DESIGN.md quote for a scorecard claim must equal the value re-derived
//!    from the committed artifact (rounded to the quote's own precision).
//! 3. **Describe consistency** — each prefetcher's `Describe` storage
//!    budget must match the committed `tab03_storage.csv`, and structural
//!    paper constants (16-entry DHT, sub-1 KB CBWS) must hold.
//! 4. **Links** — no broken relative link in the book or the narrative
//!    docs.

use crate::claims::{claims, measure, quote_matches, quoted_number};
use crate::{book, linkcheck};
use cbws_describe::ComponentDescription;
use std::collections::HashMap;
use std::path::Path;

/// Narrative docs covered by the quote and link checks.
pub const NARRATIVE_DOCS: [&str; 4] = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"];

/// Runs every gate. Returns one human-readable problem per failure; empty
/// means the docs are in sync with the code and artifacts.
pub fn run(root: &Path, registry: &[ComponentDescription]) -> Vec<String> {
    let mut problems = Vec::new();

    match book::build_book(root, registry) {
        Ok(files) => {
            problems.extend(book::diff_book(root, &files));
            let book_pages: Vec<String> = files
                .keys()
                .filter(|p| p.ends_with(".md"))
                .map(|p| format!("book/{p}"))
                .collect();
            problems.extend(linkcheck::check_files(root, &book_pages));
        }
        Err(e) => problems.push(format!("book generation failed: {e}")),
    }

    problems.extend(check_quotes(root, registry));
    problems.extend(check_describe_consistency(root, registry));

    let narrative: Vec<String> = NARRATIVE_DOCS.iter().map(|s| s.to_string()).collect();
    problems.extend(linkcheck::check_files(root, &narrative));

    problems
}

/// Gate 2: every doc quote equals its re-derived artifact value.
pub fn check_quotes(root: &Path, registry: &[ComponentDescription]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut docs: HashMap<&str, String> = HashMap::new();
    for claim in claims() {
        let measured = match measure(&claim, root, registry) {
            Ok(v) => v,
            Err(e) => {
                problems.push(format!("claim `{}`: {e}", claim.id));
                continue;
            }
        };
        for quote in claim.quotes {
            let text = docs.entry(quote.file).or_insert_with(|| {
                std::fs::read_to_string(root.join(quote.file)).unwrap_or_default()
            });
            if text.is_empty() {
                problems.push(format!(
                    "claim `{}`: cannot read {} for quote check",
                    claim.id, quote.file
                ));
                continue;
            }
            match quoted_number(text, quote.pattern) {
                Ok(q) if quote_matches(measured, q) => {}
                Ok(q) => problems.push(format!(
                    "claim `{}`: {} quotes {} but the artifact says {measured} \
                     (pattern {:?})",
                    claim.id, quote.file, q.value, quote.pattern
                )),
                Err(e) => problems.push(format!(
                    "claim `{}`: quote missing from {}: {e}",
                    claim.id, quote.file
                )),
            }
        }
    }
    problems
}

/// Gate 3: `Describe` output vs the committed Table III artifact, plus the
/// paper's structural constants.
pub fn check_describe_consistency(root: &Path, registry: &[ComponentDescription]) -> Vec<String> {
    let mut problems = Vec::new();
    let tab03 = match crate::csvtab::Table::load(&root.join("results/tab03_storage.csv")) {
        Ok(t) => t,
        Err(e) => return vec![format!("describe consistency: {e}")],
    };
    for row in &tab03.rows {
        let (Some(name), Some(bits_text), Some(kb_text)) = (row.first(), row.get(1), row.get(2))
        else {
            problems.push(format!("tab03_storage.csv: short row {row:?}"));
            continue;
        };
        let Some(d) = registry.iter().find(|d| &d.name == name) else {
            problems.push(format!(
                "tab03_storage.csv lists `{name}` but no component of that \
                 name is in the registry"
            ));
            continue;
        };
        let bits: u64 = match bits_text.parse() {
            Ok(b) => b,
            Err(_) => {
                problems.push(format!("tab03_storage.csv: bad bits cell {bits_text:?}"));
                continue;
            }
        };
        if d.storage_bits != Some(bits) {
            problems.push(format!(
                "`{name}`: Describe reports {:?} bits but tab03_storage.csv \
                 says {bits}",
                d.storage_bits
            ));
        }
        let kb = bits as f64 / 8192.0;
        if (kb_text.parse::<f64>().unwrap_or(f64::NAN) - kb).abs() > 0.005 {
            problems.push(format!(
                "tab03_storage.csv: `{name}` KB cell {kb_text} disagrees with \
                 {bits} bits"
            ));
        }
    }
    if let Some(cbws) = registry.iter().find(|d| d.name == "CBWS") {
        if cbws.storage_bits.unwrap_or(u64::MAX) >= 8192 {
            problems.push("CBWS storage is not under the paper's 1 KB budget".to_string());
        }
        match cbws.params.iter().find(|p| p.name == "table_entries") {
            Some(p) if p.default == "16" => {}
            Some(p) => problems.push(format!(
                "CBWS differential history table has {} entries; the paper's \
                 Fig. 8 specifies 16",
                p.default
            )),
            None => {
                problems.push("CBWS Describe output lost its `table_entries` parameter".to_string())
            }
        }
    } else {
        problems.push("no CBWS component in the registry".to_string());
    }
    problems
}
