//! The doc-drift check behind `docgen --check`.
//!
//! Five independent gates, all offline:
//!
//! 1. **Book drift** — the committed `book/` tree must equal a fresh
//!    regeneration byte-for-byte (stale, missing, and orphaned files all
//!    fail).
//! 2. **Quoted numbers** — every number README.md / EXPERIMENTS.md /
//!    DESIGN.md quote for a scorecard claim must equal the value re-derived
//!    from the committed artifact (rounded to the quote's own precision).
//! 3. **Describe consistency** — each prefetcher's `Describe` storage
//!    budget must match the committed `tab03_storage.csv`, and structural
//!    paper constants (16-entry DHT, sub-1 KB CBWS) must hold.
//! 4. **Links** — no broken relative link in the book or the narrative
//!    docs.
//! 5. **Service routes** — the hand-authored service chapter's route
//!    table must agree, row for row, with `cbws_server::ROUTES`.

use crate::claims::{claims, measure, quote_matches, quoted_number};
use crate::{book, linkcheck};
use cbws_describe::ComponentDescription;
use std::collections::HashMap;
use std::path::Path;

/// Narrative docs covered by the quote and link checks.
pub const NARRATIVE_DOCS: [&str; 4] = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"];

/// Runs every gate. Returns one human-readable problem per failure; empty
/// means the docs are in sync with the code and artifacts.
pub fn run(root: &Path, registry: &[ComponentDescription]) -> Vec<String> {
    let mut problems = Vec::new();

    match book::build_book(root, registry) {
        Ok(files) => {
            problems.extend(book::diff_book(root, &files));
            let book_pages: Vec<String> = files
                .keys()
                .filter(|p| p.ends_with(".md"))
                .map(|p| format!("book/{p}"))
                .collect();
            problems.extend(linkcheck::check_files(root, &book_pages));
        }
        Err(e) => problems.push(format!("book generation failed: {e}")),
    }

    problems.extend(check_quotes(root, registry));
    problems.extend(check_describe_consistency(root, registry));
    problems.extend(check_service_routes(root));

    let narrative: Vec<String> = NARRATIVE_DOCS.iter().map(|s| s.to_string()).collect();
    problems.extend(linkcheck::check_files(root, &narrative));

    problems
}

/// Gate 2: every doc quote equals its re-derived artifact value.
pub fn check_quotes(root: &Path, registry: &[ComponentDescription]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut docs: HashMap<&str, String> = HashMap::new();
    for claim in claims() {
        let measured = match measure(&claim, root, registry) {
            Ok(v) => v,
            Err(e) => {
                problems.push(format!("claim `{}`: {e}", claim.id));
                continue;
            }
        };
        for quote in claim.quotes {
            let text = docs.entry(quote.file).or_insert_with(|| {
                std::fs::read_to_string(root.join(quote.file)).unwrap_or_default()
            });
            if text.is_empty() {
                problems.push(format!(
                    "claim `{}`: cannot read {} for quote check",
                    claim.id, quote.file
                ));
                continue;
            }
            match quoted_number(text, quote.pattern) {
                Ok(q) if quote_matches(measured, q) => {}
                Ok(q) => problems.push(format!(
                    "claim `{}`: {} quotes {} but the artifact says {measured} \
                     (pattern {:?})",
                    claim.id, quote.file, q.value, quote.pattern
                )),
                Err(e) => problems.push(format!(
                    "claim `{}`: quote missing from {}: {e}",
                    claim.id, quote.file
                )),
            }
        }
    }
    problems
}

/// Gate 5: the hand-authored service chapter cannot fall behind the
/// server. Parses the markdown table under its `## Routes` heading and
/// demands each row match `cbws_server::ROUTES` — same order, same
/// method, same path, same summary text.
pub fn check_service_routes(root: &Path) -> Vec<String> {
    const PAGE: &str = "book/src/service.md";
    let text = match std::fs::read_to_string(root.join(PAGE)) {
        Ok(t) => t,
        Err(e) => return vec![format!("service routes: cannot read {PAGE}: {e}")],
    };
    let mut problems = Vec::new();
    let rows = service_route_rows(&text);
    if rows.is_empty() {
        return vec![format!(
            "service routes: {PAGE} has no table under a `## Routes` heading"
        )];
    }
    for (i, route) in cbws_server::ROUTES.iter().enumerate() {
        let want = (
            route.method.to_string(),
            format!("`{}`", route.path),
            route.summary.to_string(),
        );
        match rows.get(i) {
            Some(row) if *row == want => {}
            Some(row) => problems.push(format!(
                "service routes: {PAGE} row {} documents `{} {} — {}` but the \
                 server serves `{} {} — {}`",
                i + 1,
                row.0,
                row.1,
                row.2,
                route.method,
                route.path,
                route.summary
            )),
            None => problems.push(format!(
                "service routes: {PAGE} is missing a row for `{} {}`",
                route.method, route.path
            )),
        }
    }
    for row in rows.iter().skip(cbws_server::ROUTES.len()) {
        problems.push(format!(
            "service routes: {PAGE} documents `{} {}` but the server has no \
             such route",
            row.0, row.1
        ));
    }
    problems
}

/// The (method, path, summary) cells of the first table after the
/// `## Routes` heading, header and separator rows dropped.
fn service_route_rows(text: &str) -> Vec<(String, String, String)> {
    let mut rows = Vec::new();
    let mut in_section = false;
    let mut in_table = false;
    for line in text.lines() {
        let t = line.trim();
        if let Some(heading) = t.strip_prefix("## ") {
            if in_section {
                break;
            }
            in_section = heading.trim() == "Routes";
            continue;
        }
        if !in_section {
            continue;
        }
        if t.starts_with('|') && t.ends_with('|') {
            in_table = true;
            let cells: Vec<&str> = t[1..t.len() - 1].split('|').map(str::trim).collect();
            // Skip the header and the |---|---|---| separator.
            if cells.first() == Some(&"method")
                || cells
                    .iter()
                    .all(|c| !c.is_empty() && c.chars().all(|ch| ch == '-'))
            {
                continue;
            }
            if cells.len() == 3 {
                rows.push((cells[0].into(), cells[1].into(), cells[2].into()));
            }
        } else if in_table {
            break;
        }
    }
    rows
}

/// Gate 3: `Describe` output vs the committed Table III artifact, plus the
/// paper's structural constants.
pub fn check_describe_consistency(root: &Path, registry: &[ComponentDescription]) -> Vec<String> {
    let mut problems = Vec::new();
    let tab03 = match crate::csvtab::Table::load(&root.join("results/tab03_storage.csv")) {
        Ok(t) => t,
        Err(e) => return vec![format!("describe consistency: {e}")],
    };
    for row in &tab03.rows {
        let (Some(name), Some(bits_text), Some(kb_text)) = (row.first(), row.get(1), row.get(2))
        else {
            problems.push(format!("tab03_storage.csv: short row {row:?}"));
            continue;
        };
        let Some(d) = registry.iter().find(|d| &d.name == name) else {
            problems.push(format!(
                "tab03_storage.csv lists `{name}` but no component of that \
                 name is in the registry"
            ));
            continue;
        };
        let bits: u64 = match bits_text.parse() {
            Ok(b) => b,
            Err(_) => {
                problems.push(format!("tab03_storage.csv: bad bits cell {bits_text:?}"));
                continue;
            }
        };
        if d.storage_bits != Some(bits) {
            problems.push(format!(
                "`{name}`: Describe reports {:?} bits but tab03_storage.csv \
                 says {bits}",
                d.storage_bits
            ));
        }
        let kb = bits as f64 / 8192.0;
        if (kb_text.parse::<f64>().unwrap_or(f64::NAN) - kb).abs() > 0.005 {
            problems.push(format!(
                "tab03_storage.csv: `{name}` KB cell {kb_text} disagrees with \
                 {bits} bits"
            ));
        }
    }
    if let Some(cbws) = registry.iter().find(|d| d.name == "CBWS") {
        if cbws.storage_bits.unwrap_or(u64::MAX) >= 8192 {
            problems.push("CBWS storage is not under the paper's 1 KB budget".to_string());
        }
        match cbws.params.iter().find(|p| p.name == "table_entries") {
            Some(p) if p.default == "16" => {}
            Some(p) => problems.push(format!(
                "CBWS differential history table has {} entries; the paper's \
                 Fig. 8 specifies 16",
                p.default
            )),
            None => {
                problems.push("CBWS Describe output lost its `table_entries` parameter".to_string())
            }
        }
    } else {
        problems.push("no CBWS component in the registry".to_string());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_route_table_is_parsed_from_the_routes_section_only() {
        let page = "# Title\n\n| a | b | c |\n|---|---|---|\n| x | y | z |\n\n\
                    ## Routes\n\n| method | path | summary |\n|---|---|---|\n\
                    | GET | `/healthz` | alive |\n| POST | `/v1/sweep` | run |\n\n\
                    prose after\n\n| q | r | s |\n|---|---|---|\n| 1 | 2 | 3 |\n";
        let rows = service_route_rows(page);
        assert_eq!(
            rows,
            vec![
                ("GET".into(), "`/healthz`".into(), "alive".into()),
                ("POST".into(), "`/v1/sweep`".into(), "run".into()),
            ]
        );
    }

    #[test]
    fn committed_service_page_matches_the_server_routes() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        assert_eq!(check_service_routes(root), Vec::<String>::new());
    }

    /// Writes `rows` as the service page of a scratch root and returns
    /// what the gate reports about it.
    fn gate_on(tag: &str, rows: &str) -> Vec<String> {
        let dir = std::env::temp_dir().join(format!("docgen-routes-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("book/src")).unwrap();
        let page = format!("## Routes\n\n| method | path | summary |\n|---|---|---|\n{rows}");
        std::fs::write(dir.join("book/src/service.md"), page).unwrap();
        let problems = check_service_routes(&dir);
        std::fs::remove_dir_all(&dir).ok();
        problems
    }

    #[test]
    fn drifted_summary_missing_row_and_extra_row_are_all_reported() {
        let routes = cbws_server::ROUTES;
        let verbatim =
            |r: &cbws_server::Route| format!("| {} | `{}` | {} |\n", r.method, r.path, r.summary);

        // Every route present, but the first row's summary has drifted.
        let mut drifted = format!(
            "| {} | `{}` | something else entirely |\n",
            routes[0].method, routes[0].path
        );
        routes[1..]
            .iter()
            .for_each(|r| drifted.push_str(&verbatim(r)));
        let problems = gate_on("drift", &drifted);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("row 1"), "{}", problems[0]);
        assert!(
            problems[0].contains("something else entirely"),
            "{}",
            problems[0]
        );

        // The last route's row is missing.
        let truncated: String = routes[..routes.len() - 1].iter().map(verbatim).collect();
        let problems = gate_on("missing", &truncated);
        let last = routes.last().unwrap();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains(&format!("`{} {}`", last.method, last.path)),
            "{}",
            problems[0]
        );

        // An invented route is documented past the real ones.
        let mut extended: String = routes.iter().map(verbatim).collect();
        extended.push_str("| GET | `/v1/made-up` | not a route |\n");
        let problems = gate_on("extra", &extended);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("/v1/made-up"), "{}", problems[0]);
    }
}
