//! Offline HTML renderer for the generated book.
//!
//! The container has no `mdbook` binary, so `docgen --html` renders the
//! same `book/src` tree to static HTML with a deliberately small markdown
//! subset: exactly what the book's pages use (headings, paragraphs,
//! fenced code, tables with escaped pipes, nested lists, horizontal
//! rules, blockquotes, emphasis, links, images). Where mdBook is
//! available, `mdbook build book` works on the identical sources.

use std::path::Path;

/// Renders `book/src/*.md` to `out_dir` as one HTML page per source page,
/// with a sidebar built from `SUMMARY.md`. Returns the page count.
pub fn render_book(root: &Path, out_dir: &Path) -> Result<usize, String> {
    let src = root.join("book").join("src");
    let summary = std::fs::read_to_string(src.join("SUMMARY.md"))
        .map_err(|e| format!("cannot read SUMMARY.md: {e}"))?;
    let entries = summary_entries(&summary);
    let nav = render_nav(&entries);
    let mut count = 0;
    for (title, rel) in &entries {
        let md = std::fs::read_to_string(src.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let depth = rel.matches('/').count();
        let html_rel = rel.replace(".md", ".html");
        let out_path = out_dir.join(&html_rel);
        if let Some(dir) = out_path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        let page = page_html(title, &nav, &markdown_to_html(&md), depth);
        std::fs::write(&out_path, page)
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
        count += 1;
    }
    // Copy non-markdown assets (plots) next to their pages.
    copy_assets(&src, out_dir)?;
    // Entry point: redirect index to the introduction.
    let first = entries
        .first()
        .map(|(_, rel)| rel.replace(".md", ".html"))
        .unwrap_or_else(|| "introduction.html".into());
    std::fs::write(
        out_dir.join("index.html"),
        format!("<!DOCTYPE html><meta http-equiv=\"refresh\" content=\"0; url={first}\">"),
    )
    .map_err(|e| format!("cannot write index.html: {e}"))?;
    Ok(count)
}

/// `(title, relative path)` for every page linked from SUMMARY.md.
fn summary_entries(summary: &str) -> Vec<(String, String)> {
    crate::linkcheck::link_targets(summary)
        .into_iter()
        .zip(link_titles(summary))
        .map(|(rel, title)| (title, rel))
        .collect()
}

/// Link texts in order, matching `link_targets`.
fn link_titles(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('[') {
        let after = &rest[open + 1..];
        let Some(close) = after.find(']') else { break };
        if after[close..].starts_with("](") {
            out.push(after[..close].to_string());
        }
        rest = &after[close..];
    }
    out
}

fn render_nav(entries: &[(String, String)]) -> String {
    let mut nav = String::from("<nav><ul>\n");
    for (title, rel) in entries {
        nav.push_str(&format!(
            "<li><a href=\"{{ROOT}}{}\">{}</a></li>\n",
            rel.replace(".md", ".html"),
            escape(title)
        ));
    }
    nav.push_str("</ul></nav>\n");
    nav
}

fn copy_assets(src: &Path, out_dir: &Path) -> Result<(), String> {
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e != "md") {
                let rel = path.strip_prefix(src).expect("under src");
                let dest = out_dir.join(rel);
                if let Some(d) = dest.parent() {
                    std::fs::create_dir_all(d)
                        .map_err(|e| format!("cannot create {}: {e}", d.display()))?;
                }
                std::fs::copy(&path, &dest)
                    .map_err(|e| format!("cannot copy {}: {e}", path.display()))?;
            }
        }
    }
    Ok(())
}

fn page_html(title: &str, nav: &str, body: &str, depth: usize) -> String {
    let root = "../".repeat(depth);
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>{} — cbws-repro</title>\n<style>{}</style></head>\n\
         <body>{}<main>{}</main></body></html>\n",
        escape(title),
        STYLE,
        nav.replace("{ROOT}", &root),
        body
    )
}

const STYLE: &str = "body{display:flex;margin:0;font:16px/1.55 sans-serif;color:#222}\
nav{min-width:230px;max-width:280px;background:#f5f5f5;padding:1em;height:100vh;\
overflow-y:auto;position:sticky;top:0}nav ul{list-style:none;padding-left:0}\
nav li{margin:.3em 0}main{padding:1.5em 2.5em;max-width:60em;overflow-x:auto}\
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:.3em .6em;\
text-align:left}pre{background:#f5f5f5;padding:1em;overflow-x:auto}\
code{background:#f0f0f0;padding:0 .2em}img{max-width:100%}";

/// One open list on the nesting stack.
struct ListLevel {
    /// Leading-space count of this level's items.
    indent: usize,
    /// `<ol>` vs `<ul>`.
    ordered: bool,
    /// Whether the level was opened inside the parent's `<li>` (nested
    /// lists close that item when they close).
    in_item: bool,
}

/// Renders the markdown subset the book's pages use. Generated pages
/// exercise headings, paragraphs, fenced code, tables, flat lists,
/// blockquotes, emphasis, links, and images; the hand-authored
/// [service chapter](../../book/src/service.md) adds horizontal rules,
/// nested lists, and escaped pipes inside table cells.
pub fn markdown_to_html(md: &str) -> String {
    let mut html = String::new();
    let mut lines = md.lines().peekable();
    let mut lists: Vec<ListLevel> = Vec::new();
    while let Some(line) = lines.next() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("<!--") {
            continue;
        }
        if let Some(lang) = trimmed.strip_prefix("```") {
            let mut code = String::new();
            for code_line in lines.by_ref() {
                if code_line.trim_start().starts_with("```") {
                    break;
                }
                code.push_str(&escape(code_line));
                code.push('\n');
            }
            close_lists(&mut html, &mut lists);
            html.push_str(&format!(
                "<pre><code class=\"language-{}\">{}</code></pre>\n",
                escape(lang.trim()),
                code
            ));
            continue;
        }
        if trimmed.is_empty() {
            close_lists(&mut html, &mut lists);
            continue;
        }
        if is_rule(trimmed) {
            close_lists(&mut html, &mut lists);
            html.push_str("<hr>\n");
            continue;
        }
        if let Some(h) = heading(trimmed) {
            close_lists(&mut html, &mut lists);
            html.push_str(&h);
            continue;
        }
        if let Some(quoted) = trimmed.strip_prefix('>') {
            close_lists(&mut html, &mut lists);
            let mut quote = quoted.trim_start().to_string();
            while lines
                .peek()
                .is_some_and(|l| l.trim_start().starts_with('>'))
            {
                let cont = lines.next().unwrap();
                let t = cont.trim_start().trim_start_matches('>').trim_start();
                if !quote.is_empty() && !t.is_empty() {
                    quote.push(' ');
                }
                quote.push_str(t);
            }
            html.push_str(&format!(
                "<blockquote><p>{}</p></blockquote>\n",
                inline(&quote)
            ));
            continue;
        }
        if trimmed.starts_with('|') {
            close_lists(&mut html, &mut lists);
            let mut rows = vec![trimmed.to_string()];
            while lines
                .peek()
                .is_some_and(|l| l.trim_start().starts_with('|'))
            {
                rows.push(lines.next().unwrap().trim_start().to_string());
            }
            html.push_str(&table_html(&rows));
            continue;
        }
        let unordered = trimmed
            .strip_prefix("* ")
            .or_else(|| trimmed.strip_prefix("- "));
        if let Some(item) = unordered.or_else(|| ordered_item(trimmed)) {
            let ordered = unordered.is_none();
            let indent = line.len() - trimmed.len();
            open_list_level(&mut html, &mut lists, indent, ordered);
            html.push_str(&format!("<li>{}</li>\n", inline(item)));
            continue;
        }
        if !lists.is_empty() && html.ends_with("</li>\n") {
            // Continuation line of the previous list item.
            html.truncate(html.len() - "</li>\n".len());
            html.push_str(&format!(" {}</li>\n", inline(trimmed)));
            continue;
        }
        // Paragraph: gather until blank line or structural marker.
        let mut para = trimmed.to_string();
        while lines.peek().is_some_and(|l| {
            let t = l.trim_start();
            !t.is_empty()
                && !t.starts_with('|')
                && !t.starts_with('#')
                && !t.starts_with('>')
                && !t.starts_with("```")
                && !t.starts_with("* ")
                && !t.starts_with("- ")
                && !is_rule(t)
                && ordered_item(t).is_none()
        }) {
            para.push(' ');
            para.push_str(lines.next().unwrap().trim());
        }
        close_lists(&mut html, &mut lists);
        html.push_str(&format!("<p>{}</p>\n", inline(&para)));
    }
    close_lists(&mut html, &mut lists);
    html
}

/// A thematic break: three or more `-` or `*` alone on the line (but not
/// a table separator, which starts with `|` and never reaches here).
fn is_rule(line: &str) -> bool {
    line.len() >= 3 && (line.bytes().all(|b| b == b'-') || line.bytes().all(|b| b == b'*'))
}

/// Adjusts the list stack for an item at `indent`: closes deeper levels,
/// reuses a matching one, or opens a new (possibly nested) level.
fn open_list_level(html: &mut String, lists: &mut Vec<ListLevel>, indent: usize, ordered: bool) {
    while lists
        .last()
        .is_some_and(|l| l.indent > indent || (l.indent == indent && l.ordered != ordered))
    {
        close_one_list(html, lists);
    }
    if lists.last().is_some_and(|l| l.indent == indent) {
        return; // continue the open level
    }
    // Deeper than the current level: nest inside the item just emitted.
    let in_item = !lists.is_empty() && html.ends_with("</li>\n");
    if in_item {
        html.truncate(html.len() - "</li>\n".len());
        html.push('\n');
    }
    html.push_str(if ordered { "<ol>\n" } else { "<ul>\n" });
    lists.push(ListLevel {
        indent,
        ordered,
        in_item,
    });
}

/// Closes the innermost open list.
fn close_one_list(html: &mut String, lists: &mut Vec<ListLevel>) {
    let Some(level) = lists.pop() else { return };
    html.push_str(if level.ordered { "</ol>" } else { "</ul>" });
    html.push_str(if level.in_item { "</li>\n" } else { "\n" });
}

/// Closes every open list.
fn close_lists(html: &mut String, lists: &mut Vec<ListLevel>) {
    while !lists.is_empty() {
        close_one_list(html, lists);
    }
}

fn heading(line: &str) -> Option<String> {
    let level = line.bytes().take_while(|&b| b == b'#').count();
    if (1..=6).contains(&level) && line.as_bytes().get(level) == Some(&b' ') {
        Some(format!(
            "<h{level}>{}</h{level}>\n",
            inline(line[level + 1..].trim())
        ))
    } else {
        None
    }
}

fn ordered_item(line: &str) -> Option<&str> {
    let digits = line.bytes().take_while(|b| b.is_ascii_digit()).count();
    if digits > 0 && line[digits..].starts_with(". ") {
        Some(&line[digits + 2..])
    } else {
        None
    }
}

fn table_html(rows: &[String]) -> String {
    // `\|` is a literal pipe inside a cell, not a column break: hide it
    // behind a sentinel before splitting, restore it after.
    const PIPE: char = '\u{1}';
    let mut html = String::from("<table>\n");
    for (i, row) in rows.iter().enumerate() {
        let row = row.replace("\\|", &PIPE.to_string());
        let cells: Vec<&str> = row.trim_matches('|').split('|').collect();
        if cells.iter().all(|c| {
            let t = c.trim();
            !t.is_empty() && t.chars().all(|ch| ch == '-' || ch == ':')
        }) {
            continue; // separator row
        }
        let tag = if i == 0 { "th" } else { "td" };
        html.push_str("<tr>");
        for cell in cells {
            let cell = cell.trim().replace(PIPE, "|");
            html.push_str(&format!("<{tag}>{}</{tag}>", inline(&cell)));
        }
        html.push_str("</tr>\n");
    }
    html.push_str("</table>\n");
    html
}

/// Inline markdown: escaping, code spans, images, links, bold, italics.
fn inline(text: &str) -> String {
    // Tokenize code spans first so nothing inside them is interpreted.
    let mut out = String::new();
    let mut rest = text;
    while let Some(tick) = rest.find('`') {
        out.push_str(&inline_no_code(&rest[..tick]));
        let after = &rest[tick + 1..];
        if let Some(close) = after.find('`') {
            out.push_str(&format!("<code>{}</code>", escape(&after[..close])));
            rest = &after[close + 1..];
        } else {
            out.push('`');
            rest = after;
        }
    }
    out.push_str(&inline_no_code(rest));
    out
}

fn inline_no_code(text: &str) -> String {
    let mut out = String::new();
    let mut rest = text;
    loop {
        // Earliest of image or link.
        let img = rest.find("![");
        let link = rest
            .char_indices()
            .find(|&(i, c)| c == '[' && (i == 0 || !rest[..i].ends_with('!')))
            .map(|(i, _)| i);
        let (pos, is_img) = match (img, link) {
            (Some(a), Some(b)) if a < b => (a, true),
            (_, Some(b)) => (b, false),
            (Some(a), None) => (a, true),
            (None, None) => break,
        };
        let bracket = pos + if is_img { 2 } else { 1 };
        let after = &rest[bracket..];
        let parsed = after.find(']').and_then(|close| {
            after[close..]
                .strip_prefix("](")
                .and_then(|tail| tail.find(')').map(|end| (close, end)))
        });
        let Some((close, end)) = parsed else {
            out.push_str(&emphasize(&rest[..bracket]));
            rest = after;
            continue;
        };
        out.push_str(&emphasize(&rest[..pos]));
        let label = &after[..close];
        let target = &after[close + 2..close + 2 + end];
        let target = target.split_whitespace().next().unwrap_or("");
        if is_img {
            out.push_str(&format!(
                "<img src=\"{}\" alt=\"{}\">",
                escape(target),
                escape(label)
            ));
        } else {
            out.push_str(&format!(
                "<a href=\"{}\">{}</a>",
                escape(&target.replace(".md", ".html")),
                emphasize(label)
            ));
        }
        rest = &after[close + 2 + end + 1..];
    }
    out.push_str(&emphasize(rest));
    out
}

/// `**bold**` and `*italic*` over already-link-free text.
fn emphasize(text: &str) -> String {
    let mut out = escape(text);
    for (marker, tag) in [("**", "strong"), ("*", "em")] {
        while let Some(open) = out.find(marker) {
            let Some(off) = out[open + marker.len()..].find(marker) else {
                break;
            };
            let close = open + marker.len() + off;
            let innerd = out[open + marker.len()..close].to_string();
            out = format!(
                "{}<{tag}>{}</{tag}>{}",
                &out[..open],
                innerd,
                &out[close + marker.len()..]
            );
        }
    }
    out
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_core_constructs() {
        let html = markdown_to_html(
            "# Title\n\nPara with `code` and [link](x.md) and **bold**.\n\n\
             | a | b |\n|---|---|\n| 1 | 2 |\n\n* item one\n* item two\n",
        );
        assert!(html.contains("<h1>Title</h1>"));
        assert!(html.contains("<code>code</code>"));
        assert!(html.contains("<a href=\"x.html\">link</a>"));
        assert!(html.contains("<strong>bold</strong>"));
        assert!(html.contains("<th>a</th>"));
        assert!(html.contains("<td>2</td>"));
        assert!(html.contains("<li>item one</li>"));
    }

    #[test]
    fn code_fence_escapes_html() {
        let html = markdown_to_html("```bash\ncargo run < in > out\n```\n");
        assert!(html.contains("cargo run &lt; in &gt; out"));
    }

    #[test]
    fn images_render() {
        let html = markdown_to_html("![plot](fig.svg)\n");
        assert!(html.contains("<img src=\"fig.svg\" alt=\"plot\">"));
    }

    #[test]
    fn horizontal_rules_render_but_short_dashes_stay_prose() {
        let html = markdown_to_html("before\n\n---\n\nafter\n");
        assert!(html.contains("<p>before</p>\n<hr>\n<p>after</p>"), "{html}");
        // `--` is prose; a rule glued to a paragraph still breaks it.
        let html = markdown_to_html("a -- b\n---\n");
        assert!(html.contains("<p>a -- b</p>\n<hr>"), "{html}");
    }

    #[test]
    fn nested_lists_nest_and_close_back_out() {
        let html = markdown_to_html("- outer one\n  - inner a\n  - inner b\n- outer two\n\ntail\n");
        assert!(
            html.contains(
                "<ul>\n<li>outer one\n<ul>\n<li>inner a</li>\n<li>inner b</li>\n\
                 </ul></li>\n<li>outer two</li>\n</ul>\n"
            ),
            "{html}"
        );
        assert!(html.contains("<p>tail</p>"));
    }

    #[test]
    fn nested_ordered_inside_unordered() {
        let html = markdown_to_html("- outer\n  1. first\n  2. second\n");
        assert!(
            html.contains("<li>outer\n<ol>\n<li>first</li>\n<li>second</li>\n</ol></li>"),
            "{html}"
        );
    }

    #[test]
    fn escaped_pipes_stay_inside_table_cells() {
        let html =
            markdown_to_html("| flag | effect |\n|---|---|\n| `a\\|b` | either \\| both |\n");
        assert!(html.contains("<td><code>a|b</code></td>"), "{html}");
        assert!(html.contains("<td>either | both</td>"), "{html}");
    }

    #[test]
    fn blockquotes_render_and_merge_continuation_lines() {
        let html = markdown_to_html("before\n\n> quoted `code`\n> continues here\n\nafter\n");
        assert!(html
            .contains("<blockquote><p>quoted <code>code</code> continues here</p></blockquote>"));
        assert!(html.contains("<p>before</p>"));
        assert!(html.contains("<p>after</p>"));
    }
}
