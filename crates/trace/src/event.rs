//! Trace event definitions.

use crate::addr::{Addr, BlockId, Pc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// A load instruction.
    Load,
    /// A store instruction.
    Store,
}

impl MemKind {
    /// True for [`MemKind::Store`].
    pub fn is_store(self) -> bool {
        matches!(self, MemKind::Store)
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Load => f.write_str("LD"),
            MemKind::Store => f.write_str("ST"),
        }
    }
}

/// Address-generation dependence of a memory access.
///
/// The timing model uses this to decide whether a load can issue in parallel
/// with preceding loads (affine array indexing) or must wait for the previous
/// load's data (pointer chasing / data-dependent indexing, as in the paper's
/// `histo` example of Fig. 16 and the `mcf` arc traversal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Dependence {
    /// Address computable from loop induction variables; independent of
    /// earlier in-flight loads.
    #[default]
    None,
    /// Address depends on the value produced by the immediately preceding
    /// load in program order (serializes with it).
    PrevLoad,
}

/// One committed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Static PC of the memory instruction.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Load or store.
    pub kind: MemKind,
    /// Address-generation dependence class.
    pub dep: Dependence,
}

impl MemAccess {
    /// Convenience constructor for an independent load.
    pub fn load(pc: Pc, addr: Addr) -> Self {
        MemAccess {
            pc,
            addr,
            kind: MemKind::Load,
            dep: Dependence::None,
        }
    }

    /// Convenience constructor for an independent store.
    pub fn store(pc: Pc, addr: Addr) -> Self {
        MemAccess {
            pc,
            addr,
            kind: MemKind::Store,
            dep: Dependence::None,
        }
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @{}", self.kind, self.addr, self.pc)
    }
}

/// One committed branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Static PC of the branch instruction.
    pub pc: Pc,
    /// Actual direction taken at commit.
    pub taken: bool,
}

/// A single event in a committed instruction trace.
///
/// Events correspond to committed instructions: `BlockBegin`/`BlockEnd` are
/// the paper's two new ISA instructions, `Alu` compresses `count`
/// back-to-back non-memory, non-branch instructions into one event, and
/// `Mem`/`Branch` are single instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `BLOCK_BEGIN(id)`: an annotated tight-loop iteration starts.
    BlockBegin {
        /// Static code-block identifier.
        id: BlockId,
    },
    /// `BLOCK_END(id)`: the iteration completes.
    BlockEnd {
        /// Static code-block identifier.
        id: BlockId,
    },
    /// `count` consecutive non-memory ALU instructions starting at `pc`.
    Alu {
        /// PC of the first instruction in the run.
        pc: Pc,
        /// Number of instructions compressed into this event (≥ 1).
        count: u32,
    },
    /// One committed memory access.
    Mem(MemAccess),
    /// One committed branch.
    Branch(BranchRecord),
}

impl TraceEvent {
    /// Number of committed instructions this event represents.
    pub fn instructions(&self) -> u64 {
        match self {
            TraceEvent::Alu { count, .. } => u64::from(*count),
            _ => 1,
        }
    }

    /// The memory access carried by this event, if any.
    pub fn mem(&self) -> Option<&MemAccess> {
        match self {
            TraceEvent::Mem(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::BlockBegin { id } => write!(f, "BLOCK_BEGIN({id})"),
            TraceEvent::BlockEnd { id } => write!(f, "BLOCK_END({id})"),
            TraceEvent::Alu { pc, count } => write!(f, "ALUx{count} @{pc}"),
            TraceEvent::Mem(m) => write!(f, "{m}"),
            TraceEvent::Branch(b) => {
                write!(f, "BR {} @{}", if b.taken { "T" } else { "N" }, b.pc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts() {
        assert_eq!(
            TraceEvent::Alu {
                pc: Pc(0),
                count: 7
            }
            .instructions(),
            7
        );
        assert_eq!(
            TraceEvent::Mem(MemAccess::load(Pc(0), Addr(0))).instructions(),
            1
        );
        assert_eq!(TraceEvent::BlockBegin { id: BlockId(0) }.instructions(), 1);
        assert_eq!(
            TraceEvent::Branch(BranchRecord {
                pc: Pc(0),
                taken: true
            })
            .instructions(),
            1
        );
    }

    #[test]
    fn mem_accessor() {
        let m = MemAccess::store(Pc(1), Addr(64));
        assert_eq!(TraceEvent::Mem(m).mem(), Some(&m));
        assert_eq!(
            TraceEvent::Alu {
                pc: Pc(0),
                count: 1
            }
            .mem(),
            None
        );
    }

    #[test]
    fn display_is_nonempty() {
        let events = [
            TraceEvent::BlockBegin { id: BlockId(0) },
            TraceEvent::BlockEnd { id: BlockId(0) },
            TraceEvent::Alu {
                pc: Pc(4),
                count: 3,
            },
            TraceEvent::Mem(MemAccess::load(Pc(8), Addr(128))),
            TraceEvent::Branch(BranchRecord {
                pc: Pc(12),
                taken: false,
            }),
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
        }
    }
}
