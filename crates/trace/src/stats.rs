//! Summary statistics over a trace.

use crate::addr::LINE_BYTES;
use crate::event::{MemKind, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Static and dynamic summary statistics for a [`crate::Trace`].
///
/// These back two of the paper's motivating measurements:
///
/// * the fraction of instructions inside annotated blocks
///   ([`TraceStats::block_instruction_fraction`]), the trace-level analogue
///   of Fig. 1's runtime fraction, and
/// * the distribution of per-block working-set sizes
///   ([`TraceStats::block_ws_within`]), used to validate the paper's claim
///   that 16 lines capture the complete working set of over 98% of dynamic
///   blocks (§IV-A).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total committed instructions.
    pub instructions: u64,
    /// Committed memory accesses.
    pub mem_accesses: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Dynamic block instances (`BLOCK_BEGIN` count).
    pub dynamic_blocks: u64,
    /// Distinct static block ids seen.
    pub static_blocks: u64,
    /// Instructions committed inside blocks (inclusive of the bracket
    /// instructions themselves).
    pub block_instructions: u64,
    /// Memory accesses committed inside blocks.
    pub block_mem_accesses: u64,
    /// Histogram of per-dynamic-block working-set sizes (distinct lines).
    /// Index `i` counts blocks whose CBWS had exactly `i` lines; the last
    /// bucket aggregates everything `>= ws_histogram.len() - 1`.
    pub ws_histogram: Vec<u64>,
}

/// Largest exactly-tracked working-set size in [`TraceStats::ws_histogram`].
const WS_HISTOGRAM_MAX: usize = 64;

impl TraceStats {
    /// Computes statistics from an event sequence in program order.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        Self::from_event_iter(events.iter().copied())
    }

    /// Computes statistics from a streamed event sequence (e.g. a
    /// [`crate::TraceCursor`]) without materializing the events.
    pub fn from_event_iter(events: impl IntoIterator<Item = TraceEvent>) -> Self {
        let mut s = TraceStats {
            ws_histogram: vec![0; WS_HISTOGRAM_MAX + 1],
            ..Self::default()
        };
        let mut static_ids = BTreeSet::new();
        let mut in_block = false;
        let mut block_lines: BTreeSet<u64> = BTreeSet::new();

        for e in events {
            let n = e.instructions();
            s.instructions += n;
            if in_block {
                s.block_instructions += n;
            }
            match e {
                TraceEvent::BlockBegin { id } => {
                    static_ids.insert(id.0);
                    s.dynamic_blocks += 1;
                    in_block = true;
                    // `block_instructions` must include the bracket itself;
                    // the increment above ran before `in_block` was set.
                    s.block_instructions += 1;
                    block_lines.clear();
                }
                TraceEvent::BlockEnd { .. } => {
                    in_block = false;
                    let ws = block_lines.len().min(WS_HISTOGRAM_MAX);
                    s.ws_histogram[ws] += 1;
                }
                TraceEvent::Mem(m) => {
                    s.mem_accesses += 1;
                    match m.kind {
                        MemKind::Load => s.loads += 1,
                        MemKind::Store => s.stores += 1,
                    }
                    if in_block {
                        s.block_mem_accesses += 1;
                        block_lines.insert(m.addr.line().0);
                    }
                }
                TraceEvent::Branch(_) => s.branches += 1,
                TraceEvent::Alu { .. } => {}
            }
        }
        s.static_blocks = static_ids.len() as u64;
        s
    }

    /// Fraction of committed instructions inside annotated blocks, in 0..=1.
    /// Returns 0 for an empty trace.
    pub fn block_instruction_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.block_instructions as f64 / self.instructions as f64
        }
    }

    /// Fraction of dynamic blocks whose working set fits within `lines`
    /// distinct cache lines, in 0..=1. Returns 1.0 when there are no blocks.
    pub fn block_ws_within(&self, lines: usize) -> f64 {
        if self.dynamic_blocks == 0 {
            return 1.0;
        }
        let within: u64 = self
            .ws_histogram
            .iter()
            .take(lines.min(self.ws_histogram.len() - 1) + 1)
            .sum();
        within as f64 / self.dynamic_blocks as f64
    }

    /// Total bytes touched assuming each access touches one line.
    pub fn demand_bytes_upper_bound(&self) -> u64 {
        self.mem_accesses * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, BlockId, Pc, TraceBuilder};

    fn sample() -> TraceStats {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0), 10); // prologue outside any block
        b.annotated_loop(BlockId(0), 4, |b, i| {
            b.load(Pc(0x10), Addr(i * 4096));
            b.load(Pc(0x14), Addr(i * 4096 + 64));
            b.store(Pc(0x18), Addr(i * 4096 + 128));
            b.alu(Pc(0x1c), 2);
        });
        b.finish().stats()
    }

    #[test]
    fn instruction_accounting() {
        let s = sample();
        // 10 prologue + per iter: begin + 3 mem + 2 alu + end + branch = 8.
        assert_eq!(s.instructions, 10 + 4 * 8);
        assert_eq!(s.mem_accesses, 12);
        assert_eq!(s.loads, 8);
        assert_eq!(s.stores, 4);
        assert_eq!(s.branches, 4);
    }

    #[test]
    fn block_accounting() {
        let s = sample();
        assert_eq!(s.dynamic_blocks, 4);
        assert_eq!(s.static_blocks, 1);
        // Inside a block: begin + 3 mem + 2 alu + end = 7 per iteration.
        // The loop back-branch is outside the block.
        assert_eq!(s.block_instructions, 4 * 7);
        assert_eq!(s.block_mem_accesses, 12);
        let frac = s.block_instruction_fraction();
        assert!((frac - 28.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn ws_histogram_counts_distinct_lines() {
        let s = sample();
        // Each iteration touches 3 distinct lines.
        assert_eq!(s.ws_histogram[3], 4);
        assert_eq!(s.block_ws_within(3), 1.0);
        assert_eq!(s.block_ws_within(2), 0.0);
    }

    #[test]
    fn duplicate_lines_counted_once() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(0));
        b.load(Pc(0), Addr(0));
        b.load(Pc(4), Addr(8)); // same line
        b.load(Pc(8), Addr(64)); // second line
        b.end_block(BlockId(0));
        let s = b.finish().stats();
        assert_eq!(s.ws_histogram[2], 1);
    }

    #[test]
    fn empty_trace_fractions() {
        let s = TraceStats::from_events(&[]);
        assert_eq!(s.block_instruction_fraction(), 0.0);
        assert_eq!(s.block_ws_within(16), 1.0);
    }

    #[test]
    fn oversized_ws_lands_in_last_bucket() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(0));
        for i in 0..100u64 {
            b.load(Pc(0), Addr(i * 64));
        }
        b.end_block(BlockId(0));
        let s = b.finish().stats();
        assert_eq!(*s.ws_histogram.last().unwrap(), 1);
        assert!(s.block_ws_within(16) < 1.0);
        assert_eq!(s.block_ws_within(WS_HISTOGRAM_MAX), 1.0);
    }
}
