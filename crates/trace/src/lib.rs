#![warn(missing_docs)]

//! Trace substrate for the CBWS reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: byte/line addresses, program counters, code-block identifiers,
//! trace events, and the [`TraceBuilder`] used by the synthetic workloads to
//! emit instruction traces.
//!
//! The paper instruments benchmarks with an LLVM pass that brackets innermost
//! tight loops with two new ISA instructions, `BLOCK_BEGIN(id)` and
//! `BLOCK_END(id)`. Our stand-in for that pass is the
//! [`TraceBuilder::annotated_loop`] combinator (and the higher-level
//! `LoopNest` DSL in the `cbws-workloads` crate): kernels written against it
//! get their innermost loop bodies bracketed by [`TraceEvent::BlockBegin`] /
//! [`TraceEvent::BlockEnd`] events carrying static block ids, which is exactly
//! the contract the CBWS hardware sees in the paper.
//!
//! # Example
//!
//! ```
//! use cbws_trace::{TraceBuilder, Addr, Pc, BlockId};
//!
//! let mut b = TraceBuilder::new();
//! b.annotated_loop(BlockId(0), 4, |b, i| {
//!     b.load(Pc(0x400), Addr(0x1000 + 64 * i));
//!     b.alu(Pc(0x404), 2);
//! });
//! let trace = b.finish();
//! assert_eq!(trace.stats().dynamic_blocks, 4);
//! ```

mod addr;
mod builder;
mod event;
mod packed;
mod stats;
pub mod varint;

pub use addr::{Addr, BlockId, LineAddr, Pc, LINE_BYTES, LINE_SHIFT};
pub use builder::{BuildError, ChunkSink, TraceBuilder};
pub use event::{BranchRecord, Dependence, MemAccess, MemKind, TraceEvent};
pub use packed::{
    fnv1a, EventCursor, EventRef, EventSource, FileCursor, FrameEntry, FramedCursor, FramedTrace,
    PackedError, PackedTrace, ReplayCursor, ReplaySource, SliceCursor, StreamObserver, StreamStats,
    StreamedTrace, TraceCursor,
};
pub use stats::TraceStats;

use serde::{Deserialize, Serialize};

/// A complete instruction/memory trace produced by a workload kernel.
///
/// A trace is an ordered sequence of [`TraceEvent`]s, in program (commit)
/// order. Traces are what the simulator in `cbws-harness` consumes and what
/// the CBWS hardware observes (the paper's prefetcher reads addresses from
/// the in-order commit stage, §V-B).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a trace directly from a sequence of events.
    ///
    /// Most callers should use [`TraceBuilder`] instead, which validates
    /// block nesting. This constructor performs no validation and exists for
    /// tests and for replaying externally-captured traces.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// The events of this trace in program order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events (not instructions; see [`TraceStats::instructions`]).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Computes summary statistics over the whole trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_events(&self.events)
    }

    /// Approximate resident heap footprint in bytes (capacity, not length,
    /// of the event storage). Used by the shared trace cache to enforce its
    /// byte budget.
    pub fn footprint_bytes(&self) -> u64 {
        (self.events.capacity() * std::mem::size_of::<TraceEvent>()) as u64
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}
