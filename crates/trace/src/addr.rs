//! Address-space vocabulary types.
//!
//! All simulated structures in the workspace use a fixed 64-byte cache line,
//! matching Table II of the paper (L1 and L2 both use 64-byte lines).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Adds a signed delta to an unsigned value, saturating at both ends.
fn saturating_add_signed(value: u64, delta: i64) -> u64 {
    if delta >= 0 {
        value.saturating_add(delta as u64)
    } else {
        value.saturating_sub(delta.unsigned_abs())
    }
}

/// Cache line size in bytes (Table II: 64 bytes at every level).
pub const LINE_BYTES: u64 = 64;

/// `log2(LINE_BYTES)`.
pub const LINE_SHIFT: u32 = 6;

/// A byte address in the simulated virtual address space.
///
/// ```
/// use cbws_trace::{Addr, LineAddr};
/// assert_eq!(Addr(0x1040).line(), LineAddr(0x41));
/// assert_eq!(Addr(0x1040).line_offset(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this byte address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Offset of this byte within its cache line, in `0..LINE_BYTES`.
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Returns the address shifted by a signed byte delta, saturating at 0.
    pub fn offset(self, delta: i64) -> Addr {
        Addr(saturating_add_signed(self.0, delta))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line address (byte address divided by [`LINE_BYTES`]).
///
/// Line addresses are what CBWS vectors are made of: Eq. 1 of the paper
/// defines a CBWS as a time-ordered set of unique *line* addresses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of this line.
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Signed distance in lines between two line addresses (`self - other`).
    ///
    /// This is the element-wise operation from which CBWS differentials
    /// (Eq. 2) are built.
    pub fn delta(self, other: LineAddr) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Returns this line shifted by a signed line delta, saturating at 0.
    pub fn offset(self, delta: i64) -> LineAddr {
        LineAddr(saturating_add_signed(self.0, delta))
    }

    /// The lower 32 bits of the line address, as stored by the paper's
    /// "current CBWS buffer" (Fig. 8 stores 32-bit line addresses).
    pub fn low32(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

/// A static program counter identifying a memory instruction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(pub u64);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(v: u64) -> Self {
        Pc(v)
    }
}

/// The static identifier assigned to an annotated code block (tight loop
/// body) by the compiler pass (§IV-A of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

impl From<u32> for BlockId {
    fn from(v: u32) -> Self {
        BlockId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_offset_roundtrip() {
        let a = Addr(0x12345);
        assert_eq!(a.line().base().0 + a.line_offset(), a.0);
    }

    #[test]
    fn line_delta_is_signed() {
        assert_eq!(LineAddr(10).delta(LineAddr(14)), -4);
        assert_eq!(LineAddr(14).delta(LineAddr(10)), 4);
        assert_eq!(LineAddr(7).delta(LineAddr(7)), 0);
    }

    #[test]
    fn line_offset_saturates_at_zero() {
        assert_eq!(LineAddr(3).offset(-10), LineAddr(0));
        assert_eq!(LineAddr(3).offset(4), LineAddr(7));
    }

    #[test]
    fn addr_offset_saturates_at_zero() {
        assert_eq!(Addr(5).offset(-100), Addr(0));
        assert_eq!(Addr(5).offset(100), Addr(105));
    }

    #[test]
    fn delta_applied_to_line_recovers_target() {
        let a = LineAddr(0x5499);
        let b = LineAddr(0x6523);
        let d = b.delta(a);
        assert_eq!(a.offset(d), b);
    }

    #[test]
    fn low32_truncates() {
        assert_eq!(LineAddr(0x1_0000_00FF).low32(), 0xFF);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(0x40).to_string(), "0x40");
        assert_eq!(LineAddr(1).to_string(), "L0x1");
        assert_eq!(Pc(0x400).to_string(), "pc0x400");
        assert_eq!(BlockId(3).to_string(), "blk3");
    }
}
