//! LEB128 varint coding for the packed-trace operand lanes, with a
//! batch-oriented decoder the replay cursor uses.
//!
//! Each operand lane of a [`crate::PackedTrace`] is a stream of
//! little-endian base-128 varints: 7 value bits per byte, high bit set on
//! every byte except the last. Signed values (memory-address deltas) are
//! [zigzag]-folded first so small magnitudes of either sign stay short.
//!
//! The decoder comes in two shapes with identical output:
//!
//! * [`decode_batch_scalar`] — the obvious one-entry-at-a-time loop, kept
//!   as the reference kernel for property tests and the
//!   `decode_throughput` A/B bench;
//! * [`decode_batch`] — the batched kernel the cursor refill uses. It
//!   loads 8 lane bytes at a time and, when none of them carries a
//!   continuation bit (`word & 0x8080…80 == 0`, the common case: PCs,
//!   ALU run lengths, block ids, and unit-stride deltas are almost always
//!   < 128 after folding), emits eight decoded entries from that single
//!   word with shifts and masks — no per-entry branching. Mixed runs fall
//!   back to the scalar loop one entry at a time and re-probe.
//!
//! [zigzag]: https://protobuf.dev/programming-guides/encoding/#signed-ints

/// Longest legal encoding of a `u64`: ⌈64 / 7⌉ bytes.
pub const MAX_LEN: usize = 10;

/// A `u64` whose every byte has only the continuation bit set; one AND
/// against a lane word tells whether all 8 bytes terminate an entry.
const CONT_BITS: u64 = 0x8080_8080_8080_8080;

/// Appends the LEB128 encoding of `v` to `out`.
#[inline]
pub fn encode(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Folds a signed value so small magnitudes of either sign encode short:
/// 0, -1, 1, -2, … ↦ 0, 1, 2, 3, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    (v >> 1) as i64 ^ -((v & 1) as i64)
}

/// Decodes one varint from the front of `bytes`, consuming it.
///
/// Panics if the entry runs past the end of `bytes`; packed-trace lanes
/// are validated (see [`count_entries`]) before any decoder touches them,
/// so the panic is a can't-happen guard, not a parse path.
#[inline]
pub fn decode_one(bytes: &mut &[u8]) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&b, rest) = bytes.split_first().expect("truncated varint lane");
        *bytes = rest;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Reference decoder: fills `out` one entry at a time, consuming the
/// decoded bytes from the front of `lane`.
pub fn decode_batch_scalar(lane: &mut &[u8], out: &mut [u64]) {
    for slot in out.iter_mut() {
        *slot = decode_one(lane);
    }
}

/// Alternating 7-bit masks for the [`gather7`] fold steps.
const M1: u64 = 0x007f_007f_007f_007f;
const M2: u64 = 0x0000_3fff_0000_3fff;
const M3: u64 = 0x0000_0000_0fff_ffff;

/// Packs the low 7 bits of each byte of `x` into one contiguous value
/// (byte `k` contributes bits `7k..7k+7`) with three shift-mask folds —
/// the branch-free core of the variable-length fast path. `x` must
/// already be masked to its continuation-stripped payload bytes.
#[inline]
fn gather7(x: u64) -> u64 {
    let x = (x & M1) | ((x & !M1 & 0x7f00_7f00_7f00_7f00) >> 1);
    let x = (x & M2) | ((x & !M2) >> 2);
    (x & M3) | ((x & !M3) >> 4)
}

/// Batched decoder: fills `out` from the front of `lane`. Two fast paths
/// over an 8-byte unaligned load:
///
/// * no continuation bit anywhere in the word (dense one-byte lanes:
///   ALU run lengths, block ids) — eight entries from one load;
/// * otherwise the first clear continuation bit gives the entry length
///   with `trailing_zeros`, and `gather7` packs the payload bits — one
///   entry per load with no per-byte loop or data-dependent branching.
///
/// Entries longer than 8 bytes (values ≥ 2^56, absent from real lanes)
/// and the last <8 bytes of the lane fall back to [`decode_one`]. Output
/// is identical to [`decode_batch_scalar`] (property-tested in
/// `tests/varint_properties.rs`).
pub fn decode_batch(lane: &mut &[u8], out: &mut [u64]) {
    let mut bytes = *lane;
    let n = out.len();
    let mut i = 0;
    while i < n && bytes.len() >= 8 {
        let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let cont = word & CONT_BITS;
        if cont == 0 && i + 8 <= n {
            out[i] = word & 0x7f;
            out[i + 1] = (word >> 8) & 0x7f;
            out[i + 2] = (word >> 16) & 0x7f;
            out[i + 3] = (word >> 24) & 0x7f;
            out[i + 4] = (word >> 32) & 0x7f;
            out[i + 5] = (word >> 40) & 0x7f;
            out[i + 6] = (word >> 48) & 0x7f;
            out[i + 7] = (word >> 56) & 0x7f;
            bytes = &bytes[8..];
            i += 8;
        } else if cont != CONT_BITS {
            // First byte with a clear high bit ends the entry; trailing
            // zeros of the inverted continuation mask find it without a
            // byte-by-byte scan.
            let len = ((!word & CONT_BITS).trailing_zeros() / 8 + 1) as usize;
            let masked = word & (u64::MAX >> (64 - 8 * len));
            out[i] = gather7(masked & !CONT_BITS);
            bytes = &bytes[len..];
            i += 1;
        } else {
            // All 8 continuation bits set: a 9–10 byte entry.
            out[i] = decode_one(&mut bytes);
            i += 1;
        }
    }
    for slot in &mut out[i..] {
        *slot = decode_one(&mut bytes);
    }
    *lane = bytes;
}

/// Counts the entries of a varint lane, or `None` if the lane is
/// malformed: it ends inside an entry (dangling continuation bit) or an
/// entry exceeds [`MAX_LEN`] bytes.
///
/// A lane this function accepts can be decoded to its end without running
/// out of bytes and without any shift reaching 64, which is what lets the
/// decoders above assume well-formed input.
pub fn count_entries(lane: &[u8]) -> Option<usize> {
    let mut n = 0usize;
    let mut run = 0usize; // continuation bytes since the last terminator
    for &b in lane {
        if b & 0x80 == 0 {
            if run >= MAX_LEN {
                return None;
            }
            n += 1;
            run = 0;
        } else {
            run += 1;
            if run >= MAX_LEN {
                return None;
            }
        }
    }
    if run != 0 {
        return None;
    }
    Some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_of(values: &[u64]) -> Vec<u8> {
        let mut lane = Vec::new();
        for &v in values {
            encode(v, &mut lane);
        }
        lane
    }

    fn decode_all(lane: &[u8], n: usize, batched: bool) -> Vec<u64> {
        let mut out = vec![0u64; n];
        let mut rest = lane;
        if batched {
            decode_batch(&mut rest, &mut out);
        } else {
            decode_batch_scalar(&mut rest, &mut out);
        }
        assert!(rest.is_empty(), "undrained lane bytes: {}", rest.len());
        out
    }

    #[test]
    fn round_trips_boundary_values() {
        let values: Vec<u64> = (0..11)
            .flat_map(|s| {
                let edge = 1u64 << (7 * s).min(63);
                [edge.wrapping_sub(1), edge, edge.wrapping_add(1)]
            })
            .chain([0, 1, 127, 128, u64::MAX])
            .collect();
        let lane = lane_of(&values);
        assert_eq!(count_entries(&lane), Some(values.len()));
        assert_eq!(decode_all(&lane, values.len(), false), values);
        assert_eq!(decode_all(&lane, values.len(), true), values);
    }

    #[test]
    fn batched_matches_scalar_on_mixed_widths() {
        // Alternating short/long entries defeat the 8-wide fast path at
        // every probe; interspersed all-short runs re-enable it.
        let mut values = Vec::new();
        for i in 0..100u64 {
            values.push(i % 128);
            if i % 9 == 0 {
                values.push(u64::MAX - i);
            }
        }
        let lane = lane_of(&values);
        assert_eq!(
            decode_all(&lane, values.len(), true),
            decode_all(&lane, values.len(), false)
        );
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 42, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay one byte after folding.
        for v in [-63i64, 63] {
            let mut lane = Vec::new();
            encode(zigzag(v), &mut lane);
            assert_eq!(lane.len(), 1);
        }
    }

    #[test]
    fn malformed_lanes_are_rejected() {
        assert_eq!(count_entries(&[0x80]), None); // dangling continuation
        assert_eq!(count_entries(&[0x80; 16]), None);
        let overlong = [0x80u8; 10]
            .iter()
            .copied()
            .chain([0x01])
            .collect::<Vec<_>>();
        assert_eq!(count_entries(&overlong), None); // 11-byte entry
        assert_eq!(count_entries(&[]), Some(0));
        let max = lane_of(&[u64::MAX]);
        assert_eq!(max.len(), MAX_LEN);
        assert_eq!(count_entries(&max), Some(1));
    }
}
