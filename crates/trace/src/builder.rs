//! The [`TraceBuilder`]: the workloads' interface for emitting traces.

use crate::addr::{Addr, BlockId, Pc};
use crate::event::{BranchRecord, Dependence, MemAccess, MemKind, TraceEvent};
use crate::Trace;
use std::error::Error;
use std::fmt;

/// Errors detected while building a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `begin_block` while a block is already open. The paper only annotates
    /// *innermost* tight loops, so blocks never nest (§IV-A).
    NestedBlock {
        /// The block that is already open.
        open: BlockId,
        /// The block that was attempted to be opened.
        attempted: BlockId,
    },
    /// `end_block(id)` without a matching open block.
    UnmatchedEnd {
        /// The id passed to `end_block`.
        id: BlockId,
    },
    /// `end_block(id)` while a *different* block is open.
    MismatchedEnd {
        /// The currently open block.
        open: BlockId,
        /// The id passed to `end_block`.
        attempted: BlockId,
    },
    /// `finish` while a block is still open.
    UnclosedBlock {
        /// The block left open.
        open: BlockId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NestedBlock { open, attempted } => {
                write!(
                    f,
                    "cannot open {attempted} while {open} is open: blocks do not nest"
                )
            }
            BuildError::UnmatchedEnd { id } => {
                write!(f, "end of {id} without a matching begin")
            }
            BuildError::MismatchedEnd { open, attempted } => {
                write!(f, "end of {attempted} while {open} is open")
            }
            BuildError::UnclosedBlock { open } => {
                write!(f, "trace finished while {open} is still open")
            }
        }
    }
}

impl Error for BuildError {}

/// Builds a [`Trace`] while enforcing the code-block nesting discipline.
///
/// Because the paper annotates only innermost tight loops, blocks never nest;
/// the builder enforces this, returning [`BuildError`] from the checked
/// (`try_*`) methods. The unchecked convenience methods panic on violation,
/// which is the right trade-off for workload kernels whose structure is
/// static.
///
/// # Example
///
/// ```
/// use cbws_trace::{TraceBuilder, BlockId, Pc, Addr};
///
/// let mut b = TraceBuilder::new();
/// b.begin_block(BlockId(0));
/// b.load(Pc(0x10), Addr(0x1000));
/// b.store(Pc(0x14), Addr(0x2000));
/// b.end_block(BlockId(0));
/// let trace = b.finish();
/// assert_eq!(trace.len(), 4);
/// ```
#[derive(Default)]
pub struct TraceBuilder {
    events: Vec<TraceEvent>,
    open: Option<BlockId>,
    /// Streaming mode: once `events` holds `chunk` entries they are drained
    /// into `sink` and the builder keeps only the unfinished remainder.
    /// `chunk == 0` (the default) keeps every event in memory.
    chunk: usize,
    sink: Option<ChunkSink>,
    emitted: u64,
}

/// Callback receiving completed fixed-size event chunks from a
/// [`TraceBuilder`] in streaming mode; see [`TraceBuilder::streaming`].
/// Every call except possibly the final one (from
/// [`TraceBuilder::try_finish_stream`]) delivers exactly `chunk` events.
pub type ChunkSink = Box<dyn FnMut(&[TraceEvent]) + Send>;

impl fmt::Debug for TraceBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceBuilder")
            .field("buffered", &self.events.len())
            .field("open", &self.open)
            .field("chunk", &self.chunk)
            .field("streaming", &self.sink.is_some())
            .field("emitted", &self.emitted)
            .finish()
    }
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        TraceBuilder {
            events: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Creates a builder in **streaming mode**: whenever `chunk` events have
    /// accumulated they are handed to `sink` and dropped from memory, so the
    /// builder's footprint stays O(`chunk`) regardless of trace length. Block
    /// brackets may span chunk boundaries — the discipline is still enforced
    /// over the whole event stream. Finish with
    /// [`TraceBuilder::try_finish_stream`] (the in-memory finishers panic).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn streaming(chunk: usize, sink: ChunkSink) -> Self {
        assert!(chunk > 0, "streaming chunk size must be non-zero");
        TraceBuilder {
            events: Vec::with_capacity(chunk),
            open: None,
            chunk,
            sink: Some(sink),
            emitted: 0,
        }
    }

    fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
        if self.chunk != 0 && self.events.len() >= self.chunk {
            self.flush_chunks();
        }
    }

    fn flush_chunks(&mut self) {
        let sink = self.sink.as_mut().expect("chunk size set without a sink");
        while self.events.len() >= self.chunk {
            sink(&self.events[..self.chunk]);
            self.events.drain(..self.chunk);
            self.emitted += self.chunk as u64;
        }
    }

    /// Opens code block `id`.
    ///
    /// # Errors
    ///
    /// [`BuildError::NestedBlock`] if a block is already open.
    pub fn try_begin_block(&mut self, id: BlockId) -> Result<(), BuildError> {
        if let Some(open) = self.open {
            return Err(BuildError::NestedBlock {
                open,
                attempted: id,
            });
        }
        self.open = Some(id);
        self.push(TraceEvent::BlockBegin { id });
        Ok(())
    }

    /// Closes code block `id`.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnmatchedEnd`] if no block is open, or
    /// [`BuildError::MismatchedEnd`] if a different block is open.
    pub fn try_end_block(&mut self, id: BlockId) -> Result<(), BuildError> {
        match self.open {
            None => Err(BuildError::UnmatchedEnd { id }),
            Some(open) if open != id => Err(BuildError::MismatchedEnd {
                open,
                attempted: id,
            }),
            Some(_) => {
                self.open = None;
                self.push(TraceEvent::BlockEnd { id });
                Ok(())
            }
        }
    }

    /// Opens code block `id`.
    ///
    /// # Panics
    ///
    /// Panics if a block is already open (see [`TraceBuilder::try_begin_block`]).
    pub fn begin_block(&mut self, id: BlockId) {
        self.try_begin_block(id).expect("block nesting violation");
    }

    /// Closes code block `id`.
    ///
    /// # Panics
    ///
    /// Panics on unmatched or mismatched end (see [`TraceBuilder::try_end_block`]).
    pub fn end_block(&mut self, id: BlockId) {
        self.try_end_block(id).expect("block nesting violation");
    }

    /// Emits an independent load.
    pub fn load(&mut self, pc: Pc, addr: Addr) {
        self.mem(MemAccess::load(pc, addr));
    }

    /// Emits a load whose address depends on the previous load's data
    /// (pointer chase / data-dependent index).
    pub fn load_dep(&mut self, pc: Pc, addr: Addr) {
        self.mem(MemAccess {
            pc,
            addr,
            kind: MemKind::Load,
            dep: Dependence::PrevLoad,
        });
    }

    /// Emits an independent store.
    pub fn store(&mut self, pc: Pc, addr: Addr) {
        self.mem(MemAccess::store(pc, addr));
    }

    /// Emits an arbitrary memory access.
    pub fn mem(&mut self, access: MemAccess) {
        self.push(TraceEvent::Mem(access));
    }

    /// Emits `count` back-to-back non-memory instructions starting at `pc`.
    /// Zero-count runs are dropped.
    pub fn alu(&mut self, pc: Pc, count: u32) {
        if count > 0 {
            self.push(TraceEvent::Alu { pc, count });
        }
    }

    /// Emits a committed branch.
    pub fn branch(&mut self, pc: Pc, taken: bool) {
        self.push(TraceEvent::Branch(BranchRecord { pc, taken }));
    }

    /// Runs `body` once per iteration inside `BLOCK_BEGIN`/`BLOCK_END`
    /// brackets, emitting a loop back-branch after each iteration (taken for
    /// all but the last iteration, mirroring a real tight loop's backward
    /// branch).
    ///
    /// This is the trace-level stand-in for the paper's LLVM annotation pass:
    /// the body is the innermost loop body and `id` is its static block id.
    ///
    /// # Panics
    ///
    /// Panics if called while a block is already open, or if `body` leaves a
    /// block open (innermost loops only).
    pub fn annotated_loop<F>(&mut self, id: BlockId, iterations: u64, mut body: F)
    where
        F: FnMut(&mut TraceBuilder, u64),
    {
        // Reuse the block id to synthesize a stable back-branch PC so the
        // branch predictor can learn the loop.
        let back_branch = Pc(0xB000_0000 + u64::from(id.0) * 16);
        for i in 0..iterations {
            self.begin_block(id);
            body(self, i);
            self.end_block(id);
            self.branch(back_branch, i + 1 != iterations);
        }
    }

    /// Number of events emitted so far (including events already flushed to
    /// a streaming sink).
    pub fn len(&self) -> usize {
        self.emitted as usize + self.events.len()
    }

    /// Whether no events have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.emitted == 0 && self.events.is_empty()
    }

    /// Finishes the trace.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnclosedBlock`] if a block is still open.
    ///
    /// # Panics
    ///
    /// Panics in streaming mode (flushed events are gone; use
    /// [`TraceBuilder::try_finish_stream`]).
    pub fn try_finish(self) -> Result<Trace, BuildError> {
        assert!(
            self.sink.is_none(),
            "streaming builders finish with try_finish_stream"
        );
        if let Some(open) = self.open {
            return Err(BuildError::UnclosedBlock { open });
        }
        Ok(Trace::from_events(self.events))
    }

    /// Finishes a **streaming** build: enforces the block discipline, hands
    /// the final partial chunk (possibly empty traces flush nothing) to the
    /// sink, and returns the total number of events emitted.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnclosedBlock`] if a block is still open.
    ///
    /// # Panics
    ///
    /// Panics if the builder is not in streaming mode.
    pub fn try_finish_stream(mut self) -> Result<u64, BuildError> {
        assert!(
            self.sink.is_some(),
            "try_finish_stream requires a streaming builder"
        );
        if let Some(open) = self.open {
            return Err(BuildError::UnclosedBlock { open });
        }
        if !self.events.is_empty() {
            let sink = self.sink.as_mut().expect("checked above");
            sink(&self.events);
            self.emitted += self.events.len() as u64;
            self.events.clear();
        }
        Ok(self.emitted)
    }

    /// Finishes the trace.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open (see [`TraceBuilder::try_finish`]).
    pub fn finish(self) -> Trace {
        self.try_finish().expect("block left open at end of trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_blocks_rejected() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(0));
        let err = b.try_begin_block(BlockId(1)).unwrap_err();
        assert_eq!(
            err,
            BuildError::NestedBlock {
                open: BlockId(0),
                attempted: BlockId(1)
            }
        );
    }

    #[test]
    fn unmatched_end_rejected() {
        let mut b = TraceBuilder::new();
        let err = b.try_end_block(BlockId(0)).unwrap_err();
        assert_eq!(err, BuildError::UnmatchedEnd { id: BlockId(0) });
    }

    #[test]
    fn mismatched_end_rejected() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(0));
        let err = b.try_end_block(BlockId(1)).unwrap_err();
        assert_eq!(
            err,
            BuildError::MismatchedEnd {
                open: BlockId(0),
                attempted: BlockId(1)
            }
        );
    }

    #[test]
    fn unclosed_block_rejected_at_finish() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(2));
        let err = b.try_finish().unwrap_err();
        assert_eq!(err, BuildError::UnclosedBlock { open: BlockId(2) });
    }

    #[test]
    fn zero_count_alu_dropped() {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0), 0);
        assert!(b.is_empty());
        b.alu(Pc(0), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn annotated_loop_emits_brackets_and_back_branch() {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(7), 3, |b, i| {
            b.load(Pc(0x100), Addr(i * 64));
        });
        let trace = b.finish();
        // Per iteration: begin, load, end, branch = 4 events.
        assert_eq!(trace.len(), 12);
        let branches: Vec<bool> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Branch(br) => Some(br.taken),
                _ => None,
            })
            .collect();
        assert_eq!(branches, vec![true, true, false]);
    }

    #[test]
    fn annotated_loop_block_ids_match() {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(3), 2, |b, _| b.alu(Pc(0), 1));
        let trace = b.finish();
        let mut begins = 0;
        let mut ends = 0;
        for e in &trace {
            match e {
                TraceEvent::BlockBegin { id } => {
                    assert_eq!(*id, BlockId(3));
                    begins += 1;
                }
                TraceEvent::BlockEnd { id } => {
                    assert_eq!(*id, BlockId(3));
                    ends += 1;
                }
                _ => {}
            }
        }
        assert_eq!((begins, ends), (2, 2));
    }

    #[test]
    fn load_dep_marks_dependence() {
        let mut b = TraceBuilder::new();
        b.load_dep(Pc(0), Addr(64));
        let trace = b.finish();
        match trace.events()[0] {
            TraceEvent::Mem(m) => assert_eq!(m.dep, Dependence::PrevLoad),
            _ => panic!("expected mem event"),
        }
    }

    #[test]
    fn streaming_chunks_are_exact_and_ordered() {
        use std::sync::{Arc, Mutex};
        let chunks: Arc<Mutex<Vec<Vec<TraceEvent>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_chunks = chunks.clone();
        let mut b = TraceBuilder::streaming(
            4,
            Box::new(move |c: &[TraceEvent]| sink_chunks.lock().unwrap().push(c.to_vec())),
        );
        b.annotated_loop(BlockId(1), 5, |b, i| {
            b.load(Pc(0x10), Addr(i * 64));
            b.alu(Pc(0x14), 1);
        });
        // 5 iterations x 5 events (begin, load, alu, end, branch) = 25.
        assert_eq!(b.len(), 25);
        let total = b.try_finish_stream().unwrap();
        assert_eq!(total, 25);
        let chunks = chunks.lock().unwrap();
        assert_eq!(chunks.len(), 7); // 6 full chunks of 4 + tail of 1
        assert!(chunks[..6].iter().all(|c| c.len() == 4));
        assert_eq!(chunks[6].len(), 1);
        // The concatenation equals the same build done in memory.
        let streamed: Vec<TraceEvent> = chunks.iter().flatten().copied().collect();
        let mut whole = TraceBuilder::new();
        whole.annotated_loop(BlockId(1), 5, |b, i| {
            b.load(Pc(0x10), Addr(i * 64));
            b.alu(Pc(0x14), 1);
        });
        assert_eq!(streamed, whole.finish().events());
    }

    #[test]
    fn streaming_enforces_block_discipline_across_chunks() {
        let mut b = TraceBuilder::streaming(1, Box::new(|_| {}));
        b.begin_block(BlockId(3));
        b.load(Pc(0), Addr(0));
        let err = b.try_finish_stream().unwrap_err();
        assert_eq!(err, BuildError::UnclosedBlock { open: BlockId(3) });
    }

    #[test]
    fn empty_streaming_build_flushes_nothing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let sink_calls = calls.clone();
        let b = TraceBuilder::streaming(
            8,
            Box::new(move |_: &[TraceEvent]| {
                sink_calls.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(b.try_finish_stream().unwrap(), 0);
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn build_error_display() {
        let e = BuildError::NestedBlock {
            open: BlockId(0),
            attempted: BlockId(1),
        };
        assert!(e.to_string().contains("blk0"));
    }
}
