//! The [`TraceBuilder`]: the workloads' interface for emitting traces.

use crate::addr::{Addr, BlockId, Pc};
use crate::event::{BranchRecord, Dependence, MemAccess, MemKind, TraceEvent};
use crate::Trace;
use std::error::Error;
use std::fmt;

/// Errors detected while building a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `begin_block` while a block is already open. The paper only annotates
    /// *innermost* tight loops, so blocks never nest (§IV-A).
    NestedBlock {
        /// The block that is already open.
        open: BlockId,
        /// The block that was attempted to be opened.
        attempted: BlockId,
    },
    /// `end_block(id)` without a matching open block.
    UnmatchedEnd {
        /// The id passed to `end_block`.
        id: BlockId,
    },
    /// `end_block(id)` while a *different* block is open.
    MismatchedEnd {
        /// The currently open block.
        open: BlockId,
        /// The id passed to `end_block`.
        attempted: BlockId,
    },
    /// `finish` while a block is still open.
    UnclosedBlock {
        /// The block left open.
        open: BlockId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NestedBlock { open, attempted } => {
                write!(
                    f,
                    "cannot open {attempted} while {open} is open: blocks do not nest"
                )
            }
            BuildError::UnmatchedEnd { id } => {
                write!(f, "end of {id} without a matching begin")
            }
            BuildError::MismatchedEnd { open, attempted } => {
                write!(f, "end of {attempted} while {open} is open")
            }
            BuildError::UnclosedBlock { open } => {
                write!(f, "trace finished while {open} is still open")
            }
        }
    }
}

impl Error for BuildError {}

/// Builds a [`Trace`] while enforcing the code-block nesting discipline.
///
/// Because the paper annotates only innermost tight loops, blocks never nest;
/// the builder enforces this, returning [`BuildError`] from the checked
/// (`try_*`) methods. The unchecked convenience methods panic on violation,
/// which is the right trade-off for workload kernels whose structure is
/// static.
///
/// # Example
///
/// ```
/// use cbws_trace::{TraceBuilder, BlockId, Pc, Addr};
///
/// let mut b = TraceBuilder::new();
/// b.begin_block(BlockId(0));
/// b.load(Pc(0x10), Addr(0x1000));
/// b.store(Pc(0x14), Addr(0x2000));
/// b.end_block(BlockId(0));
/// let trace = b.finish();
/// assert_eq!(trace.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    events: Vec<TraceEvent>,
    open: Option<BlockId>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        TraceBuilder {
            events: Vec::with_capacity(n),
            open: None,
        }
    }

    /// Opens code block `id`.
    ///
    /// # Errors
    ///
    /// [`BuildError::NestedBlock`] if a block is already open.
    pub fn try_begin_block(&mut self, id: BlockId) -> Result<(), BuildError> {
        if let Some(open) = self.open {
            return Err(BuildError::NestedBlock {
                open,
                attempted: id,
            });
        }
        self.open = Some(id);
        self.events.push(TraceEvent::BlockBegin { id });
        Ok(())
    }

    /// Closes code block `id`.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnmatchedEnd`] if no block is open, or
    /// [`BuildError::MismatchedEnd`] if a different block is open.
    pub fn try_end_block(&mut self, id: BlockId) -> Result<(), BuildError> {
        match self.open {
            None => Err(BuildError::UnmatchedEnd { id }),
            Some(open) if open != id => Err(BuildError::MismatchedEnd {
                open,
                attempted: id,
            }),
            Some(_) => {
                self.open = None;
                self.events.push(TraceEvent::BlockEnd { id });
                Ok(())
            }
        }
    }

    /// Opens code block `id`.
    ///
    /// # Panics
    ///
    /// Panics if a block is already open (see [`TraceBuilder::try_begin_block`]).
    pub fn begin_block(&mut self, id: BlockId) {
        self.try_begin_block(id).expect("block nesting violation");
    }

    /// Closes code block `id`.
    ///
    /// # Panics
    ///
    /// Panics on unmatched or mismatched end (see [`TraceBuilder::try_end_block`]).
    pub fn end_block(&mut self, id: BlockId) {
        self.try_end_block(id).expect("block nesting violation");
    }

    /// Emits an independent load.
    pub fn load(&mut self, pc: Pc, addr: Addr) {
        self.mem(MemAccess::load(pc, addr));
    }

    /// Emits a load whose address depends on the previous load's data
    /// (pointer chase / data-dependent index).
    pub fn load_dep(&mut self, pc: Pc, addr: Addr) {
        self.mem(MemAccess {
            pc,
            addr,
            kind: MemKind::Load,
            dep: Dependence::PrevLoad,
        });
    }

    /// Emits an independent store.
    pub fn store(&mut self, pc: Pc, addr: Addr) {
        self.mem(MemAccess::store(pc, addr));
    }

    /// Emits an arbitrary memory access.
    pub fn mem(&mut self, access: MemAccess) {
        self.events.push(TraceEvent::Mem(access));
    }

    /// Emits `count` back-to-back non-memory instructions starting at `pc`.
    /// Zero-count runs are dropped.
    pub fn alu(&mut self, pc: Pc, count: u32) {
        if count > 0 {
            self.events.push(TraceEvent::Alu { pc, count });
        }
    }

    /// Emits a committed branch.
    pub fn branch(&mut self, pc: Pc, taken: bool) {
        self.events
            .push(TraceEvent::Branch(BranchRecord { pc, taken }));
    }

    /// Runs `body` once per iteration inside `BLOCK_BEGIN`/`BLOCK_END`
    /// brackets, emitting a loop back-branch after each iteration (taken for
    /// all but the last iteration, mirroring a real tight loop's backward
    /// branch).
    ///
    /// This is the trace-level stand-in for the paper's LLVM annotation pass:
    /// the body is the innermost loop body and `id` is its static block id.
    ///
    /// # Panics
    ///
    /// Panics if called while a block is already open, or if `body` leaves a
    /// block open (innermost loops only).
    pub fn annotated_loop<F>(&mut self, id: BlockId, iterations: u64, mut body: F)
    where
        F: FnMut(&mut TraceBuilder, u64),
    {
        // Reuse the block id to synthesize a stable back-branch PC so the
        // branch predictor can learn the loop.
        let back_branch = Pc(0xB000_0000 + u64::from(id.0) * 16);
        for i in 0..iterations {
            self.begin_block(id);
            body(self, i);
            self.end_block(id);
            self.branch(back_branch, i + 1 != iterations);
        }
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes the trace.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnclosedBlock`] if a block is still open.
    pub fn try_finish(self) -> Result<Trace, BuildError> {
        if let Some(open) = self.open {
            return Err(BuildError::UnclosedBlock { open });
        }
        Ok(Trace::from_events(self.events))
    }

    /// Finishes the trace.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open (see [`TraceBuilder::try_finish`]).
    pub fn finish(self) -> Trace {
        self.try_finish().expect("block left open at end of trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_blocks_rejected() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(0));
        let err = b.try_begin_block(BlockId(1)).unwrap_err();
        assert_eq!(
            err,
            BuildError::NestedBlock {
                open: BlockId(0),
                attempted: BlockId(1)
            }
        );
    }

    #[test]
    fn unmatched_end_rejected() {
        let mut b = TraceBuilder::new();
        let err = b.try_end_block(BlockId(0)).unwrap_err();
        assert_eq!(err, BuildError::UnmatchedEnd { id: BlockId(0) });
    }

    #[test]
    fn mismatched_end_rejected() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(0));
        let err = b.try_end_block(BlockId(1)).unwrap_err();
        assert_eq!(
            err,
            BuildError::MismatchedEnd {
                open: BlockId(0),
                attempted: BlockId(1)
            }
        );
    }

    #[test]
    fn unclosed_block_rejected_at_finish() {
        let mut b = TraceBuilder::new();
        b.begin_block(BlockId(2));
        let err = b.try_finish().unwrap_err();
        assert_eq!(err, BuildError::UnclosedBlock { open: BlockId(2) });
    }

    #[test]
    fn zero_count_alu_dropped() {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0), 0);
        assert!(b.is_empty());
        b.alu(Pc(0), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn annotated_loop_emits_brackets_and_back_branch() {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(7), 3, |b, i| {
            b.load(Pc(0x100), Addr(i * 64));
        });
        let trace = b.finish();
        // Per iteration: begin, load, end, branch = 4 events.
        assert_eq!(trace.len(), 12);
        let branches: Vec<bool> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Branch(br) => Some(br.taken),
                _ => None,
            })
            .collect();
        assert_eq!(branches, vec![true, true, false]);
    }

    #[test]
    fn annotated_loop_block_ids_match() {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(3), 2, |b, _| b.alu(Pc(0), 1));
        let trace = b.finish();
        let mut begins = 0;
        let mut ends = 0;
        for e in &trace {
            match e {
                TraceEvent::BlockBegin { id } => {
                    assert_eq!(*id, BlockId(3));
                    begins += 1;
                }
                TraceEvent::BlockEnd { id } => {
                    assert_eq!(*id, BlockId(3));
                    ends += 1;
                }
                _ => {}
            }
        }
        assert_eq!((begins, ends), (2, 2));
    }

    #[test]
    fn load_dep_marks_dependence() {
        let mut b = TraceBuilder::new();
        b.load_dep(Pc(0), Addr(64));
        let trace = b.finish();
        match trace.events()[0] {
            TraceEvent::Mem(m) => assert_eq!(m.dep, Dependence::PrevLoad),
            _ => panic!("expected mem event"),
        }
    }

    #[test]
    fn build_error_display() {
        let e = BuildError::NestedBlock {
            open: BlockId(0),
            attempted: BlockId(1),
        };
        assert!(e.to_string().contains("blk0"));
    }
}
