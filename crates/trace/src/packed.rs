//! Columnar (structure-of-arrays) trace encoding and the sequential cursor
//! API the replay hot loops consume.
//!
//! [`crate::Trace`] stores events as a `Vec<TraceEvent>` — an
//! array-of-structs of a padded enum, ~32 bytes per event regardless of
//! variant. The replay loop touches every byte of that layout even though an
//! ALU event needs 13 bytes of information and a block marker 5. A
//! [`PackedTrace`] stores the same event stream as parallel columns inside
//! one contiguous little-endian byte buffer:
//!
//! | column       | element | one entry per            |
//! |--------------|---------|--------------------------|
//! | `tags`       | `u8`    | event (variant + flag bits) |
//! | `pcs`        | zigzag varint | PC-bearing event (ALU/mem/branch; delta vs the previous PC of the same variant) |
//! | `addr_deltas`| zigzag varint | memory access (byte-address delta vs the previous access) |
//! | `alu_counts` | varint  | ALU event                |
//! | `block_ids`  | varint  | block begin/end marker   |
//!
//! Operand lanes are LEB128 varints (see [`crate::varint`]); the count
//! header records each lane's byte length next to its entry count so the
//! column offsets never require scanning. Memory addresses are stored as
//! zigzag-folded deltas against the previous access, and PCs as deltas
//! against the previous PC of the *same variant* — loop bodies re-issue
//! the same ALU/mem/branch PCs every iteration, so per-variant deltas
//! stay tiny even though the combined PC stream ping-pongs between body
//! PCs and distant loop back-edges. Nearly every entry is then one byte
//! and the batch decoder's 8-wide fast path carries the lane. The buffer layout **is** the
//! on-disk payload of the persistent trace store
//! (`cbws-workloads::trace_store`), so a memory-mapped file replays
//! zero-copy. Conversion [`Trace`] ⇄ [`PackedTrace`] is lossless
//! (property-tested in `tests/packed_properties.rs`).
//!
//! Consumers iterate through [`TraceCursor`] (usually via the
//! [`EventSource`] trait, which `Core::run` and the analysis passes are
//! generic over). The cursor refills in 256-event batches: one pass over
//! the tag chunk counts each lane's contribution, then every operand lane
//! is batch-decoded ([`crate::varint::decode_batch`]) into a flat `u64`
//! scratch column, and events are emitted from those columns — the hot
//! loop never decodes varints one event at a time.

use crate::addr::{Addr, BlockId, Pc};
use crate::event::{BranchRecord, Dependence, MemAccess, MemKind, TraceEvent};
use crate::varint;
use crate::{Trace, TraceStats};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A decoded event as yielded by a [`TraceCursor`].
///
/// Every field of [`TraceEvent`] is `Copy`, so the decoded view is the event
/// itself, built in registers from the packed columns; the alias exists so
/// cursor consumers are insulated from the storage representation.
pub type EventRef = TraceEvent;

/// Anything the simulator can replay: an ordered event stream with a
/// sequential cursor.
///
/// Implemented by [`Trace`] (slice iteration over the materialized events)
/// and [`PackedTrace`] (on-the-fly decode from the packed columns), so the
/// replay and analysis loops are written once and monomorphized per
/// representation.
pub trait EventSource {
    /// The sequential iterator over decoded events.
    type Cursor<'a>: EventCursor + 'a
    where
        Self: 'a;

    /// A cursor positioned at the first event.
    fn cursor(&self) -> Self::Cursor<'_>;

    /// Number of events (not instructions) in the stream.
    fn event_count(&self) -> usize;
}

/// A sequential event stream that can also hand out contiguous runs of
/// decoded events.
///
/// The replay loop consumes [`next_batch`](EventCursor::next_batch) so its
/// inner loop is plain slice iteration regardless of representation —
/// [`Trace`] returns its whole event slice in one chunk, [`PackedTrace`]
/// returns each decode batch. Analysis passes that want one event at a
/// time keep using the [`Iterator`] interface.
pub trait EventCursor: Iterator<Item = EventRef> {
    /// The next contiguous run of decoded events, or `None` once the
    /// stream (including any events not yet taken via [`Iterator::next`])
    /// is exhausted.
    fn next_batch(&mut self) -> Option<&[EventRef]>;
}

impl EventSource for Trace {
    type Cursor<'a> = SliceCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        SliceCursor {
            rest: self.events(),
        }
    }

    fn event_count(&self) -> usize {
        self.len()
    }
}

/// Cursor over a materialized [`Trace`]: slice iteration, with the whole
/// remaining slice as a single chunk.
#[derive(Debug, Clone)]
pub struct SliceCursor<'a> {
    rest: &'a [TraceEvent],
}

impl Iterator for SliceCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        let (&e, rest) = self.rest.split_first()?;
        self.rest = rest;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.rest.len(), Some(self.rest.len()))
    }
}

impl ExactSizeIterator for SliceCursor<'_> {}

impl EventCursor for SliceCursor<'_> {
    #[inline]
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        if self.rest.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.rest))
        }
    }
}

impl EventSource for PackedTrace {
    type Cursor<'a> = TraceCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        PackedTrace::cursor(self)
    }

    fn event_count(&self) -> usize {
        self.event_count()
    }
}

// Tag byte: bits 0..=2 select the variant, bits 3..=5 are per-variant
// flags, bits 6..=7 must be zero.
const VARIANT_MASK: u8 = 0b0000_0111;
const TAG_BLOCK_BEGIN: u8 = 0;
const TAG_BLOCK_END: u8 = 1;
const TAG_ALU: u8 = 2;
const TAG_MEM: u8 = 3;
const TAG_BRANCH: u8 = 4;
const FLAG_STORE: u8 = 1 << 3; // mem only
const FLAG_DEP_PREV_LOAD: u8 = 1 << 4; // mem only
const FLAG_TAKEN: u8 = 1 << 5; // branch only

/// Bytes of the payload's count header: nine little-endian `u64`s — five
/// entry counts (events, PC entries, memory accesses, ALU events, block
/// markers) followed by the byte lengths of the four varint operand lanes
/// (pcs, addr_deltas, alu_counts, block_ids).
const HEADER_BYTES: usize = 9 * 8;
const HEADER_WORDS: usize = HEADER_BYTES / 8;

/// Why a byte buffer failed to parse as a packed-trace payload.
///
/// Parsing never panics: a corrupt or truncated buffer yields an error the
/// trace store turns into a regenerate-and-rewrite fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedError {
    /// The buffer is shorter than the declared columns require.
    Truncated {
        /// Bytes the count header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A tag byte has an unknown variant or an illegal flag bit.
    BadTag {
        /// Event index of the offending tag.
        index: usize,
        /// The raw tag byte.
        tag: u8,
    },
    /// The per-column counts disagree with the tag stream or with the
    /// entries actually present in a varint lane.
    CountMismatch {
        /// Which column disagreed.
        column: &'static str,
        /// Count declared in the header.
        declared: u64,
        /// Count derived from the tags (or counted in the lane).
        derived: u64,
    },
    /// A varint operand lane is malformed: it ends inside an entry
    /// (dangling continuation bit) or an entry exceeds
    /// [`varint::MAX_LEN`] bytes.
    MalformedLane {
        /// Which lane is malformed.
        column: &'static str,
    },
}

impl fmt::Display for PackedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedError::Truncated { expected, actual } => {
                write!(f, "payload truncated: need {expected} bytes, have {actual}")
            }
            PackedError::BadTag { index, tag } => {
                write!(f, "invalid tag byte {tag:#04x} at event {index}")
            }
            PackedError::CountMismatch {
                column,
                declared,
                derived,
            } => write!(
                f,
                "column `{column}` declares {declared} entries but the payload implies {derived}"
            ),
            PackedError::MalformedLane { column } => {
                write!(f, "varint lane `{column}` is malformed")
            }
        }
    }
}

impl Error for PackedError {}

/// Backing storage of a packed payload: owned bytes, or a shared read-only
/// buffer (e.g. a memory-mapped trace-store file) viewed at an offset.
enum Payload {
    Owned(Box<[u8]>),
    Shared {
        data: Arc<dyn AsRef<[u8]> + Send + Sync>,
        offset: usize,
        len: usize,
    },
}

impl Payload {
    fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(b) => b,
            Payload::Shared { data, offset, len } => &(**data).as_ref()[*offset..*offset + *len],
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Owned(b) => write!(f, "Owned({} bytes)", b.len()),
            Payload::Shared { offset, len, .. } => {
                write!(f, "Shared({len} bytes at offset {offset})")
            }
        }
    }
}

/// Byte offsets of each column within a payload, derived from the header:
/// entry counts plus the byte length of each varint lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layout {
    n_events: usize,
    n_pcs: usize,
    n_mems: usize,
    n_alus: usize,
    n_blocks: usize,
    tags: usize,
    pcs: usize,
    addr_deltas: usize,
    alu_counts: usize,
    block_ids: usize,
    total: usize,
}

impl Layout {
    /// Offsets from the nine header words: `[n_events, n_pcs, n_mems,
    /// n_alus, n_blocks, pcs_bytes, deltas_bytes, alus_bytes,
    /// blocks_bytes]`.
    fn from_header(h: [usize; HEADER_WORDS]) -> Layout {
        let [n_events, n_pcs, n_mems, n_alus, n_blocks, pcs_b, deltas_b, alus_b, blocks_b] = h;
        let tags = HEADER_BYTES;
        let pcs = tags + n_events;
        let addr_deltas = pcs + pcs_b;
        let alu_counts = addr_deltas + deltas_b;
        let block_ids = alu_counts + alus_b;
        let total = block_ids + blocks_b;
        Layout {
            n_events,
            n_pcs,
            n_mems,
            n_alus,
            n_blocks,
            tags,
            pcs,
            addr_deltas,
            alu_counts,
            block_ids,
            total,
        }
    }
}

#[inline]
fn u64_at(col: &[u8], idx: usize) -> u64 {
    u64::from_le_bytes(col[idx * 8..idx * 8 + 8].try_into().unwrap())
}

/// The columnar trace. See the module docs for the layout.
///
/// ```
/// use cbws_trace::{Addr, BlockId, PackedTrace, Pc, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// b.annotated_loop(BlockId(0), 4, |b, i| {
///     b.load(Pc(0x400), Addr(0x1000 + 64 * i));
///     b.alu(Pc(0x404), 2);
/// });
/// let trace = b.finish();
/// let packed = PackedTrace::from_trace(&trace);
/// assert_eq!(packed.event_count(), trace.len());
/// assert_eq!(packed.to_trace(), trace);
/// ```
#[derive(Debug)]
pub struct PackedTrace {
    payload: Payload,
    layout: Layout,
}

impl PackedTrace {
    /// Packs a materialized trace into columns, varint-encoding each
    /// operand lane.
    pub fn from_trace(trace: &Trace) -> PackedTrace {
        let events = trace.events();
        let mut n_pcs = 0usize;
        let mut n_mems = 0usize;
        let mut n_alus = 0usize;
        let mut n_blocks = 0usize;
        let mut tags = Vec::with_capacity(events.len());
        // Most entries are one byte (small PCs after the first, unit
        // deltas, short run lengths); reserve optimistically.
        let mut pcs = Vec::with_capacity(events.len() * 2);
        let mut deltas = Vec::new();
        let mut alus = Vec::new();
        let mut blocks = Vec::new();
        let mut prev_addr = 0u64;
        // One PC predictor per variant (ALU / mem / branch): see the
        // module docs for why per-variant deltas stay short.
        let mut prev_pc = [0u64; 3];
        let mut push_pc = |slot: usize, pc: Pc, pcs: &mut Vec<u8>| {
            let delta = pc.0.wrapping_sub(prev_pc[slot]) as i64;
            prev_pc[slot] = pc.0;
            varint::encode(varint::zigzag(delta), pcs);
        };
        for e in events {
            let tag = match e {
                TraceEvent::BlockBegin { id } => {
                    n_blocks += 1;
                    varint::encode(u64::from(id.0), &mut blocks);
                    TAG_BLOCK_BEGIN
                }
                TraceEvent::BlockEnd { id } => {
                    n_blocks += 1;
                    varint::encode(u64::from(id.0), &mut blocks);
                    TAG_BLOCK_END
                }
                TraceEvent::Alu { pc, count } => {
                    n_pcs += 1;
                    n_alus += 1;
                    push_pc(0, *pc, &mut pcs);
                    varint::encode(u64::from(*count), &mut alus);
                    TAG_ALU
                }
                TraceEvent::Mem(m) => {
                    n_pcs += 1;
                    n_mems += 1;
                    push_pc(1, m.pc, &mut pcs);
                    let delta = m.addr.0.wrapping_sub(prev_addr) as i64;
                    prev_addr = m.addr.0;
                    varint::encode(varint::zigzag(delta), &mut deltas);
                    let mut t = TAG_MEM;
                    if m.kind.is_store() {
                        t |= FLAG_STORE;
                    }
                    if m.dep == Dependence::PrevLoad {
                        t |= FLAG_DEP_PREV_LOAD;
                    }
                    t
                }
                TraceEvent::Branch(br) => {
                    n_pcs += 1;
                    push_pc(2, br.pc, &mut pcs);
                    if br.taken {
                        TAG_BRANCH | FLAG_TAKEN
                    } else {
                        TAG_BRANCH
                    }
                }
            };
            tags.push(tag);
        }
        let layout = Layout::from_header([
            events.len(),
            n_pcs,
            n_mems,
            n_alus,
            n_blocks,
            pcs.len(),
            deltas.len(),
            alus.len(),
            blocks.len(),
        ]);
        let mut buf = Vec::with_capacity(layout.total);
        for n in [
            events.len(),
            n_pcs,
            n_mems,
            n_alus,
            n_blocks,
            pcs.len(),
            deltas.len(),
            alus.len(),
            blocks.len(),
        ] {
            buf.extend_from_slice(&(n as u64).to_le_bytes());
        }
        buf.extend_from_slice(&tags);
        buf.extend_from_slice(&pcs);
        buf.extend_from_slice(&deltas);
        buf.extend_from_slice(&alus);
        buf.extend_from_slice(&blocks);
        debug_assert_eq!(buf.len(), layout.total);
        PackedTrace {
            payload: Payload::Owned(buf.into_boxed_slice()),
            layout,
        }
    }

    /// Parses an owned payload buffer, validating the count header and every
    /// tag byte. Never panics on corrupt input.
    pub fn from_payload(bytes: Box<[u8]>) -> Result<PackedTrace, PackedError> {
        let layout = Self::validate(&bytes)?;
        Ok(PackedTrace {
            payload: Payload::Owned(bytes),
            layout,
        })
    }

    /// Parses a payload viewed inside a shared read-only buffer (typically a
    /// memory-mapped trace-store file) without copying it. `offset..offset +
    /// len` must lie within `data`'s byte slice.
    pub fn from_shared_payload(
        data: Arc<dyn AsRef<[u8]> + Send + Sync>,
        offset: usize,
        len: usize,
    ) -> Result<PackedTrace, PackedError> {
        let full = (*data).as_ref();
        let end = offset.saturating_add(len);
        if end > full.len() {
            return Err(PackedError::Truncated {
                expected: end,
                actual: full.len(),
            });
        }
        let layout = Self::validate(&full[offset..end])?;
        Ok(PackedTrace {
            payload: Payload::Shared { data, offset, len },
            layout,
        })
    }

    /// Validates a payload and derives its column layout.
    fn validate(bytes: &[u8]) -> Result<Layout, PackedError> {
        if bytes.len() < HEADER_BYTES {
            return Err(PackedError::Truncated {
                expected: HEADER_BYTES,
                actual: bytes.len(),
            });
        }
        let mut header = [0usize; HEADER_WORDS];
        for (i, slot) in header.iter_mut().enumerate() {
            *slot = usize::try_from(u64_at(bytes, i)).map_err(|_| PackedError::Truncated {
                expected: usize::MAX,
                actual: bytes.len(),
            })?;
        }
        // Guard the offset arithmetic against overflow on absurd counts:
        // the tag lane is one byte per event, the operand lanes contribute
        // their declared byte lengths directly.
        let promised = header[0]
            .checked_add(header[5])
            .and_then(|n| n.checked_add(header[6]))
            .and_then(|n| n.checked_add(header[7]))
            .and_then(|n| n.checked_add(header[8]))
            .and_then(|n| n.checked_add(HEADER_BYTES))
            .unwrap_or(usize::MAX);
        if promised != bytes.len() {
            return Err(PackedError::Truncated {
                expected: promised,
                actual: bytes.len(),
            });
        }
        let layout = Layout::from_header(header);
        // The tag stream must be internally valid and agree with the counts,
        // so every later cursor walk is in bounds by construction.
        let mut derived = [0u64; 4]; // pcs, mems, alus, blocks
        for (i, &tag) in bytes[layout.tags..layout.tags + layout.n_events]
            .iter()
            .enumerate()
        {
            let allowed_flags = match tag & VARIANT_MASK {
                TAG_BLOCK_BEGIN | TAG_BLOCK_END => {
                    derived[3] += 1;
                    0
                }
                TAG_ALU => {
                    derived[0] += 1;
                    derived[2] += 1;
                    0
                }
                TAG_MEM => {
                    derived[0] += 1;
                    derived[1] += 1;
                    FLAG_STORE | FLAG_DEP_PREV_LOAD
                }
                TAG_BRANCH => {
                    derived[0] += 1;
                    FLAG_TAKEN
                }
                _ => return Err(PackedError::BadTag { index: i, tag }),
            };
            if tag & !(VARIANT_MASK | allowed_flags) != 0 {
                return Err(PackedError::BadTag { index: i, tag });
            }
        }
        for (column, declared, derived) in [
            ("pcs", header[1] as u64, derived[0]),
            ("addr_deltas", header[2] as u64, derived[1]),
            ("alu_counts", header[3] as u64, derived[2]),
            ("block_ids", header[4] as u64, derived[3]),
        ] {
            if declared != derived {
                return Err(PackedError::CountMismatch {
                    column,
                    declared,
                    derived,
                });
            }
        }
        // Each varint lane must be well-formed (no dangling continuation
        // byte, no over-long entry) and hold exactly as many entries as
        // the tags demand, so batch decoding never runs out of bytes.
        for (column, range, declared) in [
            ("pcs", layout.pcs..layout.addr_deltas, header[1]),
            (
                "addr_deltas",
                layout.addr_deltas..layout.alu_counts,
                header[2],
            ),
            ("alu_counts", layout.alu_counts..layout.block_ids, header[3]),
            ("block_ids", layout.block_ids..layout.total, header[4]),
        ] {
            match varint::count_entries(&bytes[range]) {
                None => return Err(PackedError::MalformedLane { column }),
                Some(n) if n != declared => {
                    return Err(PackedError::CountMismatch {
                        column,
                        declared: declared as u64,
                        derived: n as u64,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(layout)
    }

    /// The complete payload buffer (count header + columns), which is the
    /// byte-exact on-disk payload of the trace store.
    pub fn payload(&self) -> &[u8] {
        self.payload.as_slice()
    }

    /// The named columns (including the count header), in payload order —
    /// the unit the trace store checksums individually.
    pub fn columns(&self) -> [(&'static str, &[u8]); 6] {
        let p = self.payload.as_slice();
        let l = &self.layout;
        [
            ("counts", &p[..l.tags]),
            ("tags", &p[l.tags..l.pcs]),
            ("pcs", &p[l.pcs..l.addr_deltas]),
            ("addr_deltas", &p[l.addr_deltas..l.alu_counts]),
            ("alu_counts", &p[l.alu_counts..l.block_ids]),
            ("block_ids", &p[l.block_ids..l.total]),
        ]
    }

    /// Number of events (not instructions) in the trace.
    pub fn event_count(&self) -> usize {
        self.layout.n_events
    }

    /// Whether the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.layout.n_events == 0
    }

    /// Resident bytes of the payload (what the in-memory store accounts).
    pub fn footprint_bytes(&self) -> u64 {
        self.payload.as_slice().len() as u64
    }

    /// A cursor positioned at the first event.
    pub fn cursor(&self) -> TraceCursor<'_> {
        let p = self.payload.as_slice();
        let l = &self.layout;
        // Per-lane kernel choice, made once from the header: the 8-wide
        // word kernel only pays off when its all-terminator fast path
        // fires on nearly every probe, i.e. when the lane averages ≤ 9/8
        // bytes per entry (ALU run lengths, block ids, unit-stride
        // deltas). Wider lanes (PC deltas, irregular address deltas)
        // decode faster through the well-predicted scalar byte loop.
        let dense = |bytes: usize, entries: usize| bytes * 8 <= entries * 9;
        TraceCursor {
            tags: &p[l.tags..l.pcs],
            pcs: &p[l.pcs..l.addr_deltas],
            addr_deltas: &p[l.addr_deltas..l.alu_counts],
            alu_counts: &p[l.alu_counts..l.block_ids],
            block_ids: &p[l.block_ids..l.total],
            dense: [
                dense(l.addr_deltas - l.pcs, l.n_pcs),
                dense(l.alu_counts - l.addr_deltas, l.n_mems),
                dense(l.block_ids - l.alu_counts, l.n_alus),
                dense(l.total - l.block_ids, l.n_blocks),
            ],
            prev_addr: 0,
            prev_pc: [0; 3],
            buf: Vec::with_capacity(CURSOR_BATCH),
            buf_i: 0,
            scratch: Box::new(LaneScratch::new()),
        }
    }

    /// Decodes back into a materialized [`Trace`] (lossless).
    pub fn to_trace(&self) -> Trace {
        self.cursor().collect()
    }

    /// Summary statistics, computed through the cursor without
    /// materializing the events.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_event_iter(self.cursor())
    }
}

impl PartialEq for PackedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.payload.as_slice() == other.payload.as_slice()
    }
}

impl Eq for PackedTrace {}

impl From<&Trace> for PackedTrace {
    fn from(trace: &Trace) -> Self {
        PackedTrace::from_trace(trace)
    }
}

/// Sequential decoder over a [`PackedTrace`]'s columns.
///
/// Construction is only possible from a validated payload, so every column
/// read is in bounds. Refills happen in [`CURSOR_BATCH`]-event batches:
/// one pass over the tag chunk tallies each lane's contribution, each
/// varint lane is batch-decoded into a flat scratch column, and events are
/// then emitted straight from those columns — the per-event work is a tag
/// dispatch plus indexed `u64` reads, never per-event varint decoding.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    tags: &'a [u8],
    pcs: &'a [u8],
    addr_deltas: &'a [u8],
    alu_counts: &'a [u8],
    block_ids: &'a [u8],
    /// Per-lane decoder choice (pcs, deltas, alus, blocks), fixed at
    /// construction from each lane's bytes-per-entry — see
    /// [`PackedTrace::cursor`].
    dense: [bool; 4],
    prev_addr: u64,
    /// Per-variant PC predictors (ALU / mem / branch), mirroring
    /// [`PackedTrace::from_trace`]'s encoders.
    prev_pc: [u64; 3],
    /// Decoded-ahead events. Decoding in batches keeps the column state in
    /// registers for a whole tight decode loop instead of spilling it
    /// between every event of the (register-hungry) replay loop; `next()`
    /// is then a plain buffer read, as cheap as slice iteration.
    buf: Vec<EventRef>,
    buf_i: usize,
    /// Per-lane decode targets, boxed so the cursor stays cheap to move.
    scratch: Box<LaneScratch>,
}

/// Events decoded per [`TraceCursor`] refill. 256 × ~32 B ≈ 8 KB of
/// decoded events plus 4 × 2 KB of scratch columns — hot in L1/L2 next to
/// the replay loop's own state.
const CURSOR_BATCH: usize = 256;

/// Flat decode targets for one refill: each operand lane lands in its own
/// `u64` column before events are assembled.
#[derive(Debug, Clone)]
struct LaneScratch {
    pcs: [u64; CURSOR_BATCH],
    deltas: [u64; CURSOR_BATCH],
    alus: [u64; CURSOR_BATCH],
    blocks: [u64; CURSOR_BATCH],
}

impl LaneScratch {
    fn new() -> LaneScratch {
        LaneScratch {
            pcs: [0; CURSOR_BATCH],
            deltas: [0; CURSOR_BATCH],
            alus: [0; CURSOR_BATCH],
            blocks: [0; CURSOR_BATCH],
        }
    }
}

/// Per-tag lane contributions for the refill tally, packed as four 16-bit
/// counters in one `u64` (pc | mem << 16 | alu << 32 | blk << 48). Summing
/// one table word per tag replaces a 4-way branch per event with a single
/// add, and a 256-tag batch can't overflow a 16-bit field.
static TAG_TALLY: [u64; 256] = {
    let mut t = [0u64; 256];
    let mut tag = 0usize;
    while tag < 256 {
        t[tag] = match tag as u8 & VARIANT_MASK {
            TAG_ALU => 1 | 1 << 32,
            TAG_MEM => 1 | 1 << 16,
            TAG_BRANCH => 1,
            _ => 1 << 48,
        };
        tag += 1;
    }
    t
};

/// Register-resident event assembly over one decoded batch: per-lane read
/// positions plus the running resolution registers (per-variant PC
/// predictors, address accumulator).
struct Assembler<'s> {
    s: &'s LaneScratch,
    pc_i: usize,
    mem_i: usize,
    alu_i: usize,
    blk_i: usize,
    prev_addr: u64,
    prev_pc: [u64; 3],
}

impl<'s> Assembler<'s> {
    #[inline]
    fn new(s: &'s LaneScratch, prev_addr: u64, prev_pc: [u64; 3]) -> Assembler<'s> {
        Assembler {
            s,
            pc_i: 0,
            mem_i: 0,
            alu_i: 0,
            blk_i: 0,
            prev_addr,
            prev_pc,
        }
    }

    #[inline]
    fn next_pc(&mut self, slot: usize) -> Pc {
        self.prev_pc[slot] =
            self.prev_pc[slot].wrapping_add(varint::unzigzag(self.s.pcs[self.pc_i]) as u64);
        self.pc_i += 1;
        Pc(self.prev_pc[slot])
    }

    /// Builds the event for `tag` from the scratch columns, entirely in
    /// registers.
    #[inline]
    fn event(&mut self, tag: u8) -> TraceEvent {
        let s = self.s;
        match tag & VARIANT_MASK {
            TAG_ALU => {
                let e = TraceEvent::Alu {
                    pc: self.next_pc(0),
                    count: s.alus[self.alu_i] as u32,
                };
                self.alu_i += 1;
                e
            }
            TAG_MEM => {
                let pc = self.next_pc(1);
                let delta = varint::unzigzag(s.deltas[self.mem_i]);
                self.mem_i += 1;
                self.prev_addr = self.prev_addr.wrapping_add(delta as u64);
                TraceEvent::Mem(MemAccess {
                    pc,
                    addr: Addr(self.prev_addr),
                    kind: if tag & FLAG_STORE != 0 {
                        MemKind::Store
                    } else {
                        MemKind::Load
                    },
                    dep: if tag & FLAG_DEP_PREV_LOAD != 0 {
                        Dependence::PrevLoad
                    } else {
                        Dependence::None
                    },
                })
            }
            TAG_BRANCH => TraceEvent::Branch(BranchRecord {
                pc: self.next_pc(2),
                taken: tag & FLAG_TAKEN != 0,
            }),
            TAG_BLOCK_BEGIN => {
                let e = TraceEvent::BlockBegin {
                    id: BlockId(s.blocks[self.blk_i] as u32),
                };
                self.blk_i += 1;
                e
            }
            // Validation admits exactly five variants; BlockEnd is last.
            _ => {
                let e = TraceEvent::BlockEnd {
                    id: BlockId(s.blocks[self.blk_i] as u32),
                };
                self.blk_i += 1;
                e
            }
        }
    }
}

impl<'a> TraceCursor<'a> {
    /// Takes the next ≤[`CURSOR_BATCH`] tags off the stream and
    /// batch-decodes every lane's contribution into the scratch columns,
    /// returning the tag chunk.
    fn decode_lanes(&mut self) -> &'a [u8] {
        let (batch, rest) = self.tags.split_at(self.tags.len().min(CURSOR_BATCH));
        self.tags = rest;
        // Pass 1: how many entries each operand lane contributes here —
        // one packed-counter add per tag, no branches.
        let mut tally = 0u64;
        for &tag in batch {
            tally += TAG_TALLY[tag as usize];
        }
        let n_pc = (tally & 0xffff) as usize;
        let n_mem = (tally >> 16 & 0xffff) as usize;
        let n_alu = (tally >> 32 & 0xffff) as usize;
        let n_blk = (tally >> 48) as usize;
        // Batch-decode each lane into its flat scratch column through the
        // kernel its density picked at construction. Validation proved
        // the lanes hold exactly the entries the tags demand.
        #[inline]
        fn lane(dense: bool, lane: &mut &[u8], out: &mut [u64]) {
            if dense {
                varint::decode_batch(lane, out);
            } else {
                varint::decode_batch_scalar(lane, out);
            }
        }
        let s = &mut *self.scratch;
        lane(self.dense[0], &mut self.pcs, &mut s.pcs[..n_pc]);
        lane(self.dense[1], &mut self.addr_deltas, &mut s.deltas[..n_mem]);
        lane(self.dense[2], &mut self.alu_counts, &mut s.alus[..n_alu]);
        lane(self.dense[3], &mut self.block_ids, &mut s.blocks[..n_blk]);
        batch
    }

    /// Decodes the next batch of events into the read-ahead buffer.
    fn refill(&mut self) {
        self.buf.clear();
        self.buf_i = 0;
        let batch = self.decode_lanes();
        let mut a = Assembler::new(&self.scratch, self.prev_addr, self.prev_pc);
        // Pass 2: assemble events from the scratch columns. `extend` over
        // an exact-size map writes each event once with no per-event
        // capacity or length bookkeeping.
        self.buf.extend(batch.iter().map(|&tag| a.event(tag)));
        self.prev_addr = a.prev_addr;
        self.prev_pc = a.prev_pc;
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        if self.buf_i == self.buf.len() {
            if self.tags.is_empty() {
                return None;
            }
            self.refill();
        }
        let e = self.buf[self.buf_i];
        self.buf_i += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.tags.len() + (self.buf.len() - self.buf_i);
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceCursor<'_> {}

impl EventCursor for TraceCursor<'_> {
    #[inline]
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        if self.buf_i < self.buf.len() {
            // Events already decoded but not yet taken via `next()`.
            let chunk = &self.buf[self.buf_i..];
            self.buf_i = self.buf.len();
            return Some(chunk);
        }
        if self.tags.is_empty() {
            return None;
        }
        self.refill();
        self.buf_i = self.buf.len();
        Some(&self.buf[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0x100), 7);
        b.annotated_loop(BlockId(3), 5, |b, i| {
            b.load(Pc(0x200), Addr(0x4000 + i * 4096));
            b.load_dep(Pc(0x204), Addr(0x900_0000 - i * 64));
            b.store(Pc(0x208), Addr(i * 128));
            b.alu(Pc(0x20c), 3);
        });
        b.branch(Pc(0x300), true);
        b.finish()
    }

    #[test]
    fn round_trip_is_lossless() {
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        assert_eq!(packed.to_trace(), trace);
        assert_eq!(packed.event_count(), trace.len());
        assert_eq!(packed.stats(), trace.stats());
    }

    #[test]
    fn cursor_matches_slice_iteration() {
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        let decoded: Vec<TraceEvent> = packed.cursor().collect();
        assert_eq!(decoded.as_slice(), trace.events());
        // The EventSource impls agree too.
        let via_trait: Vec<TraceEvent> = EventSource::cursor(&packed).collect();
        let via_trace: Vec<TraceEvent> = EventSource::cursor(&trace).collect();
        assert_eq!(via_trait, via_trace);
        assert_eq!(
            EventSource::event_count(&packed),
            EventSource::event_count(&trace)
        );
    }

    #[test]
    fn batched_cursor_matches_slice_iteration() {
        // A trace longer than one decode batch, so next_batch() yields
        // several chunks from the packed cursor.
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(1), 200, |b, i| {
            b.load(Pc(0x200), Addr(0x4000 + i * 64));
            b.alu(Pc(0x204), 2);
            b.branch(Pc(0x208), i % 3 == 0);
        });
        let trace = b.finish();
        let packed = PackedTrace::from_trace(&trace);

        for_both_reprs(&trace, &packed, |cursor| {
            let mut batched = Vec::new();
            while let Some(chunk) = cursor.next_batch() {
                assert!(!chunk.is_empty(), "next_batch yielded an empty chunk");
                batched.extend_from_slice(chunk);
            }
            assert_eq!(cursor.next_batch(), None, "exhausted cursor must stay dry");
            assert_eq!(batched.as_slice(), trace.events());
        });

        // Mixing next() and next_batch(): events already decoded but not
        // yet taken must appear in the following batch exactly once.
        for_both_reprs(&trace, &packed, |cursor| {
            let mut seen = vec![cursor.next().unwrap(), cursor.next().unwrap()];
            while let Some(chunk) = cursor.next_batch() {
                seen.extend_from_slice(chunk);
            }
            assert_eq!(seen.as_slice(), trace.events());
        });
    }

    /// Runs `check` against a fresh cursor of each representation.
    fn for_both_reprs(
        trace: &Trace,
        packed: &PackedTrace,
        mut check: impl FnMut(&mut dyn EventCursor),
    ) {
        check(&mut EventSource::cursor(trace));
        check(&mut EventSource::cursor(packed));
    }

    #[test]
    fn payload_parses_back() {
        let packed = PackedTrace::from_trace(&sample());
        let bytes: Box<[u8]> = packed.payload().into();
        let reparsed = PackedTrace::from_payload(bytes).unwrap();
        assert_eq!(reparsed, packed);
        assert_eq!(reparsed.to_trace(), sample());
    }

    #[test]
    fn shared_payload_is_zero_copy_view() {
        let packed = PackedTrace::from_trace(&sample());
        let mut framed = vec![0xAA; 3]; // leading junk the view must skip
        framed.extend_from_slice(packed.payload());
        framed.extend_from_slice(&[0xBB; 5]);
        let len = packed.payload().len();
        let shared: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(framed);
        let view = PackedTrace::from_shared_payload(shared, 3, len).unwrap();
        assert_eq!(view, packed);
        assert_eq!(view.to_trace(), sample());
    }

    #[test]
    fn shared_payload_out_of_bounds_is_error() {
        let shared: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(vec![0u8; 16]);
        assert!(matches!(
            PackedTrace::from_shared_payload(shared, 8, 16),
            Err(PackedError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_trace_packs() {
        let packed = PackedTrace::from_trace(&Trace::default());
        assert!(packed.is_empty());
        assert_eq!(packed.payload().len(), HEADER_BYTES);
        assert_eq!(packed.to_trace(), Trace::default());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let packed = PackedTrace::from_trace(&sample());
        let bytes = packed.payload();
        for cut in [0, HEADER_BYTES - 1, bytes.len() - 1] {
            let r = PackedTrace::from_payload(bytes[..cut].into());
            assert!(matches!(r, Err(PackedError::Truncated { .. })), "cut {cut}");
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let packed = PackedTrace::from_trace(&sample());
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        bytes[HEADER_BYTES] = 0x07; // variant 7 does not exist
        assert!(matches!(
            PackedTrace::from_payload(bytes.clone().into_boxed_slice()),
            Err(PackedError::BadTag { index: 0, .. })
        ));
        bytes[HEADER_BYTES] = TAG_ALU | FLAG_STORE; // illegal flag for ALU
        assert!(matches!(
            PackedTrace::from_payload(bytes.into_boxed_slice()),
            Err(PackedError::BadTag { index: 0, .. })
        ));
    }

    #[test]
    fn count_mismatch_is_rejected() {
        // Claim one branch event but write a mem tag: addr_deltas column
        // length disagrees with the tag stream.
        let trace = Trace::from_events(vec![TraceEvent::Branch(BranchRecord {
            pc: Pc(0),
            taken: false,
        })]);
        let packed = PackedTrace::from_trace(&trace);
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        bytes[HEADER_BYTES] = TAG_MEM;
        let r = PackedTrace::from_payload(bytes.into_boxed_slice());
        assert!(matches!(r, Err(PackedError::CountMismatch { .. })), "{r:?}");
    }

    #[test]
    fn malformed_lane_is_rejected() {
        // Setting the continuation bit on the last byte of the last lane
        // leaves the payload length and tag stream intact but the lane
        // dangling mid-entry.
        let packed = PackedTrace::from_trace(&sample());
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        *bytes.last_mut().unwrap() |= 0x80;
        assert!(matches!(
            PackedTrace::from_payload(bytes.into_boxed_slice()),
            Err(PackedError::MalformedLane { .. })
        ));
    }

    #[test]
    fn varint_lanes_shrink_the_payload() {
        // Loop-local PCs, unit-stride line deltas, and small run lengths
        // are the common case; they must encode in one byte each, so the
        // payload lands well under the old 8-byte-per-operand layout.
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        let aos_bytes = trace.len() * std::mem::size_of::<TraceEvent>();
        assert!(
            packed.payload().len() * 3 < aos_bytes,
            "packed {} vs AoS {aos_bytes}",
            packed.payload().len()
        );
    }

    #[test]
    fn delta_encoding_survives_extreme_addresses() {
        let mut b = TraceBuilder::new();
        b.load(Pc(0), Addr(u64::MAX));
        b.load(Pc(4), Addr(0));
        b.load(Pc(8), Addr(u64::MAX / 2));
        b.store(Pc(12), Addr(u64::MAX));
        let trace = b.finish();
        assert_eq!(PackedTrace::from_trace(&trace).to_trace(), trace);
    }
}
