//! Columnar (structure-of-arrays) trace encoding and the sequential cursor
//! API the replay hot loops consume.
//!
//! [`crate::Trace`] stores events as a `Vec<TraceEvent>` — an
//! array-of-structs of a padded enum, ~32 bytes per event regardless of
//! variant. The replay loop touches every byte of that layout even though an
//! ALU event needs 13 bytes of information and a block marker 5. A
//! [`PackedTrace`] stores the same event stream as parallel columns inside
//! one contiguous little-endian byte buffer:
//!
//! | column       | element | one entry per            |
//! |--------------|---------|--------------------------|
//! | `tags`       | `u8`    | event (variant + flag bits) |
//! | `pcs`        | zigzag varint | PC-bearing event (ALU/mem/branch; delta vs the previous PC of the same variant) |
//! | `addr_deltas`| zigzag varint | memory access (byte-address delta vs the previous access) |
//! | `alu_counts` | varint  | ALU event                |
//! | `block_ids`  | varint  | block begin/end marker   |
//!
//! Operand lanes are LEB128 varints (see [`crate::varint`]); the count
//! header records each lane's byte length next to its entry count so the
//! column offsets never require scanning. Memory addresses are stored as
//! zigzag-folded deltas against the previous access, and PCs as deltas
//! against the previous PC of the *same variant* — loop bodies re-issue
//! the same ALU/mem/branch PCs every iteration, so per-variant deltas
//! stay tiny even though the combined PC stream ping-pongs between body
//! PCs and distant loop back-edges. Nearly every entry is then one byte
//! and the batch decoder's 8-wide fast path carries the lane. The buffer layout **is** the
//! on-disk payload of the persistent trace store
//! (`cbws-workloads::trace_store`), so a memory-mapped file replays
//! zero-copy. Conversion [`Trace`] ⇄ [`PackedTrace`] is lossless
//! (property-tested in `tests/packed_properties.rs`).
//!
//! Consumers iterate through [`TraceCursor`] (usually via the
//! [`EventSource`] trait, which `Core::run` and the analysis passes are
//! generic over). The cursor refills in 256-event batches: one pass over
//! the tag chunk counts each lane's contribution, then every operand lane
//! is batch-decoded ([`crate::varint::decode_batch`]) into a flat `u64`
//! scratch column, and events are emitted from those columns — the hot
//! loop never decodes varints one event at a time.

use crate::addr::{Addr, BlockId, Pc};
use crate::event::{BranchRecord, Dependence, MemAccess, MemKind, TraceEvent};
use crate::varint;
use crate::{Trace, TraceStats};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

/// A decoded event as yielded by a [`TraceCursor`].
///
/// Every field of [`TraceEvent`] is `Copy`, so the decoded view is the event
/// itself, built in registers from the packed columns; the alias exists so
/// cursor consumers are insulated from the storage representation.
pub type EventRef = TraceEvent;

/// Anything the simulator can replay: an ordered event stream with a
/// sequential cursor.
///
/// Implemented by [`Trace`] (slice iteration over the materialized events)
/// and [`PackedTrace`] (on-the-fly decode from the packed columns), so the
/// replay and analysis loops are written once and monomorphized per
/// representation.
pub trait EventSource {
    /// The sequential iterator over decoded events.
    type Cursor<'a>: EventCursor + 'a
    where
        Self: 'a;

    /// A cursor positioned at the first event.
    fn cursor(&self) -> Self::Cursor<'_>;

    /// Number of events (not instructions) in the stream.
    fn event_count(&self) -> usize;
}

/// A sequential event stream that can also hand out contiguous runs of
/// decoded events.
///
/// The replay loop consumes [`next_batch`](EventCursor::next_batch) so its
/// inner loop is plain slice iteration regardless of representation —
/// [`Trace`] returns its whole event slice in one chunk, [`PackedTrace`]
/// returns each decode batch. Analysis passes that want one event at a
/// time keep using the [`Iterator`] interface.
pub trait EventCursor: Iterator<Item = EventRef> {
    /// The next contiguous run of decoded events, or `None` once the
    /// stream (including any events not yet taken via [`Iterator::next`])
    /// is exhausted.
    fn next_batch(&mut self) -> Option<&[EventRef]>;
}

impl EventSource for Trace {
    type Cursor<'a> = SliceCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        SliceCursor {
            rest: self.events(),
        }
    }

    fn event_count(&self) -> usize {
        self.len()
    }
}

/// Cursor over a materialized [`Trace`]: slice iteration, with the whole
/// remaining slice as a single chunk.
#[derive(Debug, Clone)]
pub struct SliceCursor<'a> {
    rest: &'a [TraceEvent],
}

impl Iterator for SliceCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        let (&e, rest) = self.rest.split_first()?;
        self.rest = rest;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.rest.len(), Some(self.rest.len()))
    }
}

impl ExactSizeIterator for SliceCursor<'_> {}

impl EventCursor for SliceCursor<'_> {
    #[inline]
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        if self.rest.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.rest))
        }
    }
}

impl EventSource for PackedTrace {
    type Cursor<'a> = TraceCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        PackedTrace::cursor(self)
    }

    fn event_count(&self) -> usize {
        self.event_count()
    }
}

// Tag byte: bits 0..=2 select the variant, bits 3..=5 are per-variant
// flags, bits 6..=7 must be zero.
const VARIANT_MASK: u8 = 0b0000_0111;
const TAG_BLOCK_BEGIN: u8 = 0;
const TAG_BLOCK_END: u8 = 1;
const TAG_ALU: u8 = 2;
const TAG_MEM: u8 = 3;
const TAG_BRANCH: u8 = 4;
const FLAG_STORE: u8 = 1 << 3; // mem only
const FLAG_DEP_PREV_LOAD: u8 = 1 << 4; // mem only
const FLAG_TAKEN: u8 = 1 << 5; // branch only

/// Bytes of the payload's count header: nine little-endian `u64`s — five
/// entry counts (events, PC entries, memory accesses, ALU events, block
/// markers) followed by the byte lengths of the four varint operand lanes
/// (pcs, addr_deltas, alu_counts, block_ids).
const HEADER_BYTES: usize = 9 * 8;
const HEADER_WORDS: usize = HEADER_BYTES / 8;

/// Why a byte buffer failed to parse as a packed-trace payload.
///
/// Parsing never panics: a corrupt or truncated buffer yields an error the
/// trace store turns into a regenerate-and-rewrite fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedError {
    /// The buffer is shorter than the declared columns require.
    Truncated {
        /// Bytes the count header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A tag byte has an unknown variant or an illegal flag bit.
    BadTag {
        /// Event index of the offending tag.
        index: usize,
        /// The raw tag byte.
        tag: u8,
    },
    /// The per-column counts disagree with the tag stream or with the
    /// entries actually present in a varint lane.
    CountMismatch {
        /// Which column disagreed.
        column: &'static str,
        /// Count declared in the header.
        declared: u64,
        /// Count derived from the tags (or counted in the lane).
        derived: u64,
    },
    /// A varint operand lane is malformed: it ends inside an entry
    /// (dangling continuation bit) or an entry exceeds
    /// [`varint::MAX_LEN`] bytes.
    MalformedLane {
        /// Which lane is malformed.
        column: &'static str,
    },
}

impl fmt::Display for PackedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedError::Truncated { expected, actual } => {
                write!(f, "payload truncated: need {expected} bytes, have {actual}")
            }
            PackedError::BadTag { index, tag } => {
                write!(f, "invalid tag byte {tag:#04x} at event {index}")
            }
            PackedError::CountMismatch {
                column,
                declared,
                derived,
            } => write!(
                f,
                "column `{column}` declares {declared} entries but the payload implies {derived}"
            ),
            PackedError::MalformedLane { column } => {
                write!(f, "varint lane `{column}` is malformed")
            }
        }
    }
}

impl Error for PackedError {}

/// Backing storage of a packed payload: owned bytes, or a shared read-only
/// buffer (e.g. a memory-mapped trace-store file) viewed at an offset.
enum Payload {
    Owned(Box<[u8]>),
    Shared {
        data: Arc<dyn AsRef<[u8]> + Send + Sync>,
        offset: usize,
        len: usize,
    },
}

impl Payload {
    fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(b) => b,
            Payload::Shared { data, offset, len } => &(**data).as_ref()[*offset..*offset + *len],
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Owned(b) => write!(f, "Owned({} bytes)", b.len()),
            Payload::Shared { offset, len, .. } => {
                write!(f, "Shared({len} bytes at offset {offset})")
            }
        }
    }
}

/// Byte offsets of each column within a payload, derived from the header:
/// entry counts plus the byte length of each varint lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layout {
    n_events: usize,
    n_pcs: usize,
    n_mems: usize,
    n_alus: usize,
    n_blocks: usize,
    tags: usize,
    pcs: usize,
    addr_deltas: usize,
    alu_counts: usize,
    block_ids: usize,
    total: usize,
}

impl Layout {
    /// Offsets from the nine header words: `[n_events, n_pcs, n_mems,
    /// n_alus, n_blocks, pcs_bytes, deltas_bytes, alus_bytes,
    /// blocks_bytes]`.
    fn from_header(h: [usize; HEADER_WORDS]) -> Layout {
        let [n_events, n_pcs, n_mems, n_alus, n_blocks, pcs_b, deltas_b, alus_b, blocks_b] = h;
        let tags = HEADER_BYTES;
        let pcs = tags + n_events;
        let addr_deltas = pcs + pcs_b;
        let alu_counts = addr_deltas + deltas_b;
        let block_ids = alu_counts + alus_b;
        let total = block_ids + blocks_b;
        Layout {
            n_events,
            n_pcs,
            n_mems,
            n_alus,
            n_blocks,
            tags,
            pcs,
            addr_deltas,
            alu_counts,
            block_ids,
            total,
        }
    }
}

#[inline]
fn u64_at(col: &[u8], idx: usize) -> u64 {
    u64::from_le_bytes(col[idx * 8..idx * 8 + 8].try_into().unwrap())
}

/// The columnar trace. See the module docs for the layout.
///
/// ```
/// use cbws_trace::{Addr, BlockId, PackedTrace, Pc, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// b.annotated_loop(BlockId(0), 4, |b, i| {
///     b.load(Pc(0x400), Addr(0x1000 + 64 * i));
///     b.alu(Pc(0x404), 2);
/// });
/// let trace = b.finish();
/// let packed = PackedTrace::from_trace(&trace);
/// assert_eq!(packed.event_count(), trace.len());
/// assert_eq!(packed.to_trace(), trace);
/// ```
#[derive(Debug)]
pub struct PackedTrace {
    payload: Payload,
    layout: Layout,
}

impl PackedTrace {
    /// Packs a materialized trace into columns, varint-encoding each
    /// operand lane.
    pub fn from_trace(trace: &Trace) -> PackedTrace {
        let events = trace.events();
        let mut n_pcs = 0usize;
        let mut n_mems = 0usize;
        let mut n_alus = 0usize;
        let mut n_blocks = 0usize;
        let mut tags = Vec::with_capacity(events.len());
        // Most entries are one byte (small PCs after the first, unit
        // deltas, short run lengths); reserve optimistically.
        let mut pcs = Vec::with_capacity(events.len() * 2);
        let mut deltas = Vec::new();
        let mut alus = Vec::new();
        let mut blocks = Vec::new();
        let mut prev_addr = 0u64;
        // One PC predictor per variant (ALU / mem / branch): see the
        // module docs for why per-variant deltas stay short.
        let mut prev_pc = [0u64; 3];
        let mut push_pc = |slot: usize, pc: Pc, pcs: &mut Vec<u8>| {
            let delta = pc.0.wrapping_sub(prev_pc[slot]) as i64;
            prev_pc[slot] = pc.0;
            varint::encode(varint::zigzag(delta), pcs);
        };
        for e in events {
            let tag = match e {
                TraceEvent::BlockBegin { id } => {
                    n_blocks += 1;
                    varint::encode(u64::from(id.0), &mut blocks);
                    TAG_BLOCK_BEGIN
                }
                TraceEvent::BlockEnd { id } => {
                    n_blocks += 1;
                    varint::encode(u64::from(id.0), &mut blocks);
                    TAG_BLOCK_END
                }
                TraceEvent::Alu { pc, count } => {
                    n_pcs += 1;
                    n_alus += 1;
                    push_pc(0, *pc, &mut pcs);
                    varint::encode(u64::from(*count), &mut alus);
                    TAG_ALU
                }
                TraceEvent::Mem(m) => {
                    n_pcs += 1;
                    n_mems += 1;
                    push_pc(1, m.pc, &mut pcs);
                    let delta = m.addr.0.wrapping_sub(prev_addr) as i64;
                    prev_addr = m.addr.0;
                    varint::encode(varint::zigzag(delta), &mut deltas);
                    let mut t = TAG_MEM;
                    if m.kind.is_store() {
                        t |= FLAG_STORE;
                    }
                    if m.dep == Dependence::PrevLoad {
                        t |= FLAG_DEP_PREV_LOAD;
                    }
                    t
                }
                TraceEvent::Branch(br) => {
                    n_pcs += 1;
                    push_pc(2, br.pc, &mut pcs);
                    if br.taken {
                        TAG_BRANCH | FLAG_TAKEN
                    } else {
                        TAG_BRANCH
                    }
                }
            };
            tags.push(tag);
        }
        let layout = Layout::from_header([
            events.len(),
            n_pcs,
            n_mems,
            n_alus,
            n_blocks,
            pcs.len(),
            deltas.len(),
            alus.len(),
            blocks.len(),
        ]);
        let mut buf = Vec::with_capacity(layout.total);
        for n in [
            events.len(),
            n_pcs,
            n_mems,
            n_alus,
            n_blocks,
            pcs.len(),
            deltas.len(),
            alus.len(),
            blocks.len(),
        ] {
            buf.extend_from_slice(&(n as u64).to_le_bytes());
        }
        buf.extend_from_slice(&tags);
        buf.extend_from_slice(&pcs);
        buf.extend_from_slice(&deltas);
        buf.extend_from_slice(&alus);
        buf.extend_from_slice(&blocks);
        debug_assert_eq!(buf.len(), layout.total);
        PackedTrace {
            payload: Payload::Owned(buf.into_boxed_slice()),
            layout,
        }
    }

    /// Parses an owned payload buffer, validating the count header and every
    /// tag byte. Never panics on corrupt input.
    pub fn from_payload(bytes: Box<[u8]>) -> Result<PackedTrace, PackedError> {
        let layout = Self::validate(&bytes)?;
        Ok(PackedTrace {
            payload: Payload::Owned(bytes),
            layout,
        })
    }

    /// Parses a payload viewed inside a shared read-only buffer (typically a
    /// memory-mapped trace-store file) without copying it. `offset..offset +
    /// len` must lie within `data`'s byte slice.
    pub fn from_shared_payload(
        data: Arc<dyn AsRef<[u8]> + Send + Sync>,
        offset: usize,
        len: usize,
    ) -> Result<PackedTrace, PackedError> {
        let full = (*data).as_ref();
        let end = offset.saturating_add(len);
        if end > full.len() {
            return Err(PackedError::Truncated {
                expected: end,
                actual: full.len(),
            });
        }
        let layout = Self::validate(&full[offset..end])?;
        Ok(PackedTrace {
            payload: Payload::Shared { data, offset, len },
            layout,
        })
    }

    /// Validates a payload and derives its column layout.
    fn validate(bytes: &[u8]) -> Result<Layout, PackedError> {
        if bytes.len() < HEADER_BYTES {
            return Err(PackedError::Truncated {
                expected: HEADER_BYTES,
                actual: bytes.len(),
            });
        }
        let mut header = [0usize; HEADER_WORDS];
        for (i, slot) in header.iter_mut().enumerate() {
            *slot = usize::try_from(u64_at(bytes, i)).map_err(|_| PackedError::Truncated {
                expected: usize::MAX,
                actual: bytes.len(),
            })?;
        }
        // Guard the offset arithmetic against overflow on absurd counts:
        // the tag lane is one byte per event, the operand lanes contribute
        // their declared byte lengths directly.
        let promised = header[0]
            .checked_add(header[5])
            .and_then(|n| n.checked_add(header[6]))
            .and_then(|n| n.checked_add(header[7]))
            .and_then(|n| n.checked_add(header[8]))
            .and_then(|n| n.checked_add(HEADER_BYTES))
            .unwrap_or(usize::MAX);
        if promised != bytes.len() {
            return Err(PackedError::Truncated {
                expected: promised,
                actual: bytes.len(),
            });
        }
        let layout = Layout::from_header(header);
        // The tag stream must be internally valid and agree with the counts,
        // so every later cursor walk is in bounds by construction.
        let mut derived = [0u64; 4]; // pcs, mems, alus, blocks
        for (i, &tag) in bytes[layout.tags..layout.tags + layout.n_events]
            .iter()
            .enumerate()
        {
            let allowed_flags = match tag & VARIANT_MASK {
                TAG_BLOCK_BEGIN | TAG_BLOCK_END => {
                    derived[3] += 1;
                    0
                }
                TAG_ALU => {
                    derived[0] += 1;
                    derived[2] += 1;
                    0
                }
                TAG_MEM => {
                    derived[0] += 1;
                    derived[1] += 1;
                    FLAG_STORE | FLAG_DEP_PREV_LOAD
                }
                TAG_BRANCH => {
                    derived[0] += 1;
                    FLAG_TAKEN
                }
                _ => return Err(PackedError::BadTag { index: i, tag }),
            };
            if tag & !(VARIANT_MASK | allowed_flags) != 0 {
                return Err(PackedError::BadTag { index: i, tag });
            }
        }
        for (column, declared, derived) in [
            ("pcs", header[1] as u64, derived[0]),
            ("addr_deltas", header[2] as u64, derived[1]),
            ("alu_counts", header[3] as u64, derived[2]),
            ("block_ids", header[4] as u64, derived[3]),
        ] {
            if declared != derived {
                return Err(PackedError::CountMismatch {
                    column,
                    declared,
                    derived,
                });
            }
        }
        // Each varint lane must be well-formed (no dangling continuation
        // byte, no over-long entry) and hold exactly as many entries as
        // the tags demand, so batch decoding never runs out of bytes.
        for (column, range, declared) in [
            ("pcs", layout.pcs..layout.addr_deltas, header[1]),
            (
                "addr_deltas",
                layout.addr_deltas..layout.alu_counts,
                header[2],
            ),
            ("alu_counts", layout.alu_counts..layout.block_ids, header[3]),
            ("block_ids", layout.block_ids..layout.total, header[4]),
        ] {
            match varint::count_entries(&bytes[range]) {
                None => return Err(PackedError::MalformedLane { column }),
                Some(n) if n != declared => {
                    return Err(PackedError::CountMismatch {
                        column,
                        declared: declared as u64,
                        derived: n as u64,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(layout)
    }

    /// The complete payload buffer (count header + columns), which is the
    /// byte-exact on-disk payload of the trace store.
    pub fn payload(&self) -> &[u8] {
        self.payload.as_slice()
    }

    /// The named columns (including the count header), in payload order —
    /// the unit the trace store checksums individually.
    pub fn columns(&self) -> [(&'static str, &[u8]); 6] {
        let p = self.payload.as_slice();
        let l = &self.layout;
        [
            ("counts", &p[..l.tags]),
            ("tags", &p[l.tags..l.pcs]),
            ("pcs", &p[l.pcs..l.addr_deltas]),
            ("addr_deltas", &p[l.addr_deltas..l.alu_counts]),
            ("alu_counts", &p[l.alu_counts..l.block_ids]),
            ("block_ids", &p[l.block_ids..l.total]),
        ]
    }

    /// Number of events (not instructions) in the trace.
    pub fn event_count(&self) -> usize {
        self.layout.n_events
    }

    /// Whether the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.layout.n_events == 0
    }

    /// Resident bytes of the payload (what the in-memory store accounts).
    pub fn footprint_bytes(&self) -> u64 {
        self.payload.as_slice().len() as u64
    }

    /// A cursor positioned at the first event.
    pub fn cursor(&self) -> TraceCursor<'_> {
        let p = self.payload.as_slice();
        let l = &self.layout;
        // Per-lane kernel choice, made once from the header: the 8-wide
        // word kernel only pays off when its all-terminator fast path
        // fires on nearly every probe, i.e. when the lane averages ≤ 9/8
        // bytes per entry (ALU run lengths, block ids, unit-stride
        // deltas). Wider lanes (PC deltas, irregular address deltas)
        // decode faster through the well-predicted scalar byte loop.
        let dense = |bytes: usize, entries: usize| bytes * 8 <= entries * 9;
        TraceCursor {
            tags: &p[l.tags..l.pcs],
            pcs: &p[l.pcs..l.addr_deltas],
            addr_deltas: &p[l.addr_deltas..l.alu_counts],
            alu_counts: &p[l.alu_counts..l.block_ids],
            block_ids: &p[l.block_ids..l.total],
            dense: [
                dense(l.addr_deltas - l.pcs, l.n_pcs),
                dense(l.alu_counts - l.addr_deltas, l.n_mems),
                dense(l.block_ids - l.alu_counts, l.n_alus),
                dense(l.total - l.block_ids, l.n_blocks),
            ],
            prev_addr: 0,
            prev_pc: [0; 3],
            buf: Vec::with_capacity(CURSOR_BATCH),
            buf_i: 0,
            scratch: Box::new(LaneScratch::new()),
        }
    }

    /// Decodes back into a materialized [`Trace`] (lossless).
    pub fn to_trace(&self) -> Trace {
        self.cursor().collect()
    }

    /// Summary statistics, computed through the cursor without
    /// materializing the events.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_event_iter(self.cursor())
    }
}

impl PartialEq for PackedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.payload.as_slice() == other.payload.as_slice()
    }
}

impl Eq for PackedTrace {}

impl From<&Trace> for PackedTrace {
    fn from(trace: &Trace) -> Self {
        PackedTrace::from_trace(trace)
    }
}

/// Sequential decoder over a [`PackedTrace`]'s columns.
///
/// Construction is only possible from a validated payload, so every column
/// read is in bounds. Refills happen in `CURSOR_BATCH`-event batches:
/// one pass over the tag chunk tallies each lane's contribution, each
/// varint lane is batch-decoded into a flat scratch column, and events are
/// then emitted straight from those columns — the per-event work is a tag
/// dispatch plus indexed `u64` reads, never per-event varint decoding.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    tags: &'a [u8],
    pcs: &'a [u8],
    addr_deltas: &'a [u8],
    alu_counts: &'a [u8],
    block_ids: &'a [u8],
    /// Per-lane decoder choice (pcs, deltas, alus, blocks), fixed at
    /// construction from each lane's bytes-per-entry — see
    /// [`PackedTrace::cursor`].
    dense: [bool; 4],
    prev_addr: u64,
    /// Per-variant PC predictors (ALU / mem / branch), mirroring
    /// [`PackedTrace::from_trace`]'s encoders.
    prev_pc: [u64; 3],
    /// Decoded-ahead events. Decoding in batches keeps the column state in
    /// registers for a whole tight decode loop instead of spilling it
    /// between every event of the (register-hungry) replay loop; `next()`
    /// is then a plain buffer read, as cheap as slice iteration.
    buf: Vec<EventRef>,
    buf_i: usize,
    /// Per-lane decode targets, boxed so the cursor stays cheap to move.
    scratch: Box<LaneScratch>,
}

/// Events decoded per [`TraceCursor`] refill. 256 × ~32 B ≈ 8 KB of
/// decoded events plus 4 × 2 KB of scratch columns — hot in L1/L2 next to
/// the replay loop's own state.
const CURSOR_BATCH: usize = 256;

/// Flat decode targets for one refill: each operand lane lands in its own
/// `u64` column before events are assembled.
#[derive(Debug, Clone)]
struct LaneScratch {
    pcs: [u64; CURSOR_BATCH],
    deltas: [u64; CURSOR_BATCH],
    alus: [u64; CURSOR_BATCH],
    blocks: [u64; CURSOR_BATCH],
}

impl LaneScratch {
    fn new() -> LaneScratch {
        LaneScratch {
            pcs: [0; CURSOR_BATCH],
            deltas: [0; CURSOR_BATCH],
            alus: [0; CURSOR_BATCH],
            blocks: [0; CURSOR_BATCH],
        }
    }
}

/// Per-tag lane contributions for the refill tally, packed as four 16-bit
/// counters in one `u64` (pc | mem << 16 | alu << 32 | blk << 48). Summing
/// one table word per tag replaces a 4-way branch per event with a single
/// add, and a 256-tag batch can't overflow a 16-bit field.
static TAG_TALLY: [u64; 256] = {
    let mut t = [0u64; 256];
    let mut tag = 0usize;
    while tag < 256 {
        t[tag] = match tag as u8 & VARIANT_MASK {
            TAG_ALU => 1 | 1 << 32,
            TAG_MEM => 1 | 1 << 16,
            TAG_BRANCH => 1,
            _ => 1 << 48,
        };
        tag += 1;
    }
    t
};

/// Register-resident event assembly over one decoded batch: per-lane read
/// positions plus the running resolution registers (per-variant PC
/// predictors, address accumulator).
struct Assembler<'s> {
    s: &'s LaneScratch,
    pc_i: usize,
    mem_i: usize,
    alu_i: usize,
    blk_i: usize,
    prev_addr: u64,
    prev_pc: [u64; 3],
}

impl<'s> Assembler<'s> {
    #[inline]
    fn new(s: &'s LaneScratch, prev_addr: u64, prev_pc: [u64; 3]) -> Assembler<'s> {
        Assembler {
            s,
            pc_i: 0,
            mem_i: 0,
            alu_i: 0,
            blk_i: 0,
            prev_addr,
            prev_pc,
        }
    }

    #[inline]
    fn next_pc(&mut self, slot: usize) -> Pc {
        self.prev_pc[slot] =
            self.prev_pc[slot].wrapping_add(varint::unzigzag(self.s.pcs[self.pc_i]) as u64);
        self.pc_i += 1;
        Pc(self.prev_pc[slot])
    }

    /// Builds the event for `tag` from the scratch columns, entirely in
    /// registers.
    #[inline]
    fn event(&mut self, tag: u8) -> TraceEvent {
        let s = self.s;
        match tag & VARIANT_MASK {
            TAG_ALU => {
                let e = TraceEvent::Alu {
                    pc: self.next_pc(0),
                    count: s.alus[self.alu_i] as u32,
                };
                self.alu_i += 1;
                e
            }
            TAG_MEM => {
                let pc = self.next_pc(1);
                let delta = varint::unzigzag(s.deltas[self.mem_i]);
                self.mem_i += 1;
                self.prev_addr = self.prev_addr.wrapping_add(delta as u64);
                TraceEvent::Mem(MemAccess {
                    pc,
                    addr: Addr(self.prev_addr),
                    kind: if tag & FLAG_STORE != 0 {
                        MemKind::Store
                    } else {
                        MemKind::Load
                    },
                    dep: if tag & FLAG_DEP_PREV_LOAD != 0 {
                        Dependence::PrevLoad
                    } else {
                        Dependence::None
                    },
                })
            }
            TAG_BRANCH => TraceEvent::Branch(BranchRecord {
                pc: self.next_pc(2),
                taken: tag & FLAG_TAKEN != 0,
            }),
            TAG_BLOCK_BEGIN => {
                let e = TraceEvent::BlockBegin {
                    id: BlockId(s.blocks[self.blk_i] as u32),
                };
                self.blk_i += 1;
                e
            }
            // Validation admits exactly five variants; BlockEnd is last.
            _ => {
                let e = TraceEvent::BlockEnd {
                    id: BlockId(s.blocks[self.blk_i] as u32),
                };
                self.blk_i += 1;
                e
            }
        }
    }
}

impl<'a> TraceCursor<'a> {
    /// Takes the next ≤[`CURSOR_BATCH`] tags off the stream and
    /// batch-decodes every lane's contribution into the scratch columns,
    /// returning the tag chunk.
    fn decode_lanes(&mut self) -> &'a [u8] {
        let (batch, rest) = self.tags.split_at(self.tags.len().min(CURSOR_BATCH));
        self.tags = rest;
        // Pass 1: how many entries each operand lane contributes here —
        // one packed-counter add per tag, no branches.
        let mut tally = 0u64;
        for &tag in batch {
            tally += TAG_TALLY[tag as usize];
        }
        let n_pc = (tally & 0xffff) as usize;
        let n_mem = (tally >> 16 & 0xffff) as usize;
        let n_alu = (tally >> 32 & 0xffff) as usize;
        let n_blk = (tally >> 48) as usize;
        // Batch-decode each lane into its flat scratch column through the
        // kernel its density picked at construction. Validation proved
        // the lanes hold exactly the entries the tags demand.
        #[inline]
        fn lane(dense: bool, lane: &mut &[u8], out: &mut [u64]) {
            if dense {
                varint::decode_batch(lane, out);
            } else {
                varint::decode_batch_scalar(lane, out);
            }
        }
        let s = &mut *self.scratch;
        lane(self.dense[0], &mut self.pcs, &mut s.pcs[..n_pc]);
        lane(self.dense[1], &mut self.addr_deltas, &mut s.deltas[..n_mem]);
        lane(self.dense[2], &mut self.alu_counts, &mut s.alus[..n_alu]);
        lane(self.dense[3], &mut self.block_ids, &mut s.blocks[..n_blk]);
        batch
    }

    /// Decodes the next batch of events into the read-ahead buffer.
    fn refill(&mut self) {
        self.buf.clear();
        self.buf_i = 0;
        let batch = self.decode_lanes();
        let mut a = Assembler::new(&self.scratch, self.prev_addr, self.prev_pc);
        // Pass 2: assemble events from the scratch columns. `extend` over
        // an exact-size map writes each event once with no per-event
        // capacity or length bookkeeping.
        self.buf.extend(batch.iter().map(|&tag| a.event(tag)));
        self.prev_addr = a.prev_addr;
        self.prev_pc = a.prev_pc;
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        if self.buf_i == self.buf.len() {
            if self.tags.is_empty() {
                return None;
            }
            self.refill();
        }
        let e = self.buf[self.buf_i];
        self.buf_i += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.tags.len() + (self.buf.len() - self.buf_i);
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceCursor<'_> {}

impl EventCursor for TraceCursor<'_> {
    #[inline]
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        if self.buf_i < self.buf.len() {
            // Events already decoded but not yet taken via `next()`.
            let chunk = &self.buf[self.buf_i..];
            self.buf_i = self.buf.len();
            return Some(chunk);
        }
        if self.tags.is_empty() {
            return None;
        }
        self.refill();
        self.buf_i = self.buf.len();
        Some(&self.buf[..])
    }
}

/// FNV-1a over a byte slice — the per-frame checksum the trace store
/// records in a framed file's footer and [`FileCursor`] re-verifies while
/// replaying.
///
/// Lives here (rather than only in the store) so the writer and the
/// disk-backed reader are guaranteed to agree on the algorithm.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One frame's location and integrity record inside a framed trace file
/// (packed store format v4).
///
/// A frame is a standalone [`PackedTrace`] payload covering a contiguous
/// event range, with the delta predictors reset at the frame boundary so
/// it decodes without any bytes from neighbouring frames. The store's
/// footer holds one entry per frame; offsets are absolute file offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEntry {
    /// Absolute file offset of the frame payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Events encoded in the frame.
    pub events: u64,
    /// [`fnv1a`] over the payload bytes.
    pub checksum: u64,
}

/// A packed trace split into independently decodable frames, fully
/// resident in memory (each frame typically a zero-copy view into one
/// shared memory-mapped file).
///
/// Replay chains the frames' [`TraceCursor`]s in order; because every
/// frame's payload resets the delta predictors, the concatenation decodes
/// to exactly the event sequence of the unframed trace. A single-frame
/// `FramedTrace` is the degenerate case and costs one extra branch per
/// frame switch, i.e. nothing.
#[derive(Debug)]
pub struct FramedTrace {
    frames: Vec<PackedTrace>,
    total_events: usize,
}

impl FramedTrace {
    /// Wraps an ordered frame sequence. The frames' event ranges are
    /// assumed contiguous (frame N+1 starts where frame N ended).
    pub fn from_frames(frames: Vec<PackedTrace>) -> FramedTrace {
        let total_events = frames.iter().map(PackedTrace::event_count).sum();
        FramedTrace {
            frames,
            total_events,
        }
    }

    /// Wraps a single unframed trace — the shape every pre-v4 store file
    /// loads into.
    pub fn single(packed: PackedTrace) -> FramedTrace {
        FramedTrace::from_frames(vec![packed])
    }

    /// The frames, in event order.
    pub fn frames(&self) -> &[PackedTrace] {
        &self.frames
    }

    /// Number of events (not instructions) across all frames.
    pub fn event_count(&self) -> usize {
        self.total_events
    }

    /// Whether the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.total_events == 0
    }

    /// Resident bytes across all frame payloads.
    pub fn footprint_bytes(&self) -> u64 {
        self.frames.iter().map(PackedTrace::footprint_bytes).sum()
    }

    /// A cursor positioned at the first event of the first frame.
    pub fn cursor(&self) -> FramedCursor<'_> {
        FramedCursor {
            frames: self.frames.iter(),
            cur: None,
            remaining: self.total_events,
        }
    }

    /// Decodes back into a materialized [`Trace`] (lossless).
    pub fn to_trace(&self) -> Trace {
        self.cursor().collect()
    }

    /// Summary statistics, computed through the cursor without
    /// materializing the events.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_event_iter(self.cursor())
    }
}

impl EventSource for FramedTrace {
    type Cursor<'a> = FramedCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        FramedTrace::cursor(self)
    }

    fn event_count(&self) -> usize {
        self.total_events
    }
}

/// Cursor over a [`FramedTrace`]: the frames' [`TraceCursor`]s chained in
/// order. Batch consumers see each frame's decode batches back to back.
#[derive(Debug)]
pub struct FramedCursor<'a> {
    frames: std::slice::Iter<'a, PackedTrace>,
    cur: Option<TraceCursor<'a>>,
    remaining: usize,
}

impl Iterator for FramedCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        loop {
            if let Some(c) = &mut self.cur {
                if let Some(e) = c.next() {
                    self.remaining -= 1;
                    return Some(e);
                }
            }
            self.cur = Some(self.frames.next()?.cursor());
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for FramedCursor<'_> {}

impl EventCursor for FramedCursor<'_> {
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        // Advance to a frame cursor that still has events before taking a
        // batch, so the returned borrow never blocks the frame switch.
        while self.cur.as_ref().is_none_or(|c| c.len() == 0) {
            self.cur = Some(self.frames.next()?.cursor());
        }
        let chunk = self.cur.as_mut().unwrap().next_batch()?;
        self.remaining -= chunk.len();
        Some(chunk)
    }
}

/// Counters a [`FileCursor`] accumulates over one streamed replay and
/// reports to the [`StreamedTrace`]'s observer when it is dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames read and decoded.
    pub frames: u64,
    /// Payload bytes read off disk.
    pub bytes: u64,
    /// Frame adoptions that had to block on the read-ahead thread.
    pub stalls: u64,
    /// Total microseconds spent blocked on the read-ahead thread.
    pub stall_micros: u64,
}

/// Hook a [`StreamedTrace`] calls with the final [`StreamStats`] of each
/// replay, installed by the trace store to bump `trace.stream.*`
/// telemetry without this crate depending on the telemetry layer.
pub type StreamObserver = Arc<dyn Fn(StreamStats) + Send + Sync>;

/// Handle to an on-disk framed trace replayed with bounded memory.
///
/// Holds only the file path and the frame table — no payload bytes. Each
/// [`cursor`](StreamedTrace::cursor) spawns a read-ahead thread that
/// fetches frame N+1 from disk while the replay loop decodes frame N
/// (double buffering via a rendezvous-plus-one channel), so peak resident
/// memory is a few frames regardless of trace length.
///
/// The trace store validates every frame (checksum + payload parse) when
/// it opens the file; the cursor re-verifies checksums during replay and
/// **panics** on a mismatch, since at that point the file has been
/// modified underneath a live replay — the same trust model as a mapped
/// file changing under `mmap`.
pub struct StreamedTrace {
    path: PathBuf,
    frames: Arc<[FrameEntry]>,
    total_events: usize,
    observer: Option<StreamObserver>,
}

impl fmt::Debug for StreamedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamedTrace")
            .field("path", &self.path)
            .field("frames", &self.frames.len())
            .field("total_events", &self.total_events)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl StreamedTrace {
    /// Builds a handle from a validated frame table. `total_events` must
    /// equal the sum of the entries' event counts.
    pub fn new(path: PathBuf, frames: Vec<FrameEntry>, total_events: usize) -> StreamedTrace {
        debug_assert_eq!(
            frames.iter().map(|f| f.events).sum::<u64>(),
            total_events as u64
        );
        StreamedTrace {
            path,
            frames: frames.into(),
            total_events,
            observer: None,
        }
    }

    /// Installs the per-replay stats hook (see [`StreamObserver`]).
    pub fn with_observer(mut self, observer: StreamObserver) -> StreamedTrace {
        self.observer = Some(observer);
        self
    }

    /// The framed file this handle replays from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The frame table (one entry per frame, in event order).
    pub fn frames(&self) -> &[FrameEntry] {
        &self.frames
    }

    /// Total payload bytes on disk across all frames.
    pub fn file_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.len).sum()
    }

    /// Number of events (not instructions) across all frames.
    pub fn event_count(&self) -> usize {
        self.total_events
    }

    /// A disk-backed cursor positioned at the first event. Spawns the
    /// read-ahead thread; panics if the thread cannot be spawned or —
    /// later, during replay — if the file no longer matches the frame
    /// table it was opened with.
    pub fn cursor(&self) -> FileCursor<'_> {
        let (tx, rx) = mpsc::sync_channel::<io::Result<Vec<u8>>>(1);
        let path = self.path.clone();
        let frames = Arc::clone(&self.frames);
        let reader = thread::Builder::new()
            .name("cbws-trace-readahead".into())
            .spawn(move || {
                let mut file = match File::open(&path) {
                    Ok(f) => f,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                };
                for entry in frames.iter() {
                    let mut buf = vec![0u8; entry.len as usize];
                    let res = file
                        .seek(SeekFrom::Start(entry.offset))
                        .and_then(|_| file.read_exact(&mut buf));
                    match res {
                        // A full send queue means the replay loop is
                        // still decoding earlier frames; blocking here
                        // is the read-ahead working as intended. A send
                        // error means the cursor was dropped — exit.
                        Ok(()) => {
                            if tx.send(Ok(buf)).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            })
            .expect("spawn trace read-ahead thread");
        FileCursor {
            src: self,
            rx: Some(rx),
            reader: Some(reader),
            frame_i: 0,
            buf: Vec::new(),
            buf_i: 0,
            remaining: self.total_events,
            stats: StreamStats::default(),
        }
    }
}

impl EventSource for StreamedTrace {
    type Cursor<'a> = FileCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        StreamedTrace::cursor(self)
    }

    fn event_count(&self) -> usize {
        self.total_events
    }
}

/// Disk-backed [`EventCursor`] over a [`StreamedTrace`].
///
/// A dedicated reader thread fetches frame payloads sequentially and
/// hands them over a bounded channel (capacity 1, so up to two frames are
/// in flight beyond the one being decoded). The replay side verifies each
/// frame's checksum against the frame table, parses it as a standalone
/// [`PackedTrace`], decodes the whole frame into a reusable event buffer,
/// and serves it through the usual cursor interface — `Core::run` sees
/// the same batched slices it gets from an in-memory trace.
#[derive(Debug)]
pub struct FileCursor<'a> {
    src: &'a StreamedTrace,
    rx: Option<mpsc::Receiver<io::Result<Vec<u8>>>>,
    reader: Option<thread::JoinHandle<()>>,
    /// Next frame index to adopt from the reader.
    frame_i: usize,
    /// Decoded events of the current frame.
    buf: Vec<EventRef>,
    buf_i: usize,
    remaining: usize,
    stats: StreamStats,
}

impl FileCursor<'_> {
    /// Stats accumulated so far (finalized totals are reported to the
    /// observer on drop).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Receives, verifies, and decodes the next frame into `buf`.
    /// Returns `false` when every frame has been consumed.
    fn adopt_next_frame(&mut self) -> bool {
        if self.frame_i == self.src.frames.len() {
            return false;
        }
        let rx = self.rx.as_ref().expect("read-ahead channel alive");
        // Stall accounting: only a blocking wait counts — if the frame is
        // already buffered, the read-ahead fully hid the disk latency.
        let msg = match rx.try_recv() {
            Ok(m) => m,
            Err(mpsc::TryRecvError::Empty) => {
                let t = Instant::now();
                let m = rx
                    .recv()
                    .expect("trace read-ahead thread exited before the last frame");
                self.stats.stalls += 1;
                self.stats.stall_micros += t.elapsed().as_micros() as u64;
                m
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("trace read-ahead thread exited before the last frame")
            }
        };
        let entry = self.src.frames[self.frame_i];
        let bytes = msg.unwrap_or_else(|e| {
            panic!(
                "streamed trace read failed at frame {} of {}: {e}",
                self.frame_i,
                self.src.path.display()
            )
        });
        assert_eq!(
            fnv1a(&bytes),
            entry.checksum,
            "frame {} of {} failed its checksum during replay (file modified?)",
            self.frame_i,
            self.src.path.display()
        );
        let frame = PackedTrace::from_payload(bytes.into_boxed_slice()).unwrap_or_else(|e| {
            panic!(
                "frame {} of {} no longer parses ({e}) — file modified during replay?",
                self.frame_i,
                self.src.path.display()
            )
        });
        self.buf.clear();
        self.buf.extend(frame.cursor());
        self.buf_i = 0;
        self.frame_i += 1;
        self.stats.frames += 1;
        self.stats.bytes += entry.len;
        true
    }
}

impl Iterator for FileCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        while self.buf_i == self.buf.len() {
            if !self.adopt_next_frame() {
                return None;
            }
        }
        let e = self.buf[self.buf_i];
        self.buf_i += 1;
        self.remaining -= 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for FileCursor<'_> {}

impl EventCursor for FileCursor<'_> {
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        if self.buf_i < self.buf.len() {
            // Events already decoded but not yet taken via `next()`.
            let i = self.buf_i;
            self.buf_i = self.buf.len();
            self.remaining -= self.buf.len() - i;
            return Some(&self.buf[i..]);
        }
        loop {
            if !self.adopt_next_frame() {
                return None;
            }
            if !self.buf.is_empty() {
                break;
            }
        }
        self.buf_i = self.buf.len();
        self.remaining -= self.buf.len();
        Some(&self.buf[..])
    }
}

impl Drop for FileCursor<'_> {
    fn drop(&mut self) {
        // Dropping the receiver makes the reader's next send fail, so it
        // exits even when the replay stopped mid-trace.
        drop(self.rx.take());
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
        if let Some(obs) = &self.src.observer {
            obs(self.stats);
        }
    }
}

/// The engine's trace handle: either a fully resident framed trace or a
/// disk-backed streamed one, chosen per job by the byte threshold
/// (`CBWS_STREAM_THRESHOLD_BYTES`). Implements [`EventSource`], so
/// `Simulator::run` takes either without caring which.
#[derive(Debug, Clone)]
pub enum ReplaySource {
    /// Fully resident frames (zero-copy views of the mapped store file).
    Memory(Arc<FramedTrace>),
    /// Disk-backed frames replayed through a [`FileCursor`].
    Streamed(Arc<StreamedTrace>),
}

impl ReplaySource {
    /// Whether this handle replays from disk rather than memory.
    pub fn is_streamed(&self) -> bool {
        matches!(self, ReplaySource::Streamed(_))
    }
}

impl EventSource for ReplaySource {
    type Cursor<'a> = ReplayCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        match self {
            ReplaySource::Memory(t) => ReplayCursor::Memory(t.cursor()),
            ReplaySource::Streamed(t) => ReplayCursor::Streamed(t.cursor()),
        }
    }

    fn event_count(&self) -> usize {
        match self {
            ReplaySource::Memory(t) => t.event_count(),
            ReplaySource::Streamed(t) => t.event_count(),
        }
    }
}

/// Cursor over a [`ReplaySource`]: plain enum delegation to the
/// underlying representation's cursor.
#[derive(Debug)]
pub enum ReplayCursor<'a> {
    /// Chained in-memory frame cursors.
    Memory(FramedCursor<'a>),
    /// Disk-backed cursor with read-ahead.
    Streamed(FileCursor<'a>),
}

impl Iterator for ReplayCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        match self {
            ReplayCursor::Memory(c) => c.next(),
            ReplayCursor::Streamed(c) => c.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ReplayCursor::Memory(c) => c.size_hint(),
            ReplayCursor::Streamed(c) => c.size_hint(),
        }
    }
}

impl ExactSizeIterator for ReplayCursor<'_> {}

impl EventCursor for ReplayCursor<'_> {
    #[inline]
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        match self {
            ReplayCursor::Memory(c) => c.next_batch(),
            ReplayCursor::Streamed(c) => c.next_batch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0x100), 7);
        b.annotated_loop(BlockId(3), 5, |b, i| {
            b.load(Pc(0x200), Addr(0x4000 + i * 4096));
            b.load_dep(Pc(0x204), Addr(0x900_0000 - i * 64));
            b.store(Pc(0x208), Addr(i * 128));
            b.alu(Pc(0x20c), 3);
        });
        b.branch(Pc(0x300), true);
        b.finish()
    }

    #[test]
    fn round_trip_is_lossless() {
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        assert_eq!(packed.to_trace(), trace);
        assert_eq!(packed.event_count(), trace.len());
        assert_eq!(packed.stats(), trace.stats());
    }

    #[test]
    fn cursor_matches_slice_iteration() {
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        let decoded: Vec<TraceEvent> = packed.cursor().collect();
        assert_eq!(decoded.as_slice(), trace.events());
        // The EventSource impls agree too.
        let via_trait: Vec<TraceEvent> = EventSource::cursor(&packed).collect();
        let via_trace: Vec<TraceEvent> = EventSource::cursor(&trace).collect();
        assert_eq!(via_trait, via_trace);
        assert_eq!(
            EventSource::event_count(&packed),
            EventSource::event_count(&trace)
        );
    }

    #[test]
    fn batched_cursor_matches_slice_iteration() {
        // A trace longer than one decode batch, so next_batch() yields
        // several chunks from the packed cursor.
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(1), 200, |b, i| {
            b.load(Pc(0x200), Addr(0x4000 + i * 64));
            b.alu(Pc(0x204), 2);
            b.branch(Pc(0x208), i % 3 == 0);
        });
        let trace = b.finish();
        let packed = PackedTrace::from_trace(&trace);

        for_both_reprs(&trace, &packed, |cursor| {
            let mut batched = Vec::new();
            while let Some(chunk) = cursor.next_batch() {
                assert!(!chunk.is_empty(), "next_batch yielded an empty chunk");
                batched.extend_from_slice(chunk);
            }
            assert_eq!(cursor.next_batch(), None, "exhausted cursor must stay dry");
            assert_eq!(batched.as_slice(), trace.events());
        });

        // Mixing next() and next_batch(): events already decoded but not
        // yet taken must appear in the following batch exactly once.
        for_both_reprs(&trace, &packed, |cursor| {
            let mut seen = vec![cursor.next().unwrap(), cursor.next().unwrap()];
            while let Some(chunk) = cursor.next_batch() {
                seen.extend_from_slice(chunk);
            }
            assert_eq!(seen.as_slice(), trace.events());
        });
    }

    /// Runs `check` against a fresh cursor of each representation.
    fn for_both_reprs(
        trace: &Trace,
        packed: &PackedTrace,
        mut check: impl FnMut(&mut dyn EventCursor),
    ) {
        check(&mut EventSource::cursor(trace));
        check(&mut EventSource::cursor(packed));
    }

    #[test]
    fn payload_parses_back() {
        let packed = PackedTrace::from_trace(&sample());
        let bytes: Box<[u8]> = packed.payload().into();
        let reparsed = PackedTrace::from_payload(bytes).unwrap();
        assert_eq!(reparsed, packed);
        assert_eq!(reparsed.to_trace(), sample());
    }

    #[test]
    fn shared_payload_is_zero_copy_view() {
        let packed = PackedTrace::from_trace(&sample());
        let mut framed = vec![0xAA; 3]; // leading junk the view must skip
        framed.extend_from_slice(packed.payload());
        framed.extend_from_slice(&[0xBB; 5]);
        let len = packed.payload().len();
        let shared: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(framed);
        let view = PackedTrace::from_shared_payload(shared, 3, len).unwrap();
        assert_eq!(view, packed);
        assert_eq!(view.to_trace(), sample());
    }

    #[test]
    fn shared_payload_out_of_bounds_is_error() {
        let shared: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(vec![0u8; 16]);
        assert!(matches!(
            PackedTrace::from_shared_payload(shared, 8, 16),
            Err(PackedError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_trace_packs() {
        let packed = PackedTrace::from_trace(&Trace::default());
        assert!(packed.is_empty());
        assert_eq!(packed.payload().len(), HEADER_BYTES);
        assert_eq!(packed.to_trace(), Trace::default());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let packed = PackedTrace::from_trace(&sample());
        let bytes = packed.payload();
        for cut in [0, HEADER_BYTES - 1, bytes.len() - 1] {
            let r = PackedTrace::from_payload(bytes[..cut].into());
            assert!(matches!(r, Err(PackedError::Truncated { .. })), "cut {cut}");
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let packed = PackedTrace::from_trace(&sample());
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        bytes[HEADER_BYTES] = 0x07; // variant 7 does not exist
        assert!(matches!(
            PackedTrace::from_payload(bytes.clone().into_boxed_slice()),
            Err(PackedError::BadTag { index: 0, .. })
        ));
        bytes[HEADER_BYTES] = TAG_ALU | FLAG_STORE; // illegal flag for ALU
        assert!(matches!(
            PackedTrace::from_payload(bytes.into_boxed_slice()),
            Err(PackedError::BadTag { index: 0, .. })
        ));
    }

    #[test]
    fn count_mismatch_is_rejected() {
        // Claim one branch event but write a mem tag: addr_deltas column
        // length disagrees with the tag stream.
        let trace = Trace::from_events(vec![TraceEvent::Branch(BranchRecord {
            pc: Pc(0),
            taken: false,
        })]);
        let packed = PackedTrace::from_trace(&trace);
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        bytes[HEADER_BYTES] = TAG_MEM;
        let r = PackedTrace::from_payload(bytes.into_boxed_slice());
        assert!(matches!(r, Err(PackedError::CountMismatch { .. })), "{r:?}");
    }

    #[test]
    fn malformed_lane_is_rejected() {
        // Setting the continuation bit on the last byte of the last lane
        // leaves the payload length and tag stream intact but the lane
        // dangling mid-entry.
        let packed = PackedTrace::from_trace(&sample());
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        *bytes.last_mut().unwrap() |= 0x80;
        assert!(matches!(
            PackedTrace::from_payload(bytes.into_boxed_slice()),
            Err(PackedError::MalformedLane { .. })
        ));
    }

    #[test]
    fn varint_lanes_shrink_the_payload() {
        // Loop-local PCs, unit-stride line deltas, and small run lengths
        // are the common case; they must encode in one byte each, so the
        // payload lands well under the old 8-byte-per-operand layout.
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        let aos_bytes = trace.len() * std::mem::size_of::<TraceEvent>();
        assert!(
            packed.payload().len() * 3 < aos_bytes,
            "packed {} vs AoS {aos_bytes}",
            packed.payload().len()
        );
    }

    #[test]
    fn delta_encoding_survives_extreme_addresses() {
        let mut b = TraceBuilder::new();
        b.load(Pc(0), Addr(u64::MAX));
        b.load(Pc(4), Addr(0));
        b.load(Pc(8), Addr(u64::MAX / 2));
        b.store(Pc(12), Addr(u64::MAX));
        let trace = b.finish();
        assert_eq!(PackedTrace::from_trace(&trace).to_trace(), trace);
    }

    /// Splits a trace into standalone frames of at most `frame_events`
    /// events each, the way the streaming writer does (predictors reset
    /// per frame).
    fn frames_of(trace: &Trace, frame_events: usize) -> Vec<PackedTrace> {
        trace
            .events()
            .chunks(frame_events.max(1))
            .map(|c| PackedTrace::from_trace(&Trace::from_events(c.to_vec())))
            .collect()
    }

    /// A ~650-event trace: long enough to span several 256-event decode
    /// batches and several small frames.
    fn long_sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(2), 130, |b, i| {
            b.load(Pc(0x500), Addr(0x10_0000 + i * 64));
            b.alu(Pc(0x504), (i % 7 + 1) as u32);
            b.branch(Pc(0x508), i % 2 == 0);
        });
        b.finish()
    }

    #[test]
    fn framed_cursor_matches_unframed() {
        let trace = long_sample();
        for frame_events in [1, 100, 255, 256, 257, trace.len(), trace.len() + 50] {
            let framed = FramedTrace::from_frames(frames_of(&trace, frame_events));
            assert_eq!(framed.event_count(), trace.len());
            let via_next: Vec<TraceEvent> = framed.cursor().collect();
            assert_eq!(via_next.as_slice(), trace.events(), "frame {frame_events}");

            let mut cursor = framed.cursor();
            let mut batched = Vec::new();
            while let Some(chunk) = cursor.next_batch() {
                assert!(!chunk.is_empty());
                batched.extend_from_slice(chunk);
            }
            assert_eq!(batched.as_slice(), trace.events(), "frame {frame_events}");
            assert_eq!(cursor.next_batch(), None);
        }
    }

    #[test]
    fn framed_trace_degenerate_shapes() {
        let empty = FramedTrace::from_frames(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.cursor().next(), None);
        assert_eq!(empty.cursor().next_batch(), None);

        let trace = sample();
        let single = FramedTrace::single(PackedTrace::from_trace(&trace));
        assert_eq!(single.to_trace(), trace);
        assert_eq!(single.stats(), trace.stats());
        assert_eq!(
            single.footprint_bytes(),
            PackedTrace::from_trace(&trace).footprint_bytes()
        );
    }

    /// Writes frames back to back in a temp file behind a junk prefix (so
    /// absolute offsets are honored) and returns the frame table.
    fn write_framed(frames: &[PackedTrace]) -> (PathBuf, Vec<FrameEntry>) {
        use std::io::Write;
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "cbws-packed-test-{}-{seq}.frames",
            std::process::id()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(&[0xEE; 7]).unwrap();
        let mut offset = 7u64;
        let mut entries = Vec::new();
        for frame in frames {
            let p = frame.payload();
            f.write_all(p).unwrap();
            entries.push(FrameEntry {
                offset,
                len: p.len() as u64,
                events: frame.event_count() as u64,
                checksum: fnv1a(p),
            });
            offset += p.len() as u64;
        }
        (path, entries)
    }

    fn streamed_of(trace: &Trace, frame_events: usize) -> (StreamedTrace, PathBuf) {
        let (path, entries) = write_framed(&frames_of(trace, frame_events));
        (StreamedTrace::new(path.clone(), entries, trace.len()), path)
    }

    #[test]
    fn file_cursor_matches_slice_iteration() {
        let trace = long_sample();
        for frame_events in [1, 200, 256, 257, trace.len()] {
            let (streamed, path) = streamed_of(&trace, frame_events);
            let via_next: Vec<TraceEvent> = streamed.cursor().collect();
            assert_eq!(via_next.as_slice(), trace.events(), "frame {frame_events}");

            let mut cursor = streamed.cursor();
            let mut batched = vec![cursor.next().unwrap()];
            while let Some(chunk) = cursor.next_batch() {
                batched.extend_from_slice(chunk);
            }
            assert_eq!(batched.as_slice(), trace.events(), "frame {frame_events}");
            let stats = cursor.stats();
            assert_eq!(stats.frames, streamed.frames().len() as u64);
            assert_eq!(stats.bytes, streamed.file_bytes());
            drop(cursor);
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn file_cursor_reports_stats_to_observer() {
        use std::sync::Mutex;
        let trace = long_sample();
        let (streamed, path) = streamed_of(&trace, 100);
        let seen: Arc<Mutex<Vec<StreamStats>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let streamed = streamed.with_observer(Arc::new(move |s| sink.lock().unwrap().push(s)));
        let n: usize = streamed.cursor().count();
        assert_eq!(n, trace.len());
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].frames, streamed.frames().len() as u64);
        assert_eq!(seen[0].bytes, streamed.file_bytes());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn file_cursor_detects_mid_replay_corruption() {
        let trace = long_sample();
        let (streamed, path) = streamed_of(&trace, 100);
        // Flip one payload bit after the frame table was built: replay
        // must refuse to decode silently-wrong events.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| streamed.cursor().count()));
        assert!(outcome.is_err(), "corrupted frame must not replay");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn replay_source_dispatches_both_ways() {
        let trace = long_sample();
        let memory =
            ReplaySource::Memory(Arc::new(FramedTrace::from_frames(frames_of(&trace, 200))));
        let (streamed, path) = streamed_of(&trace, 200);
        let disk = ReplaySource::Streamed(Arc::new(streamed));
        assert!(!memory.is_streamed());
        assert!(disk.is_streamed());
        for src in [&memory, &disk] {
            assert_eq!(EventSource::event_count(src), trace.len());
            let events: Vec<TraceEvent> = EventSource::cursor(src).collect();
            assert_eq!(events.as_slice(), trace.events());
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
