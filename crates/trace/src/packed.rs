//! Columnar (structure-of-arrays) trace encoding and the sequential cursor
//! API the replay hot loops consume.
//!
//! [`crate::Trace`] stores events as a `Vec<TraceEvent>` — an
//! array-of-structs of a padded enum, ~32 bytes per event regardless of
//! variant. The replay loop touches every byte of that layout even though an
//! ALU event needs 13 bytes of information and a block marker 5. A
//! [`PackedTrace`] stores the same event stream as parallel columns inside
//! one contiguous little-endian byte buffer:
//!
//! | column       | element | one entry per            |
//! |--------------|---------|--------------------------|
//! | `tags`       | `u8`    | event (variant + flag bits) |
//! | `pcs`        | `u64`   | PC-bearing event (ALU/mem/branch) |
//! | `addr_deltas`| `i64`   | memory access (byte-address delta vs the previous access) |
//! | `alu_counts` | `u32`   | ALU event                |
//! | `block_ids`  | `u32`   | block begin/end marker   |
//!
//! The buffer layout **is** the on-disk payload of the persistent trace
//! store (`cbws-workloads::trace_store`), so a memory-mapped file replays
//! zero-copy. Conversion [`Trace`] ⇄ [`PackedTrace`] is lossless
//! (property-tested in `tests/packed_properties.rs`).
//!
//! Consumers iterate through [`TraceCursor`] (usually via the
//! [`EventSource`] trait, which `Core::run` and the analysis passes are
//! generic over), decoding each event from the columns on the fly instead
//! of materializing a `Vec<TraceEvent>`.

use crate::addr::{Addr, BlockId, Pc};
use crate::event::{BranchRecord, Dependence, MemAccess, MemKind, TraceEvent};
use crate::{Trace, TraceStats};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A decoded event as yielded by a [`TraceCursor`].
///
/// Every field of [`TraceEvent`] is `Copy`, so the decoded view is the event
/// itself, built in registers from the packed columns; the alias exists so
/// cursor consumers are insulated from the storage representation.
pub type EventRef = TraceEvent;

/// Anything the simulator can replay: an ordered event stream with a
/// sequential cursor.
///
/// Implemented by [`Trace`] (slice iteration over the materialized events)
/// and [`PackedTrace`] (on-the-fly decode from the packed columns), so the
/// replay and analysis loops are written once and monomorphized per
/// representation.
pub trait EventSource {
    /// The sequential iterator over decoded events.
    type Cursor<'a>: EventCursor + 'a
    where
        Self: 'a;

    /// A cursor positioned at the first event.
    fn cursor(&self) -> Self::Cursor<'_>;

    /// Number of events (not instructions) in the stream.
    fn event_count(&self) -> usize;
}

/// A sequential event stream that can also hand out contiguous runs of
/// decoded events.
///
/// The replay loop consumes [`next_batch`](EventCursor::next_batch) so its
/// inner loop is plain slice iteration regardless of representation —
/// [`Trace`] returns its whole event slice in one chunk, [`PackedTrace`]
/// returns each decode batch. Analysis passes that want one event at a
/// time keep using the [`Iterator`] interface.
pub trait EventCursor: Iterator<Item = EventRef> {
    /// The next contiguous run of decoded events, or `None` once the
    /// stream (including any events not yet taken via [`Iterator::next`])
    /// is exhausted.
    fn next_batch(&mut self) -> Option<&[EventRef]>;
}

impl EventSource for Trace {
    type Cursor<'a> = SliceCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        SliceCursor {
            rest: self.events(),
        }
    }

    fn event_count(&self) -> usize {
        self.len()
    }
}

/// Cursor over a materialized [`Trace`]: slice iteration, with the whole
/// remaining slice as a single chunk.
#[derive(Debug, Clone)]
pub struct SliceCursor<'a> {
    rest: &'a [TraceEvent],
}

impl Iterator for SliceCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        let (&e, rest) = self.rest.split_first()?;
        self.rest = rest;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.rest.len(), Some(self.rest.len()))
    }
}

impl ExactSizeIterator for SliceCursor<'_> {}

impl EventCursor for SliceCursor<'_> {
    #[inline]
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        if self.rest.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.rest))
        }
    }
}

impl EventSource for PackedTrace {
    type Cursor<'a> = TraceCursor<'a>;

    fn cursor(&self) -> Self::Cursor<'_> {
        PackedTrace::cursor(self)
    }

    fn event_count(&self) -> usize {
        self.event_count()
    }
}

// Tag byte: bits 0..=2 select the variant, bits 3..=5 are per-variant
// flags, bits 6..=7 must be zero.
const VARIANT_MASK: u8 = 0b0000_0111;
const TAG_BLOCK_BEGIN: u8 = 0;
const TAG_BLOCK_END: u8 = 1;
const TAG_ALU: u8 = 2;
const TAG_MEM: u8 = 3;
const TAG_BRANCH: u8 = 4;
const FLAG_STORE: u8 = 1 << 3; // mem only
const FLAG_DEP_PREV_LOAD: u8 = 1 << 4; // mem only
const FLAG_TAKEN: u8 = 1 << 5; // branch only

/// Bytes of the payload's count header: five little-endian `u64`s
/// (events, PC entries, memory accesses, ALU events, block markers).
const HEADER_BYTES: usize = 5 * 8;

/// Why a byte buffer failed to parse as a packed-trace payload.
///
/// Parsing never panics: a corrupt or truncated buffer yields an error the
/// trace store turns into a regenerate-and-rewrite fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedError {
    /// The buffer is shorter than the declared columns require.
    Truncated {
        /// Bytes the count header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A tag byte has an unknown variant or an illegal flag bit.
    BadTag {
        /// Event index of the offending tag.
        index: usize,
        /// The raw tag byte.
        tag: u8,
    },
    /// The per-column counts disagree with the tag stream.
    CountMismatch {
        /// Which column disagreed.
        column: &'static str,
        /// Count declared in the header.
        declared: u64,
        /// Count derived from the tags.
        derived: u64,
    },
}

impl fmt::Display for PackedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedError::Truncated { expected, actual } => {
                write!(f, "payload truncated: need {expected} bytes, have {actual}")
            }
            PackedError::BadTag { index, tag } => {
                write!(f, "invalid tag byte {tag:#04x} at event {index}")
            }
            PackedError::CountMismatch {
                column,
                declared,
                derived,
            } => write!(
                f,
                "column `{column}` declares {declared} entries but the tags imply {derived}"
            ),
        }
    }
}

impl Error for PackedError {}

/// Backing storage of a packed payload: owned bytes, or a shared read-only
/// buffer (e.g. a memory-mapped trace-store file) viewed at an offset.
enum Payload {
    Owned(Box<[u8]>),
    Shared {
        data: Arc<dyn AsRef<[u8]> + Send + Sync>,
        offset: usize,
        len: usize,
    },
}

impl Payload {
    fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(b) => b,
            Payload::Shared { data, offset, len } => &(**data).as_ref()[*offset..*offset + *len],
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Owned(b) => write!(f, "Owned({} bytes)", b.len()),
            Payload::Shared { offset, len, .. } => {
                write!(f, "Shared({len} bytes at offset {offset})")
            }
        }
    }
}

/// Byte offsets of each column within a payload, derived from the counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layout {
    n_events: usize,
    n_pcs: usize,
    n_mems: usize,
    n_alus: usize,
    n_blocks: usize,
    tags: usize,
    pcs: usize,
    addr_deltas: usize,
    alu_counts: usize,
    block_ids: usize,
    total: usize,
}

impl Layout {
    fn from_counts(
        n_events: usize,
        n_pcs: usize,
        n_mems: usize,
        n_alus: usize,
        n_blocks: usize,
    ) -> Layout {
        let tags = HEADER_BYTES;
        let pcs = tags + n_events;
        let addr_deltas = pcs + n_pcs * 8;
        let alu_counts = addr_deltas + n_mems * 8;
        let block_ids = alu_counts + n_alus * 4;
        let total = block_ids + n_blocks * 4;
        Layout {
            n_events,
            n_pcs,
            n_mems,
            n_alus,
            n_blocks,
            tags,
            pcs,
            addr_deltas,
            alu_counts,
            block_ids,
            total,
        }
    }
}

#[inline]
fn u64_at(col: &[u8], idx: usize) -> u64 {
    u64::from_le_bytes(col[idx * 8..idx * 8 + 8].try_into().unwrap())
}

/// The columnar trace. See the module docs for the layout.
///
/// ```
/// use cbws_trace::{Addr, BlockId, PackedTrace, Pc, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// b.annotated_loop(BlockId(0), 4, |b, i| {
///     b.load(Pc(0x400), Addr(0x1000 + 64 * i));
///     b.alu(Pc(0x404), 2);
/// });
/// let trace = b.finish();
/// let packed = PackedTrace::from_trace(&trace);
/// assert_eq!(packed.event_count(), trace.len());
/// assert_eq!(packed.to_trace(), trace);
/// ```
#[derive(Debug)]
pub struct PackedTrace {
    payload: Payload,
    layout: Layout,
}

impl PackedTrace {
    /// Packs a materialized trace into columns.
    pub fn from_trace(trace: &Trace) -> PackedTrace {
        let events = trace.events();
        let mut n_pcs = 0usize;
        let mut n_mems = 0usize;
        let mut n_alus = 0usize;
        let mut n_blocks = 0usize;
        for e in events {
            match e {
                TraceEvent::Alu { .. } => {
                    n_pcs += 1;
                    n_alus += 1;
                }
                TraceEvent::Mem(_) => {
                    n_pcs += 1;
                    n_mems += 1;
                }
                TraceEvent::Branch(_) => n_pcs += 1,
                TraceEvent::BlockBegin { .. } | TraceEvent::BlockEnd { .. } => n_blocks += 1,
            }
        }
        let layout = Layout::from_counts(events.len(), n_pcs, n_mems, n_alus, n_blocks);
        let mut buf = vec![0u8; layout.total];
        for (i, n) in [
            events.len() as u64,
            n_pcs as u64,
            n_mems as u64,
            n_alus as u64,
            n_blocks as u64,
        ]
        .into_iter()
        .enumerate()
        {
            buf[i * 8..i * 8 + 8].copy_from_slice(&n.to_le_bytes());
        }
        let mut pc_i = 0usize;
        let mut mem_i = 0usize;
        let mut alu_i = 0usize;
        let mut blk_i = 0usize;
        let mut prev_addr = 0u64;
        let put_pc = |buf: &mut [u8], pc_i: &mut usize, pc: Pc| {
            let at = layout.pcs + *pc_i * 8;
            buf[at..at + 8].copy_from_slice(&pc.0.to_le_bytes());
            *pc_i += 1;
        };
        for (i, e) in events.iter().enumerate() {
            let tag = match e {
                TraceEvent::BlockBegin { id } => {
                    let at = layout.block_ids + blk_i * 4;
                    buf[at..at + 4].copy_from_slice(&id.0.to_le_bytes());
                    blk_i += 1;
                    TAG_BLOCK_BEGIN
                }
                TraceEvent::BlockEnd { id } => {
                    let at = layout.block_ids + blk_i * 4;
                    buf[at..at + 4].copy_from_slice(&id.0.to_le_bytes());
                    blk_i += 1;
                    TAG_BLOCK_END
                }
                TraceEvent::Alu { pc, count } => {
                    put_pc(&mut buf, &mut pc_i, *pc);
                    let at = layout.alu_counts + alu_i * 4;
                    buf[at..at + 4].copy_from_slice(&count.to_le_bytes());
                    alu_i += 1;
                    TAG_ALU
                }
                TraceEvent::Mem(m) => {
                    put_pc(&mut buf, &mut pc_i, m.pc);
                    let delta = m.addr.0.wrapping_sub(prev_addr) as i64;
                    prev_addr = m.addr.0;
                    let at = layout.addr_deltas + mem_i * 8;
                    buf[at..at + 8].copy_from_slice(&delta.to_le_bytes());
                    mem_i += 1;
                    let mut t = TAG_MEM;
                    if m.kind.is_store() {
                        t |= FLAG_STORE;
                    }
                    if m.dep == Dependence::PrevLoad {
                        t |= FLAG_DEP_PREV_LOAD;
                    }
                    t
                }
                TraceEvent::Branch(br) => {
                    put_pc(&mut buf, &mut pc_i, br.pc);
                    if br.taken {
                        TAG_BRANCH | FLAG_TAKEN
                    } else {
                        TAG_BRANCH
                    }
                }
            };
            buf[layout.tags + i] = tag;
        }
        PackedTrace {
            payload: Payload::Owned(buf.into_boxed_slice()),
            layout,
        }
    }

    /// Parses an owned payload buffer, validating the count header and every
    /// tag byte. Never panics on corrupt input.
    pub fn from_payload(bytes: Box<[u8]>) -> Result<PackedTrace, PackedError> {
        let layout = Self::validate(&bytes)?;
        Ok(PackedTrace {
            payload: Payload::Owned(bytes),
            layout,
        })
    }

    /// Parses a payload viewed inside a shared read-only buffer (typically a
    /// memory-mapped trace-store file) without copying it. `offset..offset +
    /// len` must lie within `data`'s byte slice.
    pub fn from_shared_payload(
        data: Arc<dyn AsRef<[u8]> + Send + Sync>,
        offset: usize,
        len: usize,
    ) -> Result<PackedTrace, PackedError> {
        let full = (*data).as_ref();
        let end = offset.saturating_add(len);
        if end > full.len() {
            return Err(PackedError::Truncated {
                expected: end,
                actual: full.len(),
            });
        }
        let layout = Self::validate(&full[offset..end])?;
        Ok(PackedTrace {
            payload: Payload::Shared { data, offset, len },
            layout,
        })
    }

    /// Validates a payload and derives its column layout.
    fn validate(bytes: &[u8]) -> Result<Layout, PackedError> {
        if bytes.len() < HEADER_BYTES {
            return Err(PackedError::Truncated {
                expected: HEADER_BYTES,
                actual: bytes.len(),
            });
        }
        let counts: Vec<usize> = (0..5)
            .map(|i| {
                usize::try_from(u64_at(bytes, i)).map_err(|_| PackedError::Truncated {
                    expected: usize::MAX,
                    actual: bytes.len(),
                })
            })
            .collect::<Result<_, _>>()?;
        // Guard the offset arithmetic against overflow on absurd counts.
        let promised = counts[0]
            .checked_add(counts[1].saturating_mul(8))
            .and_then(|n| n.checked_add(counts[2].checked_mul(8)?))
            .and_then(|n| n.checked_add(counts[3].checked_mul(4)?))
            .and_then(|n| n.checked_add(counts[4].checked_mul(4)?))
            .and_then(|n| n.checked_add(HEADER_BYTES))
            .unwrap_or(usize::MAX);
        if promised != bytes.len() {
            return Err(PackedError::Truncated {
                expected: promised,
                actual: bytes.len(),
            });
        }
        let layout = Layout::from_counts(counts[0], counts[1], counts[2], counts[3], counts[4]);
        // The tag stream must be internally valid and agree with the counts,
        // so every later cursor walk is in bounds by construction.
        let mut derived = [0u64; 4]; // pcs, mems, alus, blocks
        for (i, &tag) in bytes[layout.tags..layout.tags + layout.n_events]
            .iter()
            .enumerate()
        {
            let allowed_flags = match tag & VARIANT_MASK {
                TAG_BLOCK_BEGIN | TAG_BLOCK_END => {
                    derived[3] += 1;
                    0
                }
                TAG_ALU => {
                    derived[0] += 1;
                    derived[2] += 1;
                    0
                }
                TAG_MEM => {
                    derived[0] += 1;
                    derived[1] += 1;
                    FLAG_STORE | FLAG_DEP_PREV_LOAD
                }
                TAG_BRANCH => {
                    derived[0] += 1;
                    FLAG_TAKEN
                }
                _ => return Err(PackedError::BadTag { index: i, tag }),
            };
            if tag & !(VARIANT_MASK | allowed_flags) != 0 {
                return Err(PackedError::BadTag { index: i, tag });
            }
        }
        for (column, declared, derived) in [
            ("pcs", counts[1] as u64, derived[0]),
            ("addr_deltas", counts[2] as u64, derived[1]),
            ("alu_counts", counts[3] as u64, derived[2]),
            ("block_ids", counts[4] as u64, derived[3]),
        ] {
            if declared != derived {
                return Err(PackedError::CountMismatch {
                    column,
                    declared,
                    derived,
                });
            }
        }
        Ok(layout)
    }

    /// The complete payload buffer (count header + columns), which is the
    /// byte-exact on-disk payload of the trace store.
    pub fn payload(&self) -> &[u8] {
        self.payload.as_slice()
    }

    /// The named columns (including the count header), in payload order —
    /// the unit the trace store checksums individually.
    pub fn columns(&self) -> [(&'static str, &[u8]); 6] {
        let p = self.payload.as_slice();
        let l = &self.layout;
        [
            ("counts", &p[..l.tags]),
            ("tags", &p[l.tags..l.pcs]),
            ("pcs", &p[l.pcs..l.addr_deltas]),
            ("addr_deltas", &p[l.addr_deltas..l.alu_counts]),
            ("alu_counts", &p[l.alu_counts..l.block_ids]),
            ("block_ids", &p[l.block_ids..l.total]),
        ]
    }

    /// Number of events (not instructions) in the trace.
    pub fn event_count(&self) -> usize {
        self.layout.n_events
    }

    /// Whether the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.layout.n_events == 0
    }

    /// Resident bytes of the payload (what the in-memory store accounts).
    pub fn footprint_bytes(&self) -> u64 {
        self.payload.as_slice().len() as u64
    }

    /// A cursor positioned at the first event.
    pub fn cursor(&self) -> TraceCursor<'_> {
        let p = self.payload.as_slice();
        let l = &self.layout;
        TraceCursor {
            tags: &p[l.tags..l.pcs],
            pcs: &p[l.pcs..l.addr_deltas],
            addr_deltas: &p[l.addr_deltas..l.alu_counts],
            alu_counts: &p[l.alu_counts..l.block_ids],
            block_ids: &p[l.block_ids..l.total],
            prev_addr: 0,
            buf: Vec::with_capacity(CURSOR_BATCH),
            buf_i: 0,
        }
    }

    /// Decodes back into a materialized [`Trace`] (lossless).
    pub fn to_trace(&self) -> Trace {
        self.cursor().collect()
    }

    /// Summary statistics, computed through the cursor without
    /// materializing the events.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_event_iter(self.cursor())
    }
}

impl PartialEq for PackedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.payload.as_slice() == other.payload.as_slice()
    }
}

impl Eq for PackedTrace {}

impl From<&Trace> for PackedTrace {
    fn from(trace: &Trace) -> Self {
        PackedTrace::from_trace(trace)
    }
}

/// Sequential decoder over a [`PackedTrace`]'s columns.
///
/// Construction is only possible from a validated payload, so every column
/// read is in bounds; the per-event work is one tag load plus the column
/// reads that variant needs.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    tags: &'a [u8],
    pcs: &'a [u8],
    addr_deltas: &'a [u8],
    alu_counts: &'a [u8],
    block_ids: &'a [u8],
    prev_addr: u64,
    /// Decoded-ahead events. Decoding in batches keeps the column state in
    /// registers for a whole tight decode loop instead of spilling it
    /// between every event of the (register-hungry) replay loop; `next()`
    /// is then a plain buffer read, as cheap as slice iteration.
    buf: Vec<EventRef>,
    buf_i: usize,
}

/// Events decoded per [`TraceCursor`] refill. 256 × ~32 B ≈ 8 KB — hot in
/// L1 next to the replay loop's own state.
const CURSOR_BATCH: usize = 256;

/// Consumes the next little-endian `u64` from the front of a column.
/// [`PackedTrace::validate`] proved every column holds exactly as many
/// entries as the tag stream demands, so the split never fails on a
/// validated trace.
#[inline]
fn take_u64(col: &mut &[u8]) -> u64 {
    let (head, tail) = col.split_at(8);
    *col = tail;
    u64::from_le_bytes(head.try_into().unwrap())
}

/// Consumes the next little-endian `u32` from the front of a column.
#[inline]
fn take_u32(col: &mut &[u8]) -> u32 {
    let (head, tail) = col.split_at(4);
    *col = tail;
    u32::from_le_bytes(head.try_into().unwrap())
}

impl TraceCursor<'_> {
    /// Decodes the next batch of events into the read-ahead buffer.
    fn refill(&mut self) {
        self.buf.clear();
        self.buf_i = 0;
        let (batch, rest) = self.tags.split_at(self.tags.len().min(CURSOR_BATCH));
        self.tags = rest;
        // Local copies so the decode loop's state lives in registers.
        let (mut pcs, mut deltas) = (self.pcs, self.addr_deltas);
        let (mut alus, mut blocks) = (self.alu_counts, self.block_ids);
        let mut prev_addr = self.prev_addr;
        for &tag in batch {
            self.buf.push(match tag & VARIANT_MASK {
                TAG_ALU => TraceEvent::Alu {
                    pc: Pc(take_u64(&mut pcs)),
                    count: take_u32(&mut alus),
                },
                TAG_MEM => {
                    let pc = Pc(take_u64(&mut pcs));
                    let delta = take_u64(&mut deltas);
                    prev_addr = prev_addr.wrapping_add(delta);
                    TraceEvent::Mem(MemAccess {
                        pc,
                        addr: Addr(prev_addr),
                        kind: if tag & FLAG_STORE != 0 {
                            MemKind::Store
                        } else {
                            MemKind::Load
                        },
                        dep: if tag & FLAG_DEP_PREV_LOAD != 0 {
                            Dependence::PrevLoad
                        } else {
                            Dependence::None
                        },
                    })
                }
                TAG_BRANCH => TraceEvent::Branch(BranchRecord {
                    pc: Pc(take_u64(&mut pcs)),
                    taken: tag & FLAG_TAKEN != 0,
                }),
                TAG_BLOCK_BEGIN => TraceEvent::BlockBegin {
                    id: BlockId(take_u32(&mut blocks)),
                },
                // Validation admits exactly five variants; BlockEnd is last.
                _ => TraceEvent::BlockEnd {
                    id: BlockId(take_u32(&mut blocks)),
                },
            });
        }
        (self.pcs, self.addr_deltas) = (pcs, deltas);
        (self.alu_counts, self.block_ids) = (alus, blocks);
        self.prev_addr = prev_addr;
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = EventRef;

    #[inline]
    fn next(&mut self) -> Option<EventRef> {
        if self.buf_i == self.buf.len() {
            if self.tags.is_empty() {
                return None;
            }
            self.refill();
        }
        let e = self.buf[self.buf_i];
        self.buf_i += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.tags.len() + (self.buf.len() - self.buf_i);
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceCursor<'_> {}

impl EventCursor for TraceCursor<'_> {
    #[inline]
    fn next_batch(&mut self) -> Option<&[EventRef]> {
        if self.buf_i < self.buf.len() {
            // Events already decoded but not yet taken via `next()`.
            let chunk = &self.buf[self.buf_i..];
            self.buf_i = self.buf.len();
            return Some(chunk);
        }
        if self.tags.is_empty() {
            return None;
        }
        self.refill();
        self.buf_i = self.buf.len();
        Some(&self.buf[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0x100), 7);
        b.annotated_loop(BlockId(3), 5, |b, i| {
            b.load(Pc(0x200), Addr(0x4000 + i * 4096));
            b.load_dep(Pc(0x204), Addr(0x900_0000 - i * 64));
            b.store(Pc(0x208), Addr(i * 128));
            b.alu(Pc(0x20c), 3);
        });
        b.branch(Pc(0x300), true);
        b.finish()
    }

    #[test]
    fn round_trip_is_lossless() {
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        assert_eq!(packed.to_trace(), trace);
        assert_eq!(packed.event_count(), trace.len());
        assert_eq!(packed.stats(), trace.stats());
    }

    #[test]
    fn cursor_matches_slice_iteration() {
        let trace = sample();
        let packed = PackedTrace::from_trace(&trace);
        let decoded: Vec<TraceEvent> = packed.cursor().collect();
        assert_eq!(decoded.as_slice(), trace.events());
        // The EventSource impls agree too.
        let via_trait: Vec<TraceEvent> = EventSource::cursor(&packed).collect();
        let via_trace: Vec<TraceEvent> = EventSource::cursor(&trace).collect();
        assert_eq!(via_trait, via_trace);
        assert_eq!(
            EventSource::event_count(&packed),
            EventSource::event_count(&trace)
        );
    }

    #[test]
    fn batched_cursor_matches_slice_iteration() {
        // A trace longer than one decode batch, so next_batch() yields
        // several chunks from the packed cursor.
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(1), 200, |b, i| {
            b.load(Pc(0x200), Addr(0x4000 + i * 64));
            b.alu(Pc(0x204), 2);
            b.branch(Pc(0x208), i % 3 == 0);
        });
        let trace = b.finish();
        let packed = PackedTrace::from_trace(&trace);

        for_both_reprs(&trace, &packed, |cursor| {
            let mut batched = Vec::new();
            while let Some(chunk) = cursor.next_batch() {
                assert!(!chunk.is_empty(), "next_batch yielded an empty chunk");
                batched.extend_from_slice(chunk);
            }
            assert_eq!(cursor.next_batch(), None, "exhausted cursor must stay dry");
            assert_eq!(batched.as_slice(), trace.events());
        });

        // Mixing next() and next_batch(): events already decoded but not
        // yet taken must appear in the following batch exactly once.
        for_both_reprs(&trace, &packed, |cursor| {
            let mut seen = vec![cursor.next().unwrap(), cursor.next().unwrap()];
            while let Some(chunk) = cursor.next_batch() {
                seen.extend_from_slice(chunk);
            }
            assert_eq!(seen.as_slice(), trace.events());
        });
    }

    /// Runs `check` against a fresh cursor of each representation.
    fn for_both_reprs(
        trace: &Trace,
        packed: &PackedTrace,
        mut check: impl FnMut(&mut dyn EventCursor),
    ) {
        check(&mut EventSource::cursor(trace));
        check(&mut EventSource::cursor(packed));
    }

    #[test]
    fn payload_parses_back() {
        let packed = PackedTrace::from_trace(&sample());
        let bytes: Box<[u8]> = packed.payload().into();
        let reparsed = PackedTrace::from_payload(bytes).unwrap();
        assert_eq!(reparsed, packed);
        assert_eq!(reparsed.to_trace(), sample());
    }

    #[test]
    fn shared_payload_is_zero_copy_view() {
        let packed = PackedTrace::from_trace(&sample());
        let mut framed = vec![0xAA; 3]; // leading junk the view must skip
        framed.extend_from_slice(packed.payload());
        framed.extend_from_slice(&[0xBB; 5]);
        let len = packed.payload().len();
        let shared: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(framed);
        let view = PackedTrace::from_shared_payload(shared, 3, len).unwrap();
        assert_eq!(view, packed);
        assert_eq!(view.to_trace(), sample());
    }

    #[test]
    fn shared_payload_out_of_bounds_is_error() {
        let shared: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(vec![0u8; 16]);
        assert!(matches!(
            PackedTrace::from_shared_payload(shared, 8, 16),
            Err(PackedError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_trace_packs() {
        let packed = PackedTrace::from_trace(&Trace::default());
        assert!(packed.is_empty());
        assert_eq!(packed.payload().len(), HEADER_BYTES);
        assert_eq!(packed.to_trace(), Trace::default());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let packed = PackedTrace::from_trace(&sample());
        let bytes = packed.payload();
        for cut in [0, HEADER_BYTES - 1, bytes.len() - 1] {
            let r = PackedTrace::from_payload(bytes[..cut].into());
            assert!(matches!(r, Err(PackedError::Truncated { .. })), "cut {cut}");
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let packed = PackedTrace::from_trace(&sample());
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        bytes[HEADER_BYTES] = 0x07; // variant 7 does not exist
        assert!(matches!(
            PackedTrace::from_payload(bytes.clone().into_boxed_slice()),
            Err(PackedError::BadTag { index: 0, .. })
        ));
        bytes[HEADER_BYTES] = TAG_ALU | FLAG_STORE; // illegal flag for ALU
        assert!(matches!(
            PackedTrace::from_payload(bytes.into_boxed_slice()),
            Err(PackedError::BadTag { index: 0, .. })
        ));
    }

    #[test]
    fn count_mismatch_is_rejected() {
        // Claim one branch event but write a mem tag: addr_deltas column
        // length disagrees with the tag stream.
        let trace = Trace::from_events(vec![TraceEvent::Branch(BranchRecord {
            pc: Pc(0),
            taken: false,
        })]);
        let packed = PackedTrace::from_trace(&trace);
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        bytes[HEADER_BYTES] = TAG_MEM;
        let r = PackedTrace::from_payload(bytes.into_boxed_slice());
        assert!(matches!(r, Err(PackedError::CountMismatch { .. })), "{r:?}");
    }

    #[test]
    fn delta_encoding_survives_extreme_addresses() {
        let mut b = TraceBuilder::new();
        b.load(Pc(0), Addr(u64::MAX));
        b.load(Pc(4), Addr(0));
        b.load(Pc(8), Addr(u64::MAX / 2));
        b.store(Pc(12), Addr(u64::MAX));
        let trace = b.finish();
        assert_eq!(PackedTrace::from_trace(&trace).to_trace(), trace);
    }
}
