//! Property tests for the packed columnar trace format: lossless
//! round-tripping, cursor/slice iteration equivalence, and robustness of
//! the payload parser against arbitrary and mutated byte buffers.

use cbws_trace::{
    fnv1a, Addr, BlockId, BranchRecord, Dependence, EventCursor, FrameEntry, MemAccess, MemKind,
    PackedTrace, Pc, StreamedTrace, Trace, TraceEvent,
};
use proptest::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (0u32..64).prop_map(|id| TraceEvent::BlockBegin { id: BlockId(id) }),
        (0u32..64).prop_map(|id| TraceEvent::BlockEnd { id: BlockId(id) }),
        (any::<u64>(), any::<u32>()).prop_map(|(pc, count)| TraceEvent::Alu { pc: Pc(pc), count }),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
            |(pc, addr, store, dep)| {
                TraceEvent::Mem(MemAccess {
                    pc: Pc(pc),
                    addr: Addr(addr),
                    kind: if store { MemKind::Store } else { MemKind::Load },
                    dep: if dep {
                        Dependence::PrevLoad
                    } else {
                        Dependence::None
                    },
                })
            }
        ),
        (any::<u64>(), any::<bool>())
            .prop_map(|(pc, taken)| TraceEvent::Branch(BranchRecord { pc: Pc(pc), taken })),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(event_strategy(), 0..300).prop_map(Trace::from_events)
}

/// Event counts straddling the interesting boundaries of the streamed
/// replay path: empty, single event, one less / exactly / one more than a
/// whole number of frames (and, with `frame_events = 256`, the decode
/// batch size ± 1 as well).
fn boundary_lens(frame_events: usize) -> [usize; 8] {
    [
        0,
        1,
        frame_events - 1,
        frame_events,
        frame_events + 1,
        3 * frame_events - 1,
        3 * frame_events,
        3 * frame_events + 1,
    ]
}

/// A unique scratch path for one framed-file test case.
fn scratch_file(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "cbws-packed-prop-{tag}-{}-{}.frames",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Packs `events` into frames of `frame_events`, writes the payloads back
/// to back into a scratch file (with `lead` junk bytes first, mimicking the
/// store header), and returns the streamed handle plus the file path.
fn write_framed(
    events: &[TraceEvent],
    frame_events: usize,
    lead: usize,
    tag: &str,
) -> (StreamedTrace, PathBuf) {
    let path = scratch_file(tag);
    let mut file = std::fs::File::create(&path).expect("create scratch frame file");
    file.write_all(&vec![0xa5u8; lead]).expect("lead bytes");
    let mut entries = Vec::new();
    let mut offset = lead as u64;
    for chunk in events.chunks(frame_events.max(1)) {
        let packed = PackedTrace::from_trace(&Trace::from_events(chunk.to_vec()));
        let payload = packed.payload();
        file.write_all(payload).expect("frame payload");
        entries.push(FrameEntry {
            offset,
            len: payload.len() as u64,
            events: chunk.len() as u64,
            checksum: fnv1a(payload),
        });
        offset += payload.len() as u64;
    }
    drop(file);
    (
        StreamedTrace::new(path.clone(), entries, events.len()),
        path,
    )
}

proptest! {
    /// `Trace → PackedTrace → Trace` is the identity, including full-range
    /// addresses (the delta encoding must wrap losslessly) and stats.
    #[test]
    fn pack_round_trip_is_lossless(trace in trace_strategy()) {
        let packed = PackedTrace::from_trace(&trace);
        prop_assert_eq!(packed.event_count(), trace.len());
        prop_assert_eq!(packed.to_trace(), trace.clone());
        prop_assert_eq!(packed.stats(), trace.stats());
    }

    /// The cursor yields exactly the `Vec<TraceEvent>` sequence, event for
    /// event, and reports an exact length.
    #[test]
    fn cursor_matches_vec_iteration(trace in trace_strategy()) {
        let packed = PackedTrace::from_trace(&trace);
        let mut cursor = packed.cursor();
        prop_assert_eq!(cursor.len(), trace.len());
        for (i, expect) in trace.events().iter().enumerate() {
            let got = cursor.next();
            prop_assert_eq!(got, Some(*expect), "event {}", i);
        }
        prop_assert_eq!(cursor.next(), None);
    }

    /// A payload survives serialization: parsing its own bytes back yields
    /// an equal trace.
    #[test]
    fn payload_parses_back(trace in trace_strategy()) {
        let packed = PackedTrace::from_trace(&trace);
        let reparsed = PackedTrace::from_payload(packed.payload().into())
            .expect("self-produced payload parses");
        prop_assert_eq!(reparsed.to_trace(), trace);
    }

    /// Arbitrary garbage never panics the parser: it either parses (and
    /// then the cursor can walk every event without panicking) or is
    /// rejected with an error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(packed) = PackedTrace::from_payload(bytes.into_boxed_slice()) {
            prop_assert_eq!(packed.cursor().count(), packed.event_count());
        }
    }

    /// The disk-backed `FileCursor` is record-identical to the in-memory
    /// `TraceCursor` and `SliceCursor` at every interesting boundary:
    /// empty traces, one event, frame size ± 1, and decode batch size ± 1
    /// (`frame_events = 256` puts the 255/256/257 lengths right on the
    /// cursor's internal batch boundary). Both the event-at-a-time and the
    /// batch interfaces must agree.
    #[test]
    fn file_cursor_is_record_identical_at_boundaries(
        pool in proptest::collection::vec(event_strategy(), 769..770),
        pick in 0usize..16,
    ) {
        // 769 = 3 * 256 + 1, the largest boundary length below.
        let frame_events = if pick < 8 { 16 } else { 256 };
        let events = &pool[..boundary_lens(frame_events)[pick % 8]];
        let (streamed, path) = write_framed(events, frame_events, 31, "ident");
        // Event-at-a-time: identical to the source Vec (and therefore to
        // SliceCursor, which yields exactly that Vec).
        let via_next: Vec<TraceEvent> = streamed.cursor().collect();
        prop_assert_eq!(&via_next[..], events);
        // Batch interface: concatenation of batches is the same sequence
        // the unframed TraceCursor produces.
        let mut via_batch: Vec<TraceEvent> = Vec::new();
        let mut cursor = streamed.cursor();
        while let Some(batch) = cursor.next_batch() {
            via_batch.extend_from_slice(batch);
        }
        drop(cursor);
        let unframed = PackedTrace::from_trace(&Trace::from_events(events.to_vec()));
        let reference: Vec<TraceEvent> = unframed.cursor().collect();
        prop_assert_eq!(&via_batch, &reference);
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single bit of any frame payload on disk is caught
    /// during streamed replay: the per-frame FNV-1a checksum changes under
    /// any one-byte mutation (every fold step is bijective), so the cursor
    /// panics instead of silently replaying corrupt events. The trace
    /// store turns that detection into invalidate-and-regenerate; see the
    /// `cbws-workloads` store tests.
    #[test]
    fn file_cursor_detects_single_bit_corruption(
        events in proptest::collection::vec(event_strategy(), 1..120),
        frame_events in 1usize..40,
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let lead = 31usize;
        let (streamed, path) = write_framed(&events, frame_events, lead, "corrupt");
        let mut bytes = std::fs::read(&path).expect("read framed file");
        // Flip a bit somewhere inside the frame payloads (past the lead).
        let at = lead + pos % (bytes.len() - lead);
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("write corrupted file");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            streamed.cursor().count()
        }));
        prop_assert!(outcome.is_err(), "corruption at byte {} must be detected", at);
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping a single bit of a valid payload never panics: either the
    /// parser rejects the buffer, or it still parses (e.g. the flip landed
    /// in an address) and the cursor walks it cleanly. Store-level
    /// checksums are what detect the silent case; see the trace-store
    /// corruption proptests in `cbws-workloads`.
    #[test]
    fn bit_flips_never_panic(trace in trace_strategy(), pos in any::<usize>(), bit in 0u8..8) {
        let packed = PackedTrace::from_trace(&trace);
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        if let Ok(mutated) = PackedTrace::from_payload(bytes.into_boxed_slice()) {
            prop_assert_eq!(mutated.cursor().count(), mutated.event_count());
        }
    }
}
