//! Property tests for the packed columnar trace format: lossless
//! round-tripping, cursor/slice iteration equivalence, and robustness of
//! the payload parser against arbitrary and mutated byte buffers.

use cbws_trace::{
    Addr, BlockId, BranchRecord, Dependence, MemAccess, MemKind, PackedTrace, Pc, Trace, TraceEvent,
};
use proptest::prelude::*;

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (0u32..64).prop_map(|id| TraceEvent::BlockBegin { id: BlockId(id) }),
        (0u32..64).prop_map(|id| TraceEvent::BlockEnd { id: BlockId(id) }),
        (any::<u64>(), any::<u32>()).prop_map(|(pc, count)| TraceEvent::Alu { pc: Pc(pc), count }),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
            |(pc, addr, store, dep)| {
                TraceEvent::Mem(MemAccess {
                    pc: Pc(pc),
                    addr: Addr(addr),
                    kind: if store { MemKind::Store } else { MemKind::Load },
                    dep: if dep {
                        Dependence::PrevLoad
                    } else {
                        Dependence::None
                    },
                })
            }
        ),
        (any::<u64>(), any::<bool>())
            .prop_map(|(pc, taken)| TraceEvent::Branch(BranchRecord { pc: Pc(pc), taken })),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(event_strategy(), 0..300).prop_map(Trace::from_events)
}

proptest! {
    /// `Trace → PackedTrace → Trace` is the identity, including full-range
    /// addresses (the delta encoding must wrap losslessly) and stats.
    #[test]
    fn pack_round_trip_is_lossless(trace in trace_strategy()) {
        let packed = PackedTrace::from_trace(&trace);
        prop_assert_eq!(packed.event_count(), trace.len());
        prop_assert_eq!(packed.to_trace(), trace.clone());
        prop_assert_eq!(packed.stats(), trace.stats());
    }

    /// The cursor yields exactly the `Vec<TraceEvent>` sequence, event for
    /// event, and reports an exact length.
    #[test]
    fn cursor_matches_vec_iteration(trace in trace_strategy()) {
        let packed = PackedTrace::from_trace(&trace);
        let mut cursor = packed.cursor();
        prop_assert_eq!(cursor.len(), trace.len());
        for (i, expect) in trace.events().iter().enumerate() {
            let got = cursor.next();
            prop_assert_eq!(got, Some(*expect), "event {}", i);
        }
        prop_assert_eq!(cursor.next(), None);
    }

    /// A payload survives serialization: parsing its own bytes back yields
    /// an equal trace.
    #[test]
    fn payload_parses_back(trace in trace_strategy()) {
        let packed = PackedTrace::from_trace(&trace);
        let reparsed = PackedTrace::from_payload(packed.payload().into())
            .expect("self-produced payload parses");
        prop_assert_eq!(reparsed.to_trace(), trace);
    }

    /// Arbitrary garbage never panics the parser: it either parses (and
    /// then the cursor can walk every event without panicking) or is
    /// rejected with an error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(packed) = PackedTrace::from_payload(bytes.into_boxed_slice()) {
            prop_assert_eq!(packed.cursor().count(), packed.event_count());
        }
    }

    /// Flipping a single bit of a valid payload never panics: either the
    /// parser rejects the buffer, or it still parses (e.g. the flip landed
    /// in an address) and the cursor walks it cleanly. Store-level
    /// checksums are what detect the silent case; see the trace-store
    /// corruption proptests in `cbws-workloads`.
    #[test]
    fn bit_flips_never_panic(trace in trace_strategy(), pos in any::<usize>(), bit in 0u8..8) {
        let packed = PackedTrace::from_trace(&trace);
        let mut bytes: Vec<u8> = packed.payload().to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        if let Ok(mutated) = PackedTrace::from_payload(bytes.into_boxed_slice()) {
            prop_assert_eq!(mutated.cursor().count(), mutated.event_count());
        }
    }
}
