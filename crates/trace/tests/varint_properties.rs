//! Property tests for the varint lane coder: the batched decoder must be
//! indistinguishable from the scalar reference on arbitrary lanes,
//! including the all-one-byte case (every word takes the 8-wide fast
//! path) and the all-max-width case (every entry is 10 bytes and the
//! fast path never fires).

use cbws_trace::varint;
use proptest::prelude::*;

fn lane_of(values: &[u64]) -> Vec<u8> {
    let mut lane = Vec::new();
    for &v in values {
        varint::encode(v, &mut lane);
    }
    lane
}

fn decode_with(lane: &[u8], n: usize, batched: bool) -> Vec<u64> {
    let mut out = vec![0u64; n];
    let mut rest = lane;
    if batched {
        varint::decode_batch(&mut rest, &mut out);
    } else {
        varint::decode_batch_scalar(&mut rest, &mut out);
    }
    assert!(rest.is_empty(), "lane not fully consumed");
    out
}

/// Mixed-width values: bias toward the one-byte range the trace lanes
/// mostly hold, with full-range outliers mixed in.
fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..128,
            0u64..128, // one-byte range weighted up, as in real lanes
            0u64..65536,
            any::<u64>(),
        ],
        0..600,
    )
}

proptest! {
    /// encode → decode is the identity through both kernels, and both
    /// kernels agree byte for byte.
    #[test]
    fn batched_decode_matches_scalar(values in values_strategy()) {
        let lane = lane_of(&values);
        prop_assert_eq!(varint::count_entries(&lane), Some(values.len()));
        prop_assert_eq!(decode_with(&lane, values.len(), false), values.clone());
        prop_assert_eq!(decode_with(&lane, values.len(), true), values);
    }

    /// All-one-byte lanes: every 8-entry group takes the word-at-a-time
    /// fast path, and partial decodes leave the lane positioned exactly
    /// where the scalar decoder would.
    #[test]
    fn all_one_byte_lanes_agree(values in proptest::collection::vec(0u64..128, 0..600),
                                 split in 0usize..600) {
        let lane = lane_of(&values);
        let split = split.min(values.len());
        // Decode in two batches of arbitrary split, as the cursor does.
        let mut out = vec![0u64; values.len()];
        let mut rest: &[u8] = &lane;
        varint::decode_batch(&mut rest, &mut out[..split]);
        varint::decode_batch(&mut rest, &mut out[split..]);
        prop_assert!(rest.is_empty());
        prop_assert_eq!(out, values);
    }

    /// All-max-width lanes (10 bytes per entry): the fast path never
    /// fires and the scalar fallback must still agree.
    #[test]
    fn all_max_width_lanes_agree(values in proptest::collection::vec(
        any::<u64>().prop_map(|v| v | 1 << 63), 0..64))
    {
        let lane = lane_of(&values);
        prop_assert_eq!(lane.len(), values.len() * varint::MAX_LEN);
        prop_assert_eq!(decode_with(&lane, values.len(), true),
                        decode_with(&lane, values.len(), false));
    }

    /// Zigzag folding round-trips every i64.
    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(varint::unzigzag(varint::zigzag(v)), v);
    }

    /// `count_entries` accepts exactly the lanes `encode` produces and
    /// counts them correctly even after arbitrary concatenation.
    #[test]
    fn count_entries_matches_encoder(values in values_strategy()) {
        let lane = lane_of(&values);
        prop_assert_eq!(varint::count_entries(&lane), Some(values.len()));
        // Truncating inside a multi-byte entry must be rejected.
        if let Some(&last) = lane.last() {
            let _ = last;
            let mut cut = lane.clone();
            cut.push(0x80); // dangling continuation byte
            prop_assert_eq!(varint::count_entries(&cut), None);
        }
    }
}
