//! Property tests for the trace builder's structural invariants.

use cbws_trace::{Addr, BlockId, Pc, TraceBuilder, TraceEvent};
use proptest::prelude::*;

/// A random builder operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Begin(u32),
    End(u32),
    Load(u64),
    Store(u64),
    Alu(u32),
    Branch(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4).prop_map(Op::Begin),
        (0u32..4).prop_map(Op::End),
        (0u64..1 << 20).prop_map(Op::Load),
        (0u64..1 << 20).prop_map(Op::Store),
        (0u32..10).prop_map(Op::Alu),
        any::<bool>().prop_map(Op::Branch),
    ]
}

proptest! {
    /// Whatever sequence of checked operations is attempted, a finished
    /// trace always has balanced, non-nested block markers and matching
    /// static/dynamic block accounting.
    #[test]
    fn blocks_always_balanced(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut b = TraceBuilder::new();
        let mut open: Option<u32> = None;
        for op in ops {
            match op {
                Op::Begin(id) => {
                    let r = b.try_begin_block(BlockId(id));
                    prop_assert_eq!(r.is_ok(), open.is_none());
                    if r.is_ok() {
                        open = Some(id);
                    }
                }
                Op::End(id) => {
                    let r = b.try_end_block(BlockId(id));
                    prop_assert_eq!(r.is_ok(), open == Some(id));
                    if r.is_ok() {
                        open = None;
                    }
                }
                Op::Load(a) => b.load(Pc(0x10), Addr(a)),
                Op::Store(a) => b.store(Pc(0x14), Addr(a)),
                Op::Alu(n) => b.alu(Pc(0x18), n),
                Op::Branch(t) => b.branch(Pc(0x1c), t),
            }
        }
        if let Some(id) = open {
            b.try_end_block(BlockId(id)).expect("open block closes cleanly");
        }
        let trace = b.try_finish().expect("balanced by construction");
        let mut depth = 0i32;
        for e in &trace {
            match e {
                TraceEvent::BlockBegin { .. } => {
                    depth += 1;
                    prop_assert!(depth <= 1, "blocks must not nest");
                }
                TraceEvent::BlockEnd { .. } => {
                    depth -= 1;
                    prop_assert!(depth >= 0, "unmatched end");
                }
                _ => {}
            }
        }
        prop_assert_eq!(depth, 0);
        let s = trace.stats();
        let begins = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::BlockBegin { .. }))
            .count() as u64;
        prop_assert_eq!(s.dynamic_blocks, begins);
    }

    /// Instruction accounting: stats.instructions equals the sum of
    /// per-event instruction counts, and loads + stores = mem_accesses.
    #[test]
    fn instruction_accounting_consistent(
        loads in 0u32..50, stores in 0u32..50, alus in 0u32..50
    ) {
        let mut b = TraceBuilder::new();
        for i in 0..loads {
            b.load(Pc(0), Addr(u64::from(i) * 64));
        }
        for i in 0..stores {
            b.store(Pc(4), Addr(u64::from(i) * 64));
        }
        b.alu(Pc(8), alus);
        let trace = b.finish();
        let s = trace.stats();
        prop_assert_eq!(s.loads, u64::from(loads));
        prop_assert_eq!(s.stores, u64::from(stores));
        prop_assert_eq!(s.mem_accesses, u64::from(loads + stores));
        prop_assert_eq!(s.instructions, u64::from(loads + stores + alus));
        let by_events: u64 = trace.iter().map(TraceEvent::instructions).sum();
        prop_assert_eq!(s.instructions, by_events);
    }

    /// `annotated_loop` emits exactly one begin/end pair and one
    /// back-branch per iteration, with the exit branch not-taken.
    #[test]
    fn annotated_loop_shape(iters in 1u64..40, body_loads in 0u64..6) {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(0), iters, |b, i| {
            for k in 0..body_loads {
                b.load(Pc(0x100 + k), Addr(i * 4096 + k * 64));
            }
        });
        let trace = b.finish();
        let s = trace.stats();
        prop_assert_eq!(s.dynamic_blocks, iters);
        prop_assert_eq!(s.branches, iters);
        prop_assert_eq!(s.mem_accesses, iters * body_loads);
        let last_branch = trace
            .iter()
            .rev()
            .find_map(|e| match e {
                TraceEvent::Branch(br) => Some(br.taken),
                _ => None,
            })
            .expect("loop has branches");
        prop_assert!(!last_branch, "exit branch must be not-taken");
    }
}
