//! Serde round-trip tests: traces and their statistics are data structures
//! (C-SERDE) and must survive serialization losslessly, so captured traces
//! can be stored and replayed.

use cbws_trace::{Addr, BlockId, Pc, Trace, TraceBuilder, TraceStats};

fn sample_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.alu(Pc(0), 5);
    b.annotated_loop(BlockId(3), 4, |b, i| {
        b.load(Pc(0x10), Addr(i * 4096));
        b.load_dep(Pc(0x14), Addr(i * 4096 + 64));
        b.store(Pc(0x18), Addr(i * 4096 + 128));
    });
    b.branch(Pc(0x20), true);
    b.finish()
}

#[test]
fn trace_json_roundtrip() {
    let trace = sample_trace();
    let json = serde_json::to_string(&trace).expect("serialize");
    let back: Trace = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(trace, back);
    assert_eq!(trace.stats(), back.stats());
}

#[test]
fn stats_json_roundtrip() {
    let stats = sample_trace().stats();
    let json = serde_json::to_string(&stats).expect("serialize");
    let back: TraceStats = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(stats, back);
}

#[test]
fn replayed_trace_is_equivalent_downstream() {
    // A deserialized trace must drive the rest of the pipeline identically;
    // equality of the event sequence guarantees it, checked element-wise.
    let trace = sample_trace();
    let back: Trace = serde_json::from_str(&serde_json::to_string(&trace).unwrap()).unwrap();
    for (a, b) in trace.iter().zip(back.iter()) {
        assert_eq!(a, b);
    }
    assert_eq!(trace.len(), back.len());
}
