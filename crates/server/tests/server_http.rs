//! End-to-end tests over real sockets: a server on an ephemeral port,
//! raw HTTP/1.1 clients, and the acceptance guarantees of the service —
//! streamed records byte-identical to the CLI engine's, repeat sweeps
//! served from the result store, bounded-queue 429s, deadline
//! cancellation, quota enforcement, and trace upload.

use cbws_harness::result_store::ResultStore;
use cbws_harness::{PrefetcherKind, ResultCache, Simulator, SweepSession, SweepSpec, SystemConfig};
use cbws_server::{Server, ServerConfig};
use cbws_telemetry::{Spans, Telemetry};
use cbws_workloads::Scale;
use serde::Value;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique per-test scratch directory (no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cbws-server-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns a server with enabled telemetry and a scratch result store.
fn test_server(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let store = Arc::new(ResultStore::at(scratch_dir(tag)));
    let mut config = ServerConfig {
        telemetry: Telemetry::enabled(64),
        spans: Spans::enabled(),
        result_cache: ResultCache::At(store),
        ..ServerConfig::default()
    };
    tweak(&mut config);
    Server::spawn(config).expect("ephemeral bind succeeds")
}

/// Sends one raw request, reads the whole (close-delimited) response,
/// and returns `(status, body)`.
fn roundtrip(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    roundtrip(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str, client: Option<&str>) -> (u16, String) {
    let id_header = client
        .map(|c| format!("X-Client-Id: {c}\r\n"))
        .unwrap_or_default();
    roundtrip(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\n{id_header}Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Follows a dotted path through nested JSON objects.
fn field<'v>(v: &'v Value, path: &str) -> &'v Value {
    path.split('.').fold(v, |v, key| {
        v.get(key)
            .unwrap_or_else(|| panic!("no `{key}` of `{path}` in {v:?}"))
    })
}

fn uint(v: &Value, path: &str) -> u64 {
    field(v, path).as_u64().expect("integer field")
}

fn boolean(v: &Value, path: &str) -> bool {
    match field(v, path) {
        Value::Bool(b) => *b,
        other => panic!("`{path}` is not a bool: {other:?}"),
    }
}

/// Splits a JSONL sweep response into record lines and the parsed
/// summary object of the final line.
fn split_stream(body: &str) -> (Vec<&str>, Value) {
    let lines: Vec<&str> = body.lines().collect();
    let (summary_line, records) = lines.split_last().expect("at least the summary line");
    let summary: Value = serde_json::from_str(summary_line).expect("summary parses");
    assert!(
        summary.get("summary").is_some(),
        "last line is the summary: {summary_line}"
    );
    (records.to_vec(), summary)
}

#[test]
fn plumbing_routes_respond_and_errors_map_to_statuses() {
    let server = test_server("plumbing", |_| {});
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(field(&health, "status").as_str(), Some("ok"));
    assert_eq!(uint(&health, "queue_capacity"), 8);

    let (status, body) = get(addr, "/v1/workloads");
    assert_eq!(status, 200);
    let listing: Value = serde_json::from_str(&body).unwrap();
    assert!(body.contains("stencil-default"));
    assert!(body.contains("CBWS+SMS"));
    let workloads = field(&listing, "workloads").as_array().unwrap();
    assert!(workloads.len() >= 30, "registry lists {}", workloads.len());

    // Unknown route: 404 naming the real ones.
    let (status, body) = get(addr, "/v2/nope");
    assert_eq!(status, 404);
    assert!(body.contains("/v1/sweep"), "{body}");

    // Wrong method on a known path: 405.
    let (status, _) = get(addr, "/v1/sweep");
    assert_eq!(status, 405);

    // Bad spec: 400 naming the offending input.
    let (status, body) = post(addr, "/v1/sweep", r#"{"workloads":["warp-core"]}"#, None);
    assert_eq!(status, 400);
    assert!(body.contains("warp-core"), "{body}");

    // Those errors all count into server.* metrics.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(uint(&metrics, "server.errors"), 3);
    assert!(uint(&metrics, "server.requests") >= 5);
    server.shutdown();
}

#[test]
fn full_matrix_sweep_is_cli_identical_and_repeat_is_all_store_hits() {
    let server = test_server("matrix", |_| {});
    let addr = server.addr();

    // What the CLI engine produces for the same matrix (store off: these
    // records come straight from simulation).
    let spec = SweepSpec::full_matrix(Scale::Tiny, 0);
    let expected: Vec<String> = SweepSession::default()
        .run("cli", &spec, None)
        .run
        .records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();

    // Cold sweep over HTTP: every record line byte-identical, in the
    // same serial order; nothing served from the (empty) store.
    let (status, body) = post(addr, "/v1/sweep", r#"{"scale":"tiny"}"#, Some("alice"));
    assert_eq!(status, 200);
    let (records, summary) = split_stream(&body);
    assert_eq!(records.len(), expected.len());
    for (got, want) in records.iter().zip(&expected) {
        assert_eq!(got, want, "streamed record differs from the CLI engine's");
    }
    assert_eq!(uint(&summary, "summary.jobs"), expected.len() as u64);
    assert_eq!(uint(&summary, "summary.cached"), 0);
    assert!(!boolean(&summary, "summary.cancelled"));
    assert!(boolean(&summary, "summary.store_writes"));
    assert!(uint(&summary, "summary.store_write_bytes") > 0);

    // Warm sweep: same bytes again, now served entirely from the store.
    let (status, body) = post(addr, "/v1/sweep", r#"{"scale":"tiny"}"#, Some("alice"));
    assert_eq!(status, 200);
    let (records, summary) = split_stream(&body);
    assert_eq!(
        records,
        expected.iter().map(String::as_str).collect::<Vec<_>>()
    );
    assert_eq!(uint(&summary, "summary.cached"), expected.len() as u64);
    assert_eq!(uint(&summary, "summary.store_write_bytes"), 0);

    // The metrics endpoint agrees: one hit per job of the second sweep.
    let (_, body) = get(addr, "/metrics");
    let metrics: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(uint(&metrics, "result_store.hit"), expected.len() as u64);
    assert_eq!(uint(&metrics, "server.sweeps"), 2);
    assert_eq!(
        uint(&metrics, "server.records_streamed"),
        2 * expected.len() as u64
    );
    server.shutdown();
}

#[test]
fn queue_full_answers_429_without_blocking() {
    let server = test_server("queue", |c| c.queue_capacity = 1);
    let addr = server.addr();
    // Occupy the only slot directly through the state handle — the
    // deterministic stand-in for a long sweep being served.
    let ticket = server.state().queue.admit().unwrap();
    let (status, body) = post(
        addr,
        "/v1/sweep",
        r#"{"workloads":["stencil-default"],"prefetchers":["SMS"],"scale":"tiny"}"#,
        None,
    );
    assert_eq!(status, 429);
    assert!(body.contains("queue full"), "{body}");
    drop(ticket);

    // Slot free again: the same request now runs.
    let (status, body) = post(
        addr,
        "/v1/sweep",
        r#"{"workloads":["stencil-default"],"prefetchers":["SMS"],"scale":"tiny"}"#,
        None,
    );
    assert_eq!(status, 200);
    let (records, _) = split_stream(&body);
    assert_eq!(records.len(), 1);

    let (_, body) = get(addr, "/metrics");
    let metrics: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(uint(&metrics, "server.rejected"), 1);
    server.shutdown();
}

#[test]
fn expired_deadline_cancels_the_run_mid_sweep() {
    let server = test_server("timeout", |_| {});
    let addr = server.addr();
    // timeout_s: 0 expires the deadline before the first job completes;
    // jobs: 1 makes the cut deterministic (exactly one record escapes
    // before the observer pulls the plug).
    let (status, body) = post(
        addr,
        "/v1/sweep",
        r#"{"workloads":["stencil-default"],"scale":"tiny","jobs":1,"timeout_s":0}"#,
        None,
    );
    assert_eq!(status, 200);
    let (records, summary) = split_stream(&body);
    assert_eq!(records.len(), 1);
    assert!(boolean(&summary, "summary.cancelled"));
    assert!(boolean(&summary, "summary.timed_out"));
    assert_eq!(
        uint(&summary, "summary.jobs"),
        PrefetcherKind::ALL.len() as u64
    );

    let (_, body) = get(addr, "/metrics");
    let metrics: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(uint(&metrics, "server.timeouts"), 1);
    server.shutdown();
}

#[test]
fn over_quota_client_keeps_store_reads_but_stops_writing() {
    let server = test_server("quota", |c| c.client_quota_bytes = Some(1));
    let addr = server.addr();
    let body_spec = r#"{"workloads":["stencil-default"],"prefetchers":["SMS"],"scale":"tiny"}"#;

    // First sweep: under quota, writes land (and blow the 1-byte budget).
    let (status, body) = post(addr, "/v1/sweep", body_spec, Some("alice"));
    assert_eq!(status, 200);
    let (_, summary) = split_stream(&body);
    assert!(boolean(&summary, "summary.store_writes"));
    assert!(uint(&summary, "summary.store_write_bytes") > 1);

    // Second sweep, same client: reads still serve, writes are off.
    let (status, body) = post(addr, "/v1/sweep", body_spec, Some("alice"));
    assert_eq!(status, 200);
    let (_, summary) = split_stream(&body);
    assert!(!boolean(&summary, "summary.store_writes"));
    assert_eq!(
        uint(&summary, "summary.cached"),
        1,
        "store hit still serves"
    );

    // A different prefetcher misses the store; over quota, the fresh
    // record is computed and streamed but never persisted.
    let (status, body) = post(
        addr,
        "/v1/sweep",
        r#"{"workloads":["stencil-default"],"prefetchers":["CBWS+SMS"],"scale":"tiny"}"#,
        Some("alice"),
    );
    assert_eq!(status, 200);
    let (records, summary) = split_stream(&body);
    assert_eq!(records.len(), 1);
    assert_eq!(uint(&summary, "summary.store_write_bytes"), 0);

    // Fresh client: full write privileges.
    assert!(server.state().quota.allows_writes("bob"));
    server.shutdown();
}

#[test]
fn uploaded_trace_simulates_identically_to_direct_runs() {
    let server = test_server("trace", |_| {});
    let addr = server.addr();
    let workload = cbws_workloads::by_name("stencil-default").unwrap();
    let trace = workload.generate(Scale::Tiny);
    let trace_json = serde_json::to_string(&trace).unwrap();
    let (status, body) = post(
        addr,
        "/v1/trace",
        &format!(r#"{{"label":"uploaded","trace":{trace_json},"prefetchers":["SMS"]}}"#),
        None,
    );
    assert_eq!(status, 200);
    let response: Value = serde_json::from_str(&body).unwrap();
    let records = field(&response, "records").as_array().unwrap();
    assert_eq!(records.len(), 1);

    let direct =
        Simulator::new(SystemConfig::default()).run("uploaded", true, &trace, PrefetcherKind::Sms);
    assert_eq!(
        serde_json::to_string(&records[0]).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "uploaded-trace records match a direct simulation byte for byte"
    );
    assert_eq!(uint(&response, "instructions"), trace.stats().instructions);

    // Garbage uploads are a 400, not a hung connection.
    let (status, body) = post(addr, "/v1/trace", r#"{"prefetchers":["SMS"]}"#, None);
    assert_eq!(status, 400);
    assert!(body.contains("trace"), "{body}");
    server.shutdown();
}
