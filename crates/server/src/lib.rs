#![warn(missing_docs)]

//! Sweep-as-a-service: an HTTP front end for the simulation engine.
//!
//! The CLI binaries under `cbws-harness` regenerate the paper's figures
//! on the machine they run on. This crate exposes the same orchestration
//! — [`cbws_harness::service`] — over HTTP, so a shared box can serve
//! sweeps to many clients: submit a workload spec and watch records
//! stream back as JSONL, upload a trace for one-off simulation, or just
//! scrape `/metrics`.
//!
//! The design commitments, in order:
//!
//! - **Identical results.** A sweep over HTTP runs the exact engine the
//!   CLI runs, through the same [`cbws_harness::SweepSession`] — each
//!   streamed JSONL line is the serialized [`cbws_stats::RunRecord`] the
//!   CLI would have produced, byte for byte, in the same serial
//!   (workload-major) order.
//! - **Bounded admission.** A fixed-capacity FIFO [`queue::JobQueue`]
//!   fronts the engine; requests beyond capacity get an immediate 429.
//!   Admitted sweeps run one at a time.
//! - **Shared-store fairness.** The persistent result store serves hits
//!   to everyone, but fresh writes are charged per client against an
//!   optional byte quota ([`quota::QuotaLedger`]); over-quota clients
//!   keep reading and stop writing.
//! - **Observable lifecycle.** Every stage counts into `server.*`
//!   metrics and opens spans on per-request lanes, scrapeable at
//!   `/metrics` alongside the `engine.*` / `result_store.*` families.
//!
//! The HTTP layer itself is hand-rolled over [`std::net`] — see
//! [`http`] for why (no crates.io in the build environment, and the
//! protocol subset a batch-simulation service needs is tiny).

pub mod http;
pub mod queue;
pub mod quota;
pub mod routes;

pub use routes::{Route, ROUTES};

use cbws_harness::ResultCache;
use cbws_telemetry::{Spans, Telemetry};
use queue::JobQueue;
use quota::QuotaLedger;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Everything configurable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Admission bound: outstanding requests beyond this get 429.
    pub queue_capacity: usize,
    /// Default engine worker threads per sweep (`0` = all cores);
    /// requests may override with their `jobs` field.
    pub jobs: usize,
    /// Largest accepted request body (uploaded traces are the big ones).
    pub max_body_bytes: usize,
    /// Default per-request timeout; requests may override with
    /// `timeout_s`. A run past its deadline is cooperatively cancelled
    /// and reports `timed_out` in its summary line.
    pub default_timeout_s: f64,
    /// Per-client result-store write quota in bytes (`None` = off).
    pub client_quota_bytes: Option<u64>,
    /// Result-store policy for every run this server executes.
    pub result_cache: ResultCache,
    /// Metrics sink; `/metrics` serves its registry.
    pub telemetry: Telemetry,
    /// Span collector for request lanes and engine worker timelines.
    pub spans: Spans,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 8,
            jobs: 0,
            max_body_bytes: 64 * 1024 * 1024,
            default_timeout_s: 600.0,
            client_quota_bytes: None,
            result_cache: ResultCache::Off,
            telemetry: Telemetry::disabled(),
            spans: Spans::disabled(),
        }
    }
}

/// Shared state every connection handler sees.
pub struct ServerState {
    /// The instance configuration.
    pub config: ServerConfig,
    /// The admission queue.
    pub queue: JobQueue,
    /// The per-client write-quota ledger.
    pub quota: QuotaLedger,
    next_request: AtomicU64,
}

impl ServerState {
    /// Builds the state for `config`.
    pub fn new(config: ServerConfig) -> ServerState {
        let queue = JobQueue::new(config.queue_capacity);
        let quota = QuotaLedger::new(config.client_quota_bytes);
        ServerState {
            config,
            queue,
            quota,
            next_request: AtomicU64::new(0),
        }
    }

    /// The instance's metrics sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.config.telemetry
    }

    /// The instance's span collector.
    pub fn spans(&self) -> &Spans {
        &self.config.spans
    }

    /// A fresh request id (names the request's span lane).
    pub fn next_request_id(&self) -> u64 {
        self.next_request.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value of the `result_store.write_bytes` counter. Sweeps
    /// run one at a time (the queue serializes them), so the delta
    /// around a run is exactly that run's contribution.
    pub fn store_write_bytes(&self) -> u64 {
        self.config
            .telemetry
            .with_metrics(|m| m.counter("result_store.write_bytes").unwrap_or(0))
            .unwrap_or(0)
    }
}

/// A running server: accept loop on its own thread, one thread per
/// connection.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts accepting.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
            })
        };
        Ok(Server {
            addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests inspect the queue and ledger through it).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// being served run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Serves one connection: parse, dispatch, close.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    match http::read_request(&mut stream, state.config.max_body_bytes) {
        Ok(req) => routes::dispatch(state, &req, &mut stream),
        Err(http::ParseError::TooLarge) => {
            state.telemetry().count("server.errors", 1);
            let _ = http::respond_error(
                &mut stream,
                413,
                &format!("request body exceeds {} bytes", state.config.max_body_bytes),
            );
        }
        Err(http::ParseError::Bad(msg)) => {
            state.telemetry().count("server.errors", 1);
            let _ = http::respond_error(&mut stream, 400, &msg);
        }
        // Nobody left to answer.
        Err(http::ParseError::Disconnected) => {}
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
