//! Per-client result-store byte quotas.
//!
//! The persistent result store is a shared disk budget
//! (`CBWS_RESULT_CACHE_BYTES` bounds the whole directory, with LRU
//! eviction). A server adds a second, per-client layer on top: each
//! client may *add* at most `per_client` bytes of fresh result files.
//! The ledger charges the `result_store.write_bytes` counter delta
//! observed around each run — exact because the [`crate::queue`] runs
//! sweeps one at a time — and a client over its allowance keeps full
//! read access (store hits still serve) but runs with
//! [`cbws_harness::EngineConfig::store_writes`] off, so it can no longer
//! grow the store or evict other clients' entries.
//!
//! Clients are identified by the `X-Client-Id` request header, falling
//! back to the peer IP. That is cooperative, not cryptographic — the
//! quota is a fairness mechanism among colleagues sharing a sweep box,
//! not an authentication boundary.

use std::collections::HashMap;
use std::sync::Mutex;

/// The ledger: bytes of store writes charged per client id.
#[derive(Debug)]
pub struct QuotaLedger {
    /// Byte allowance per client; `None` = unlimited (quotas off).
    per_client: Option<u64>,
    charged: Mutex<HashMap<String, u64>>,
}

impl QuotaLedger {
    /// A ledger allowing each client `per_client` bytes of store writes
    /// (`None` disables quota enforcement).
    pub fn new(per_client: Option<u64>) -> QuotaLedger {
        QuotaLedger {
            per_client,
            charged: Mutex::new(HashMap::new()),
        }
    }

    /// The per-client allowance.
    pub fn per_client(&self) -> Option<u64> {
        self.per_client
    }

    /// Whether `client` may still persist fresh results. Over-quota
    /// clients read the store but stop writing it; the check happens at
    /// admission, so the run that crosses the line completes its writes.
    pub fn allows_writes(&self, client: &str) -> bool {
        match self.per_client {
            None => true,
            Some(limit) => self
                .charged
                .lock()
                .unwrap()
                .get(client)
                .is_none_or(|&spent| spent < limit),
        }
    }

    /// Charges `bytes` of store writes to `client`.
    pub fn charge(&self, client: &str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        *self
            .charged
            .lock()
            .unwrap()
            .entry(client.to_string())
            .or_insert(0) += bytes;
    }

    /// Bytes charged to `client` so far.
    pub fn charged(&self, client: &str) -> u64 {
        self.charged
            .lock()
            .unwrap()
            .get(client)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_ledger_always_allows() {
        let ledger = QuotaLedger::new(None);
        ledger.charge("alice", u64::MAX / 2);
        assert!(ledger.allows_writes("alice"));
    }

    #[test]
    fn client_over_quota_loses_writes_others_keep_them() {
        let ledger = QuotaLedger::new(Some(1000));
        assert!(ledger.allows_writes("alice"));
        ledger.charge("alice", 999);
        assert!(ledger.allows_writes("alice"), "under the line");
        ledger.charge("alice", 1);
        assert!(!ledger.allows_writes("alice"), "at the line");
        assert!(ledger.allows_writes("bob"), "quotas are per client");
        assert_eq!(ledger.charged("alice"), 1000);
        assert_eq!(ledger.charged("bob"), 0);
    }
}
