//! Minimal HTTP/1.1 request parsing and response writing over
//! [`std::net::TcpStream`].
//!
//! The build environment has no crates.io access, so the async stack the
//! sweep server would conventionally sit on (tokio + axum/hyper) is not
//! available. The protocol subset a simulation service actually needs is
//! small enough to hand-write instead: one request per connection
//! (`Connection: close` on every response), bodies delimited by
//! `Content-Length` on the way in and by connection close on the way out.
//! Close-delimited response bodies are what lets `/v1/sweep` stream JSONL
//! lines as jobs finish without knowing the total length up front — the
//! same property chunked transfer encoding would provide, with none of
//! the framing.
//!
//! Concurrency is thread-per-connection. That is not a typo for "slow":
//! every interesting request runs a simulation sweep that saturates the
//! worker pool for seconds, so connection counts are tiny and the thread
//! spawn cost is noise. The [`crate::queue`] bounds how many requests may
//! be outstanding, which is the resource that actually needs protecting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`).
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed, mapped to the status the server
/// answers with.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header, or `Content-Length`.
    Bad(String),
    /// Body (or head) exceeds the configured size cap.
    TooLarge,
    /// The client closed the connection before a full request arrived.
    Disconnected,
}

/// Reads one request from `stream`, rejecting bodies over `max_body`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;
    read_line(&mut reader, &mut line, &mut head_bytes)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        read_line(&mut reader, &mut line, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(ParseError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ParseError::Disconnected)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Reads one CRLF-terminated line into `line` (terminator stripped),
/// charging its length against the head-size cap.
fn read_line(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<(), ParseError> {
    line.clear();
    let n = reader
        .read_line(line)
        .map_err(|_| ParseError::Disconnected)?;
    if n == 0 {
        return Err(ParseError::Disconnected);
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(ParseError::TooLarge);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(())
}

/// Reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with a `Content-Length` body.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON error body `{"error": message}` with `status`.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    let body = serde_json::to_string(&serde::Value::Object(vec![(
        "error".to_string(),
        serde::Value::Str(message.to_string()),
    )]))
    .expect("error bodies serialize");
    respond(stream, status, "application/json", body.as_bytes())
}

/// Writes the head of a streaming response whose body is delimited by
/// connection close (no `Content-Length`). The caller then writes body
/// bytes directly to the stream.
pub fn begin_stream(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feeds `raw` to `read_request` through a real socket pair.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        // EOF the request so truncated bodies error instead of blocking.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, max_body)
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let req = parse(
            b"POST /v1/sweep?x=1 HTTP/1.1\r\nHost: h\r\nX-Client-Id: alice\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweep");
        assert_eq!(req.header("x-client-id"), Some("alice"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn get_without_content_length_has_empty_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_not_read() {
        let err = parse(
            b"POST /v1/trace HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
            10,
        )
        .unwrap_err();
        assert_eq!(err, ParseError::TooLarge);
    }

    #[test]
    fn truncated_body_reports_disconnect() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab", 1024).unwrap_err();
        assert_eq!(err, ParseError::Disconnected);
    }
}
