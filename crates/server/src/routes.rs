//! Route table and request handlers.
//!
//! [`ROUTES`] is the single source of truth for the service surface: the
//! dispatcher matches against it, 404 bodies enumerate it, and `docgen
//! --check` fails the build when the route table in
//! `book/src/service.md` drifts from it.

use crate::http::{self, Request};
use crate::ServerState;
use cbws_harness::service::{parse_scale, resolve_kinds, resolve_workloads};
use cbws_harness::{JobObserver, Simulator, SweepSession, SweepSpec, SystemConfig};
use cbws_stats::RunRecord;
use cbws_trace::Trace;
use cbws_workloads::{Group, Scale, ALL};
use serde::Value;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One entry of the service surface.
#[derive(Debug)]
pub struct Route {
    /// HTTP method.
    pub method: &'static str,
    /// Request path.
    pub path: &'static str,
    /// One-line summary, shared with the book's route table.
    pub summary: &'static str,
}

/// Every route the server answers. Ordered as documented in
/// `book/src/service.md`; the docs job diffs the two.
pub const ROUTES: &[Route] = &[
    Route {
        method: "GET",
        path: "/healthz",
        summary: "liveness probe: status, queue depth, and queue capacity",
    },
    Route {
        method: "GET",
        path: "/metrics",
        summary: "metrics registry snapshot as nested JSON",
    },
    Route {
        method: "GET",
        path: "/v1/workloads",
        summary: "registered workloads, prefetcher names, and scales",
    },
    Route {
        method: "POST",
        path: "/v1/sweep",
        summary: "run a sweep; streams one record per job as JSONL, then a summary line",
    },
    Route {
        method: "POST",
        path: "/v1/simulate",
        summary: "run one workload under selected prefetchers; returns records and manifest",
    },
    Route {
        method: "POST",
        path: "/v1/trace",
        summary: "simulate an uploaded JSON trace under selected prefetchers",
    },
];

/// Dispatches one parsed request. Any I/O error is swallowed: the client
/// is gone and the connection is torn down either way.
pub fn dispatch(state: &ServerState, req: &Request, stream: &mut TcpStream) {
    state.telemetry().count("server.requests", 1);
    let result = match ROUTES
        .iter()
        .find(|r| r.path == req.path && r.method == req.method)
    {
        Some(route) => match (route.method, route.path) {
            ("GET", "/healthz") => healthz(state, stream),
            ("GET", "/metrics") => metrics(state, stream),
            ("GET", "/v1/workloads") => workloads(state, stream),
            ("POST", "/v1/sweep") => sweep(state, req, stream),
            ("POST", "/v1/simulate") => simulate(state, req, stream),
            ("POST", "/v1/trace") => trace_upload(state, req, stream),
            _ => unreachable!("ROUTES and the dispatch arms list the same handlers"),
        },
        None if ROUTES.iter().any(|r| r.path == req.path) => {
            state.telemetry().count("server.errors", 1);
            http::respond_error(
                stream,
                405,
                &format!("{} does not accept {}", req.path, req.method),
            )
        }
        None => {
            state.telemetry().count("server.errors", 1);
            let known: Vec<String> = ROUTES
                .iter()
                .map(|r| format!("{} {}", r.method, r.path))
                .collect();
            http::respond_error(
                stream,
                404,
                &format!("no route `{}`; routes: {}", req.path, known.join(", ")),
            )
        }
    };
    let _ = result;
}

/// `GET /healthz`.
fn healthz(state: &ServerState, stream: &mut TcpStream) -> std::io::Result<()> {
    let body = Value::Object(vec![
        ("status".into(), Value::Str("ok".into())),
        (
            "queue_depth".into(),
            Value::UInt(state.queue.depth() as u64),
        ),
        (
            "queue_capacity".into(),
            Value::UInt(state.queue.capacity() as u64),
        ),
    ]);
    respond_json(stream, 200, &body)
}

/// `GET /metrics`.
fn metrics(state: &ServerState, stream: &mut TcpStream) -> std::io::Result<()> {
    state
        .telemetry()
        .set_gauge("server.queue_depth", state.queue.depth() as f64);
    let body = state
        .telemetry()
        .metrics_to_value()
        .unwrap_or(Value::Object(Vec::new()));
    respond_json(stream, 200, &body)
}

/// `GET /v1/workloads`.
fn workloads(state: &ServerState, stream: &mut TcpStream) -> std::io::Result<()> {
    let _ = state;
    let workloads: Vec<Value> = ALL
        .iter()
        .map(|w| {
            Value::Object(vec![
                ("name".into(), Value::Str(w.name.into())),
                ("suite".into(), Value::Str(w.suite.to_string())),
                (
                    "group".into(),
                    Value::Str(
                        match w.group {
                            Group::MemoryIntensive => "memory-intensive",
                            Group::LowMpki => "low-mpki",
                        }
                        .into(),
                    ),
                ),
                ("pattern".into(), Value::Str(w.pattern.into())),
            ])
        })
        .collect();
    let names = |kinds: &[cbws_harness::PrefetcherKind]| {
        Value::Array(kinds.iter().map(|k| Value::Str(k.name().into())).collect())
    };
    let body = Value::Object(vec![
        ("workloads".into(), Value::Array(workloads)),
        (
            "prefetchers".into(),
            Value::Object(vec![
                ("all".into(), names(&cbws_harness::PrefetcherKind::ALL)),
                (
                    "extended".into(),
                    names(&cbws_harness::PrefetcherKind::EXTENDED),
                ),
            ]),
        ),
        (
            "scales".into(),
            Value::Array(
                ["tiny", "small", "full", "huge"]
                    .iter()
                    .map(|s| Value::Str((*s).into()))
                    .collect(),
            ),
        ),
    ]);
    respond_json(stream, 200, &body)
}

/// Everything `POST /v1/sweep` and `POST /v1/simulate` share: the
/// resolved spec plus request options.
struct RunRequest {
    spec: SweepSpec,
    timeout: Duration,
}

/// Parses the JSON body the run endpoints accept. All fields are
/// optional; an absent/empty body means the full-matrix default.
fn parse_run_request(state: &ServerState, req: &Request) -> Result<RunRequest, String> {
    let v = parse_body(req)?;
    let workloads = resolve_workloads(&string_list(&v, "workloads")?)?;
    let kinds = resolve_kinds(&string_list(&v, "prefetchers")?)?;
    let scale = match string_field(&v, "scale")? {
        Some(s) => parse_scale(&s)?,
        None => Scale::Tiny,
    };
    let jobs = match uint_field(&v, "jobs")? {
        Some(n) => n as usize,
        None => state.config.jobs,
    };
    let timeout = Duration::from_secs_f64(match float_field(&v, "timeout_s")? {
        Some(t) if t >= 0.0 => t,
        Some(t) => return Err(format!("timeout_s must be >= 0, got {t}")),
        None => state.config.default_timeout_s,
    });
    let stream_threshold_bytes = uint_field(&v, "stream_threshold_bytes")?;
    Ok(RunRequest {
        spec: SweepSpec {
            workloads,
            kinds,
            scale,
            jobs,
            system: SystemConfig::default(),
            stream_threshold_bytes,
        },
        timeout,
    })
}

/// What the streaming observer tracks while the engine runs.
struct StreamState {
    out: TcpStream,
    /// Records finished out of serial order, waiting for their turn.
    pending: BTreeMap<usize, String>,
    /// Next serial index to stream.
    next: usize,
    /// Lines actually written.
    streamed: u64,
    /// Jobs served from the result store.
    cached: u64,
    /// Set when a write failed — the client disconnected.
    failed: bool,
    /// Set when the deadline passed.
    timed_out: bool,
}

/// `POST /v1/sweep` — the streaming endpoint.
fn sweep(state: &ServerState, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let run_req = match parse_run_request(state, req) {
        Ok(r) => r,
        Err(msg) => {
            state.telemetry().count("server.errors", 1);
            return http::respond_error(stream, 400, &msg);
        }
    };
    let client = client_id(req, stream);
    let Some(_ticket) = admit(state, stream)? else {
        return Ok(());
    };

    let spans = state.spans();
    spans.adopt_lane(spans.lane(&format!("request-{}", state.next_request_id())));
    let store_writes = state.quota.allows_writes(&client);
    let bytes_before = state.store_write_bytes();
    state.telemetry().count("server.sweeps", 1);

    http::begin_stream(stream, "application/x-ndjson")?;
    let deadline = Instant::now() + run_req.timeout;
    let shared = Arc::new(Mutex::new(StreamState {
        out: stream.try_clone()?,
        pending: BTreeMap::new(),
        next: 0,
        streamed: 0,
        cached: 0,
        failed: false,
        timed_out: false,
    }));
    let observer: JobObserver = {
        let shared = Arc::clone(&shared);
        Arc::new(move |update| {
            let mut st = shared.lock().unwrap();
            if st.failed || st.timed_out {
                return false;
            }
            if update.cached {
                st.cached += 1;
            }
            let line = serde_json::to_string(update.record).expect("records serialize");
            st.pending.insert(update.job, line);
            loop {
                let head = st.next;
                let Some(line) = st.pending.remove(&head) else {
                    break;
                };
                if st.out.write_all(line.as_bytes()).is_err()
                    || st.out.write_all(b"\n").is_err()
                    || st.out.flush().is_err()
                {
                    st.failed = true;
                    return false;
                }
                st.next += 1;
                st.streamed += 1;
            }
            if Instant::now() >= deadline {
                st.timed_out = true;
                return false;
            }
            true
        })
    };

    let guard = spans.begin("sweep");
    let session = SweepSession {
        telemetry: state.telemetry().clone(),
        spans: spans.clone(),
        result_cache: state.config.result_cache.clone(),
        store_writes,
    };
    let outcome = session.run("sweep_server", &run_req.spec, Some(observer));
    drop(guard);

    let delta = state.store_write_bytes().saturating_sub(bytes_before);
    state.quota.charge(&client, delta);

    let mut st = shared.lock().unwrap();
    // A cancelled run leaves post-gap records parked in the reorder
    // buffer; stream them in index order so nothing computed is lost.
    let leftovers: Vec<String> = std::mem::take(&mut st.pending).into_values().collect();
    for line in leftovers {
        if !st.failed
            && (st.out.write_all(line.as_bytes()).is_err() || st.out.write_all(b"\n").is_err())
        {
            st.failed = true;
        }
        if !st.failed {
            st.streamed += 1;
        }
    }
    if st.failed {
        state.telemetry().count("server.cancelled", 1);
    }
    if st.timed_out {
        state.telemetry().count("server.timeouts", 1);
    }
    state
        .telemetry()
        .count("server.records_streamed", st.streamed);

    let summary = Value::Object(vec![(
        "summary".into(),
        Value::Object(vec![
            ("jobs".into(), Value::UInt(run_req.spec.job_count() as u64)),
            (
                "records".into(),
                Value::UInt(outcome.run.records.len() as u64),
            ),
            ("streamed".into(), Value::UInt(st.streamed)),
            ("cached".into(), Value::UInt(st.cached)),
            ("cancelled".into(), Value::Bool(outcome.run.cancelled)),
            ("timed_out".into(), Value::Bool(st.timed_out)),
            ("store_writes".into(), Value::Bool(store_writes)),
            ("store_write_bytes".into(), Value::UInt(delta)),
            (
                "wall_seconds".into(),
                Value::Float(outcome.run.wall_seconds),
            ),
            (
                "manifest".into(),
                serde_json::to_value(&outcome.manifest).expect("manifests serialize"),
            ),
        ]),
    )]);
    if !st.failed {
        let line = serde_json::to_string(&summary).expect("summaries serialize");
        let _ = st
            .out
            .write_all(line.as_bytes())
            .and_then(|_| st.out.write_all(b"\n"))
            .and_then(|_| st.out.flush());
    }
    Ok(())
}

/// `POST /v1/simulate` — one workload, whole response in one JSON body.
fn simulate(state: &ServerState, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let run_req = match parse_run_request(state, req) {
        Ok(r) if r.spec.workloads.len() == 1 => r,
        Ok(r) => {
            state.telemetry().count("server.errors", 1);
            return http::respond_error(
                stream,
                400,
                &format!(
                    "/v1/simulate takes exactly one workload, got {} (use /v1/sweep for matrices)",
                    r.spec.workloads.len()
                ),
            );
        }
        Err(msg) => {
            state.telemetry().count("server.errors", 1);
            return http::respond_error(stream, 400, &msg);
        }
    };
    let client = client_id(req, stream);
    let Some(_ticket) = admit(state, stream)? else {
        return Ok(());
    };
    let store_writes = state.quota.allows_writes(&client);
    let bytes_before = state.store_write_bytes();
    state.telemetry().count("server.simulates", 1);
    let session = SweepSession {
        telemetry: state.telemetry().clone(),
        spans: state.spans().clone(),
        result_cache: state.config.result_cache.clone(),
        store_writes,
    };
    let outcome = session.run("sweep_server", &run_req.spec, None);
    state.quota.charge(
        &client,
        state.store_write_bytes().saturating_sub(bytes_before),
    );
    let body = Value::Object(vec![
        ("records".into(), records_value(&outcome.run.records)),
        (
            "manifest".into(),
            serde_json::to_value(&outcome.manifest).expect("manifests serialize"),
        ),
    ]);
    respond_json(stream, 200, &body)
}

/// `POST /v1/trace` — simulate a client-uploaded trace.
///
/// Uploaded traces have no registered identity, so they bypass the
/// result store entirely (nothing to key a cache entry on) and run
/// serially through [`Simulator`] rather than the engine.
fn trace_upload(state: &ServerState, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let parsed = (|| -> Result<(String, Trace, Vec<cbws_harness::PrefetcherKind>), String> {
        let v = parse_body(req)?;
        let label = string_field(&v, "label")?.unwrap_or_else(|| "uploaded-trace".into());
        let trace_value = v.get("trace").ok_or_else(|| {
            "missing `trace` field (a JSON trace, as written by `simulate --export`)".to_string()
        })?;
        let trace: Trace =
            serde_json::from_value(trace_value).map_err(|e| format!("cannot parse trace: {e}"))?;
        let kinds = resolve_kinds(&string_list(&v, "prefetchers")?)?;
        Ok((label, trace, kinds))
    })();
    let (label, trace, kinds) = match parsed {
        Ok(p) => p,
        Err(msg) => {
            state.telemetry().count("server.errors", 1);
            return http::respond_error(stream, 400, &msg);
        }
    };
    let Some(_ticket) = admit(state, stream)? else {
        return Ok(());
    };
    state.telemetry().count("server.traces", 1);
    let sim = Simulator::new(SystemConfig::default());
    let records: Vec<RunRecord> = kinds
        .iter()
        .map(|&kind| sim.run(&label, true, &trace, kind))
        .collect();
    let stats = trace.stats();
    let body = Value::Object(vec![
        ("label".into(), Value::Str(label)),
        ("instructions".into(), Value::UInt(stats.instructions)),
        ("mem_accesses".into(), Value::UInt(stats.mem_accesses)),
        ("records".into(), records_value(&records)),
    ]);
    respond_json(stream, 200, &body)
}

/// Takes a queue ticket and waits for the turn, or answers 429 and
/// returns `None`. The gauge tracks the post-admission depth.
fn admit<'a>(
    state: &'a ServerState,
    stream: &mut TcpStream,
) -> std::io::Result<Option<crate::queue::Ticket<'a>>> {
    match state.queue.admit() {
        Ok(ticket) => {
            state
                .telemetry()
                .set_gauge("server.queue_depth", state.queue.depth() as f64);
            let guard = state.spans().begin("queued");
            ticket.wait_turn();
            drop(guard);
            Ok(Some(ticket))
        }
        Err(full) => {
            state.telemetry().count("server.rejected", 1);
            http::respond_error(
                stream,
                429,
                &format!(
                    "queue full ({} requests outstanding); retry when a sweep finishes",
                    full.capacity
                ),
            )?;
            Ok(None)
        }
    }
}

/// The quota identity: `X-Client-Id` header, else the peer IP.
fn client_id(req: &Request, stream: &TcpStream) -> String {
    if let Some(id) = req.header("x-client-id") {
        if !id.is_empty() {
            return id.to_string();
        }
    }
    stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".into())
}

/// Serializes records into a JSON array value.
fn records_value(records: &[RunRecord]) -> Value {
    Value::Array(
        records
            .iter()
            .map(|r| serde_json::to_value(r).expect("records serialize"))
            .collect(),
    )
}

/// Writes `body` as a JSON response.
fn respond_json(stream: &mut TcpStream, status: u16, body: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(body).expect("response bodies serialize");
    http::respond(stream, status, "application/json", text.as_bytes())
}

/// Parses the request body as a JSON object (empty body = empty object).
fn parse_body(req: &Request) -> Result<Value, String> {
    if req.body.is_empty() {
        return Ok(Value::Object(Vec::new()));
    }
    let text =
        std::str::from_utf8(&req.body).map_err(|_| "request body is not UTF-8".to_string())?;
    let v: Value =
        serde_json::from_str(text).map_err(|e| format!("request body is not JSON: {e}"))?;
    match v {
        Value::Object(_) => Ok(v),
        _ => Err("request body must be a JSON object".into()),
    }
}

/// Optional `key` as a list of strings (a bare string counts as a
/// one-element list); absent → empty list.
fn string_list(v: &Value, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Str(s)) => Ok(vec![s.clone()]),
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("`{key}` must contain strings"))
            })
            .collect(),
        Some(_) => Err(format!("`{key}` must be a string or a list of strings")),
    }
}

/// Optional string `key`.
fn string_field(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

/// Optional non-negative integer `key`.
fn uint_field(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// Optional float `key` (integers accepted).
fn float_field(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_unique_and_well_formed() {
        for r in ROUTES {
            assert!(r.path.starts_with('/'), "{}", r.path);
            assert!(matches!(r.method, "GET" | "POST"), "{}", r.method);
            assert!(!r.summary.is_empty());
        }
        for (i, a) in ROUTES.iter().enumerate() {
            for b in &ROUTES[i + 1..] {
                assert!(
                    a.path != b.path || a.method != b.method,
                    "duplicate route {} {}",
                    a.method,
                    a.path
                );
            }
        }
    }

    #[test]
    fn body_field_helpers_validate_types() {
        let v: Value = serde_json::from_str(
            r#"{"workloads":["a","b"],"scale":"tiny","jobs":4,"timeout_s":1.5,"single":"x"}"#,
        )
        .unwrap();
        assert_eq!(string_list(&v, "workloads").unwrap(), vec!["a", "b"]);
        assert_eq!(string_list(&v, "single").unwrap(), vec!["x"]);
        assert_eq!(string_list(&v, "absent").unwrap(), Vec::<String>::new());
        assert_eq!(string_field(&v, "scale").unwrap(), Some("tiny".into()));
        assert_eq!(uint_field(&v, "jobs").unwrap(), Some(4));
        assert_eq!(float_field(&v, "timeout_s").unwrap(), Some(1.5));
        assert!(uint_field(&v, "scale").is_err());
        assert!(string_list(&v, "jobs").is_err());
    }
}
