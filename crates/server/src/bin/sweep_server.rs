//! The sweep server binary.
//!
//! ```text
//! sweep_server [--addr 127.0.0.1:8780] [--queue N] [--jobs N]
//!              [--timeout-s SECS] [--quota-bytes N]
//!              [--no-result-cache] [--quiet | --progress]
//! ```
//!
//! Binds, prints the listening address on stdout (`listening on ...`),
//! and serves until killed. The result store follows the CLI convention:
//! shared (`CBWS_RESULT_STORE_DIR`) unless `--no-result-cache`. Metrics
//! and spans are always enabled — `/metrics` is the whole point of
//! running a service.

use cbws_harness::ResultCache;
use cbws_server::{Server, ServerConfig};
use cbws_telemetry::{status, Spans, Telemetry};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: sweep_server [--addr HOST:PORT] [--queue N] [--jobs N] \
         [--timeout-s SECS] [--quota-bytes N] [--no-result-cache] \
         [--quiet | --progress]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);

    let mut config = ServerConfig {
        telemetry: Telemetry::enabled_default(),
        spans: Spans::enabled(),
        result_cache: if args.iter().any(|a| a == "--no-result-cache") {
            ResultCache::Off
        } else {
            ResultCache::Shared
        },
        ..ServerConfig::default()
    };
    if let Some(addr) = arg_value(&args, "--addr") {
        config.addr = addr;
    }
    if let Some(n) = arg_value(&args, "--queue") {
        config.queue_capacity = n
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad --queue `{n}`")));
    }
    if let Some(n) = arg_value(&args, "--jobs") {
        config.jobs = n
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad --jobs `{n}`")));
    }
    if let Some(s) = arg_value(&args, "--timeout-s") {
        config.default_timeout_s = s
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad --timeout-s `{s}`")));
    }
    if let Some(n) = arg_value(&args, "--quota-bytes") {
        config.client_quota_bytes = Some(
            n.parse()
                .unwrap_or_else(|_| fail(&format!("bad --quota-bytes `{n}`"))),
        );
    }

    let server = Server::spawn(config).unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    // The smoke harness greps this line for the resolved ephemeral port.
    println!("listening on {}", server.addr());
    status!(
        "[server] queue capacity {}",
        server.state().queue.capacity()
    );

    // Serve until killed; the accept loop runs on its own thread.
    loop {
        std::thread::park();
    }
}
