//! Bounded FIFO admission queue for simulation requests.
//!
//! Every request that will touch the engine first asks the queue for a
//! [`Ticket`]. Admission is non-blocking: when `capacity` tickets are
//! already outstanding the caller gets [`QueueFull`] back immediately and
//! answers 429, so a burst of clients degrades into fast rejections
//! instead of an unbounded pile of parked threads. Admitted callers then
//! *block* until every earlier ticket has been served — the engine runs
//! one sweep at a time, which keeps worker-pool contention away and, more
//! subtly, makes the `result_store.write_bytes` delta observed around a
//! run attributable to exactly one client (the basis of the
//! [`crate::quota`] ledger).
//!
//! Dropping a [`Ticket`] marks it served and wakes the next waiter, so a
//! handler that panics or errors out cannot wedge the queue.

use std::collections::BTreeSet;
use std::sync::{Condvar, Mutex};

/// Returned when the queue already holds `capacity` outstanding tickets.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The capacity that was exceeded.
    pub capacity: usize,
}

#[derive(Debug)]
struct State {
    /// Tickets issued so far; the next ticket gets this number.
    next: u64,
    /// The ticket currently allowed to run; all earlier ones are done.
    serving: u64,
    /// Tickets ahead of their turn that already finished (a queued client
    /// gave up before being served); `serving` skips straight over them.
    abandoned: BTreeSet<u64>,
}

/// The queue itself. `capacity` counts every outstanding ticket,
/// including the one currently being served.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<State>,
    served: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` outstanding tickets
    /// (minimum 1).
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(State {
                next: 0,
                serving: 0,
                abandoned: BTreeSet::new(),
            }),
            served: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Outstanding tickets right now (admitted, not yet done).
    pub fn depth(&self) -> usize {
        let st = self.state.lock().unwrap();
        (st.next - st.serving) as usize - st.abandoned.len()
    }

    /// Admits the caller or rejects with [`QueueFull`]; admission never
    /// blocks. The returned ticket must then be [`Ticket::wait_turn`]ed
    /// before touching the engine.
    pub fn admit(&self) -> Result<Ticket<'_>, QueueFull> {
        let mut st = self.state.lock().unwrap();
        if (st.next - st.serving) as usize - st.abandoned.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        let number = st.next;
        st.next += 1;
        Ok(Ticket {
            queue: self,
            number,
        })
    }

    /// Blocks until `number` is at the head of the queue.
    fn wait_for(&self, number: u64) {
        let mut st = self.state.lock().unwrap();
        while st.serving != number {
            st = self.served.wait(st).unwrap();
        }
    }

    /// Marks `number` done and advances the head past every contiguous
    /// finished ticket, waking the waiters.
    fn done(&self, number: u64) {
        let mut st = self.state.lock().unwrap();
        st.abandoned.insert(number);
        loop {
            let head = st.serving;
            if !st.abandoned.remove(&head) {
                break;
            }
            st.serving += 1;
        }
        self.served.notify_all();
    }
}

/// One admitted slot. Holding it keeps the queue depth charged; dropping
/// it marks the slot served.
#[derive(Debug)]
pub struct Ticket<'a> {
    queue: &'a JobQueue,
    number: u64,
}

impl Ticket<'_> {
    /// Blocks until every earlier ticket has been served; returns with
    /// this ticket at the head of the queue, cleared to run.
    pub fn wait_turn(&self) {
        self.queue.wait_for(self.number);
    }

    /// Position behind the head at admission time (0 = runs immediately).
    pub fn position(&self) -> u64 {
        self.number - self.queue.state.lock().unwrap().serving
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        self.queue.done(self.number);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admission_beyond_capacity_is_rejected_immediately() {
        let q = JobQueue::new(2);
        let a = q.admit().unwrap();
        let b = q.admit().unwrap();
        assert_eq!(q.depth(), 2);
        let err = q.admit().unwrap_err();
        assert_eq!(err.capacity, 2);
        drop(a);
        // One slot freed: admission works again.
        let c = q.admit().unwrap();
        assert_eq!(q.depth(), 2);
        drop(b);
        drop(c);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn tickets_serve_in_fifo_order() {
        let q = Arc::new(JobQueue::new(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Admit all four up front so the serve order is fixed before any
        // thread races to wait.
        let tickets: Vec<_> = (0..4).map(|_| q.admit().unwrap()).collect();
        std::thread::scope(|s| {
            for t in tickets {
                let order = Arc::clone(&order);
                s.spawn(move || {
                    t.wait_turn();
                    order.lock().unwrap().push(t.number);
                });
            }
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn only_one_ticket_runs_at_a_time() {
        let q = Arc::new(JobQueue::new(8));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (q, running, peak) = (Arc::clone(&q), Arc::clone(&running), Arc::clone(&peak));
                s.spawn(move || {
                    let t = q.admit().unwrap();
                    t.wait_turn();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropping_an_unserved_ticket_does_not_wedge_the_queue() {
        let q = JobQueue::new(3);
        let a = q.admit().unwrap();
        let b = q.admit().unwrap();
        // `b` gives up while queued (client vanished before its turn).
        drop(b);
        drop(a);
        let c = q.admit().unwrap();
        c.wait_turn();
        assert_eq!(q.depth(), 1);
    }
}
