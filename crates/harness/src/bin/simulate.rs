//! General-purpose trace-driven simulation CLI: run any registered
//! workload — or an externally supplied JSON trace — under any prefetcher
//! and print the full metric set. Also exports generated traces to JSON so
//! they can be archived, inspected, or replayed elsewhere.
//!
//! ```text
//! simulate --workload stencil-default [--scale small] [--jobs N] \
//!          [--prefetcher SMS] [--dram] [--export trace.json] \
//!          [--trace-out events.jsonl] [--metrics-out metrics.json] \
//!          [--spans-out spans.json] [--resume] [--no-result-cache] \
//!          [--quiet | --progress]
//! simulate --trace mytrace.json --prefetcher CBWS+SMS
//! ```
//!
//! With no `--workload`/`--trace`, the `stencil-default` workload runs.
//! With no `--prefetcher`, all seven paper configurations run.
//!
//! `--trace-out` captures the structured event trace (prefetch lifecycle,
//! Fig. 13 demand classification, block boundaries, table lookups,
//! evictions) as JSON Lines; `--metrics-out` dumps the hierarchical metrics
//! registry as nested JSON. Both aggregate over every simulated prefetcher
//! of the invocation (the `run.*` gauges reflect the last run); pass
//! `--prefetcher` to capture a single configuration. A run manifest is
//! written to `results/simulate.manifest.json`.
//!
//! Registered workloads run through the work-stealing engine (`--jobs N`
//! workers, default all cores) unless `--trace-out`/`--metrics-out` ask
//! for shared per-run telemetry, which requires serial execution.

use cbws_harness::experiments::{
    jobs_from_args, result_cache_from_args, scale_from_args, session_spans, write_session_spans,
};
use cbws_harness::{Engine, EngineConfig, PrefetcherKind, RunManifest, Simulator, SystemConfig};
use cbws_sim_mem::DramConfig;
use cbws_stats::{RunRecord, TextTable};
use cbws_telemetry::{result, status, Telemetry};
use cbws_trace::{ReplaySource, Trace};
use cbws_workloads::{by_name, trace_cache, trace_store, Scale, WorkloadSpec};
use std::sync::Arc;

const DEFAULT_WORKLOAD: &str = "stencil-default";

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: simulate [--workload <name> | --trace <file.json>] \
         [--scale tiny|small|full|huge] [--prefetcher <name>] [--dram] \
         [--export <file.json>] [--trace-out <file.jsonl>] \
         [--metrics-out <file.json>] [--spans-out <file.json>] \
         [--quiet | --progress]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);

    let scale = scale_from_args();
    let mut spec: Option<&'static WorkloadSpec> = None;
    // External traces are materialized as a `Vec<TraceEvent>`; registered
    // workloads replay through the trace store instead, so a huge trace is
    // generated to disk frame by frame and never held resident.
    let (label, external): (String, Option<Arc<Trace>>) =
        if let Some(name) = arg_value(&args, "--workload") {
            let Some(w) = by_name(&name) else {
                fail(&format!(
                    "unknown workload `{name}` (see `trace_info --list`)"
                ));
            };
            spec = Some(w);
            (name, None)
        } else if let Some(path) = arg_value(&args, "--trace") {
            let data = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let trace: Trace = serde_json::from_str(&data)
                .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
            (path, Some(Arc::new(trace)))
        } else {
            let w = by_name(DEFAULT_WORKLOAD).expect("default workload is registered");
            spec = Some(w);
            (DEFAULT_WORKLOAD.to_string(), None)
        };

    if let Some(out) = arg_value(&args, "--export") {
        let trace: Arc<Trace> = match (&external, spec) {
            (Some(t), _) => Arc::clone(t),
            (None, Some(w)) => {
                if scale == Scale::Huge {
                    fail(
                        "--export at huge scale would materialize the whole trace; \
                         export a smaller scale, or read the framed store file directly",
                    );
                }
                trace_cache::generate_shared(w, scale)
            }
            (None, None) => unreachable!("no spec and no external trace"),
        };
        let json = serde_json::to_string(trace.as_ref()).expect("traces serialize");
        std::fs::write(&out, json).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        status!("[simulate] exported {} events to {out}", trace.len());
    }

    let kinds: Vec<PrefetcherKind> = match arg_value(&args, "--prefetcher") {
        Some(name) => vec![PrefetcherKind::from_name(&name)
            .unwrap_or_else(|| fail(&format!("unknown prefetcher `{name}`")))],
        None => PrefetcherKind::ALL.to_vec(),
    };

    let mut cfg = SystemConfig::default();
    if args.iter().any(|a| a == "--dram") {
        cfg.mem.dram = Some(DramConfig::default());
    }

    let trace_out = arg_value(&args, "--trace-out");
    let metrics_out = arg_value(&args, "--metrics-out");
    let telemetry = if trace_out.is_some() || metrics_out.is_some() {
        Telemetry::enabled_default()
    } else {
        Telemetry::disabled()
    };

    // Registered workloads draw from the persistent trace store: resident
    // frames below the streaming threshold, a disk-backed cursor above it.
    let threshold = EngineConfig::default().resolved_stream_threshold();
    let source: Option<ReplaySource> =
        spec.map(|w| trace_store::shared().replay_source(w, scale, threshold));

    match (&external, &source) {
        (Some(t), _) => {
            let s = t.stats();
            result!(
                "trace `{label}`: {} instructions, {} accesses, {} block instances\n",
                s.instructions,
                s.mem_accesses,
                s.dynamic_blocks
            );
        }
        (None, Some(ReplaySource::Memory(t))) => {
            let s = t.stats();
            result!(
                "trace `{label}`: {} instructions, {} accesses, {} block instances\n",
                s.instructions,
                s.mem_accesses,
                s.dynamic_blocks
            );
        }
        (None, Some(ReplaySource::Streamed(t))) => {
            // Walking the whole file just to print a stats line would cost
            // a full replay; report what the frame table already knows.
            result!(
                "trace `{label}`: {} events, streaming {} bytes from disk\n",
                t.event_count(),
                t.file_bytes()
            );
        }
        (None, None) => unreachable!("no spec and no external trace"),
    }

    // Registered workloads with no shared-telemetry outputs go through the
    // engine; external traces and telemetry captures run serially.
    let mut manifest = RunManifest::new("simulate", scale, [label.clone()], kinds.clone(), cfg);
    let records: Vec<RunRecord> = match spec {
        Some(w) if trace_out.is_none() && metrics_out.is_none() => {
            let engine = Engine::new(EngineConfig {
                jobs: jobs_from_args(),
                system: cfg,
                telemetry: Telemetry::disabled(),
                spans: session_spans().clone(),
                result_cache: result_cache_from_args(),
                ..EngineConfig::default()
            });
            let run = engine.run(scale, &[w], &kinds);
            manifest = manifest
                .with_timing(run.workers, run.wall_seconds, &run.profiler)
                .with_workers(&run.worker_stats);
            run.records
        }
        _ => {
            let sim = Simulator::with_telemetry(cfg, telemetry.clone());
            match (&external, &source) {
                (Some(t), _) => kinds
                    .iter()
                    .map(|&kind| sim.run(&label, true, &**t, kind))
                    .collect(),
                (None, Some(src)) => {
                    // Route the store's `trace.stream.*` counters into the
                    // same registry the `--metrics-out` dump captures.
                    trace_store::shared().set_telemetry(telemetry.clone());
                    kinds
                        .iter()
                        .map(|&kind| sim.run(&label, true, src, kind))
                        .collect()
                }
                (None, None) => unreachable!("no spec and no external trace"),
            }
        }
    };

    let mut table = TextTable::new(vec![
        "prefetcher".into(),
        "IPC".into(),
        "MPKI".into(),
        "timely %".into(),
        "wrong %".into(),
        "bytes read".into(),
        "pollution".into(),
    ]);
    for r in &records {
        let t = r.timeliness();
        table.row(vec![
            r.prefetcher.clone(),
            format!("{:.3}", r.ipc()),
            format!("{:.2}", r.mpki()),
            format!("{:.1}", t.timely * 100.0),
            format!("{:.1}", t.wrong * 100.0),
            r.mem.bytes_read().to_string(),
            r.mem.pollution_evictions.to_string(),
        ]);
    }
    result!("{table}");

    if let Some(path) = &trace_out {
        let f = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
        telemetry
            .write_trace_jsonl(std::io::BufWriter::new(f))
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        let dropped = telemetry.events_dropped();
        status!(
            "[simulate] wrote {} events to {path}{}",
            telemetry.events().len(),
            if dropped > 0 {
                format!(" ({dropped} oldest dropped by ring wraparound)")
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = &metrics_out {
        let f = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
        telemetry
            .write_metrics_json(std::io::BufWriter::new(f))
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        status!("[simulate] wrote metrics to {path}");
    }

    write_session_spans();
    manifest.save("simulate");
}
