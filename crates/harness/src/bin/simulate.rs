//! General-purpose trace-driven simulation CLI: run any registered
//! workload — or an externally supplied JSON trace — under any prefetcher
//! and print the full metric set. Also exports generated traces to JSON so
//! they can be archived, inspected, or replayed elsewhere.
//!
//! ```text
//! simulate --workload stencil-default [--scale small] [--prefetcher SMS] \
//!          [--dram] [--export trace.json]
//! simulate --trace mytrace.json --prefetcher CBWS+SMS
//! ```
//!
//! With no `--prefetcher`, all seven paper configurations run.

use cbws_harness::experiments::scale_from_args;
use cbws_harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_sim_mem::DramConfig;
use cbws_stats::TextTable;
use cbws_trace::Trace;
use cbws_workloads::by_name;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: simulate (--workload <name> | --trace <file.json>) \
         [--scale tiny|small|full] [--prefetcher <name>] [--dram] \
         [--export <file.json>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let (label, trace): (String, Trace) = if let Some(name) = arg_value(&args, "--workload") {
        let Some(w) = by_name(&name) else {
            fail(&format!("unknown workload `{name}` (see `trace_info --list`)"));
        };
        (name, w.generate(scale_from_args()))
    } else if let Some(path) = arg_value(&args, "--trace") {
        let data = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let trace = serde_json::from_str(&data)
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        (path, trace)
    } else {
        fail("one of --workload or --trace is required");
    };

    if let Some(out) = arg_value(&args, "--export") {
        let json = serde_json::to_string(&trace).expect("traces serialize");
        std::fs::write(&out, json).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        eprintln!("[simulate] exported {} events to {out}", trace.len());
    }

    let kinds: Vec<PrefetcherKind> = match arg_value(&args, "--prefetcher") {
        Some(name) => vec![PrefetcherKind::from_name(&name)
            .unwrap_or_else(|| fail(&format!("unknown prefetcher `{name}`")))],
        None => PrefetcherKind::ALL.to_vec(),
    };

    let mut cfg = SystemConfig::default();
    if args.iter().any(|a| a == "--dram") {
        cfg.mem.dram = Some(DramConfig::default());
    }
    let sim = Simulator::new(cfg);

    let s = trace.stats();
    println!(
        "trace `{label}`: {} instructions, {} accesses, {} block instances\n",
        s.instructions, s.mem_accesses, s.dynamic_blocks
    );

    let mut table = TextTable::new(vec![
        "prefetcher".into(),
        "IPC".into(),
        "MPKI".into(),
        "timely %".into(),
        "wrong %".into(),
        "bytes read".into(),
        "pollution".into(),
    ]);
    for kind in kinds {
        let r = sim.run(&label, true, &trace, kind);
        let t = r.timeliness();
        table.row(vec![
            r.prefetcher.clone(),
            format!("{:.3}", r.ipc()),
            format!("{:.2}", r.mpki()),
            format!("{:.1}", t.timely * 100.0),
            format!("{:.1}", t.wrong * 100.0),
            r.mem.bytes_read().to_string(),
            r.mem.pollution_evictions.to_string(),
        ]);
    }
    println!("{table}");
}
