//! **Extension experiment**: re-runs the headline comparison under the
//! banked-DRAM memory model instead of the paper's flat 300-cycle latency.
//!
//! Under DRAM, wrong prefetches occupy banks and delay demand fills, so a
//! wasteful prefetcher pays a *performance* price, not just a bandwidth
//! one — a stress test for the CBWS+SMS result.
//!
//! Usage: `cargo run --release -p cbws-harness --bin dram_model
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    get, jobs_from_args, result_cache_from_args, save_csv, scale_from_args, session_spans,
    write_session_spans,
};
use cbws_harness::{Engine, EngineConfig, EngineRun, PrefetcherKind, RunManifest, SystemConfig};
use cbws_sim_mem::DramConfig;
use cbws_stats::{geomean, TextTable};
use cbws_telemetry::{result, status, Telemetry};
use cbws_workloads::mi_suite;

const KINDS: [PrefetcherKind; 3] = [
    PrefetcherKind::None,
    PrefetcherKind::Sms,
    PrefetcherKind::CbwsSms,
];

fn run_suite(scale: cbws_workloads::Scale, cfg: SystemConfig, jobs: usize) -> EngineRun {
    Engine::new(EngineConfig {
        jobs,
        system: cfg,
        telemetry: Telemetry::disabled(),
        spans: session_spans().clone(),
        result_cache: result_cache_from_args(),
        ..EngineConfig::default()
    })
    .run(scale, &mi_suite(), &KINDS)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    let jobs = jobs_from_args();
    status!("[dram] scale = {scale}");

    let flat_cfg = SystemConfig::default();
    let mut dram_cfg = SystemConfig::default();
    dram_cfg.mem.dram = Some(DramConfig::default());

    status!("[dram] flat model...");
    let flat_run = run_suite(scale, flat_cfg, jobs);
    status!("[dram] banked DRAM model...");
    let dram_run = run_suite(scale, dram_cfg, jobs);
    let (flat, dram) = (&flat_run.records, &dram_run.records);

    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "flat: CBWS+SMS/SMS".into(),
        "dram: CBWS+SMS/SMS".into(),
    ]);
    let mut flat_ratios = Vec::new();
    let mut dram_ratios = Vec::new();
    for w in mi_suite() {
        let fr = get(flat, w.name, "CBWS+SMS").ipc() / get(flat, w.name, "SMS").ipc();
        let dr = get(dram, w.name, "CBWS+SMS").ipc() / get(dram, w.name, "SMS").ipc();
        flat_ratios.push(fr);
        dram_ratios.push(dr);
        table.row(vec![
            w.name.to_string(),
            format!("{fr:.3}"),
            format!("{dr:.3}"),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        format!("{:.3}", geomean(flat_ratios)),
        format!("{:.3}", geomean(dram_ratios)),
    ]);

    result!("Headline speedup under flat vs banked-DRAM memory\n\n{table}");
    save_csv("dram_model", &table);
    let mut profiler = flat_run.profiler.clone();
    profiler.merge(&dram_run.profiler);
    let mut worker_stats = flat_run.worker_stats.clone();
    for s in &dram_run.worker_stats {
        match worker_stats.iter_mut().find(|a| a.worker == s.worker) {
            Some(a) => a.merge(s),
            None => worker_stats.push(s.clone()),
        }
    }
    write_session_spans();
    RunManifest::new(
        "dram_model",
        scale,
        mi_suite().iter().map(|w| w.name),
        KINDS,
        dram_cfg,
    )
    .with_timing(
        flat_run.workers,
        flat_run.wall_seconds + dram_run.wall_seconds,
        &profiler,
    )
    .with_workers(&worker_stats)
    .save("dram_model");
}
