//! Regenerates **Fig. 13**: the 5-way timeliness/accuracy breakdown
//! (timely / shorter-waiting-time / non-timely / missing / wrong) for every
//! prefetcher on the memory-intensive suite.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig13_timeliness
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    fig13_timeliness, jobs_from_args, save_csv, scale_from_args, sweep_engine,
};
use cbws_harness::{PrefetcherKind, RunManifest, SystemConfig};
use cbws_telemetry::{result, status};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[fig13] scale = {scale}");
    let suite = cbws_workloads::mi_suite();
    let run = sweep_engine(scale, &suite, jobs_from_args());
    let table = fig13_timeliness(&run.records);
    result!("Fig. 13 — timeliness and accuracy, % of demand L2 accesses\n");
    result!("{table}");
    save_csv("fig13_timeliness", &table);
    RunManifest::new(
        "fig13_timeliness",
        scale,
        suite.iter().map(|w| w.name),
        PrefetcherKind::ALL,
        SystemConfig::default(),
    )
    .with_timing(run.workers, run.wall_seconds, &run.profiler)
    .with_workers(&run.worker_stats)
    .save("fig13_timeliness");
}
