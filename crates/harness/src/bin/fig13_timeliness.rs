//! Regenerates **Fig. 13**: the 5-way timeliness/accuracy breakdown
//! (timely / shorter-waiting-time / non-timely / missing / wrong) for every
//! prefetcher on the memory-intensive suite.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig13_timeliness
//! [--scale tiny|small|full]`

use cbws_harness::experiments::{fig13_timeliness, save_csv, scale_from_args, sweep};

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig13] scale = {scale}");
    let records = sweep(scale, &cbws_workloads::mi_suite());
    let table = fig13_timeliness(&records);
    println!("Fig. 13 — timeliness and accuracy, % of demand L2 accesses\n");
    println!("{table}");
    save_csv("fig13_timeliness", &table);
}
