//! Regenerates **Fig. 5**: the skewed distribution of distinct CBWS
//! differential vectors — how few vectors cover how many loop iterations.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig05_differential_skew
//! [--scale tiny|small|full]`

use cbws_harness::experiments::{fig05_differential_skew, save_csv, scale_from_args};

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig05] scale = {scale}");
    let table = fig05_differential_skew(scale);
    println!(
        "Fig. 5 — % of iterations covered by the most frequent X% of\n\
         distinct CBWS differential vectors\n"
    );
    println!("{table}");
    save_csv("fig05_differential_skew", &table);
}
