//! Regenerates **Fig. 5**: the skewed distribution of distinct CBWS
//! differential vectors — how few vectors cover how many loop iterations.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig05_differential_skew
//! [--scale tiny|small|full] [--jobs N] [--quiet|--progress]`
//!
//! `--jobs` is accepted for CLI uniformity but has no effect: this binary
//! analyses traces without running simulation sweeps.

use cbws_harness::experiments::{
    fig05_differential_skew, jobs_from_args, save_csv, scale_from_args,
};
use cbws_harness::{PrefetcherKind, RunManifest, SystemConfig};
use cbws_telemetry::{result, status};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    let _ = jobs_from_args(); // validated for CLI uniformity; no sweep here
    status!("[fig05] scale = {scale}");
    let table = fig05_differential_skew(scale);
    result!(
        "Fig. 5 — % of iterations covered by the most frequent X% of\n\
         distinct CBWS differential vectors\n"
    );
    result!("{table}");
    save_csv("fig05_differential_skew", &table);
    RunManifest::new(
        "fig05_differential_skew",
        scale,
        cbws_workloads::mi_suite().iter().map(|w| w.name),
        std::iter::empty::<PrefetcherKind>(),
        SystemConfig::default(),
    )
    .save("fig05_differential_skew");
}
