//! Regenerates **Fig. 12**: last-level-cache MPKI for every prefetcher on
//! the memory-intensive suite (lower is better).
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig12_mpki
//! [--scale tiny|small|full]`

use cbws_harness::experiments::{fig12_mpki, save_csv, scale_from_args, sweep};

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig12] scale = {scale}");
    let records = sweep(scale, &cbws_workloads::mi_suite());
    let table = fig12_mpki(&records);
    println!("Fig. 12 — L2 misses per kilo-instruction (lower is better)\n");
    println!("{table}");
    save_csv("fig12_mpki", &table);
}
