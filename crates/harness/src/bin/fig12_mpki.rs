//! Regenerates **Fig. 12**: last-level-cache MPKI for every prefetcher on
//! the memory-intensive suite (lower is better).
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig12_mpki
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    fig12_mpki, jobs_from_args, save_csv, scale_from_args, sweep_engine,
};
use cbws_harness::{PrefetcherKind, RunManifest, SystemConfig};
use cbws_telemetry::{result, status};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[fig12] scale = {scale}");
    let suite = cbws_workloads::mi_suite();
    let run = sweep_engine(scale, &suite, jobs_from_args());
    let table = fig12_mpki(&run.records);
    result!("Fig. 12 — L2 misses per kilo-instruction (lower is better)\n");
    result!("{table}");
    save_csv("fig12_mpki", &table);
    RunManifest::new(
        "fig12_mpki",
        scale,
        suite.iter().map(|w| w.name),
        PrefetcherKind::ALL,
        SystemConfig::default(),
    )
    .with_timing(run.workers, run.wall_seconds, &run.profiler)
    .with_workers(&run.worker_stats)
    .save("fig12_mpki");
}
