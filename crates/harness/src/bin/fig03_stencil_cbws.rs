//! Regenerates **Figs. 3 & 4** (and the flavour of Table I): the CBWS
//! access matrix of the Parboil Stencil inner loop and its constant
//! differential vectors.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig03_stencil_cbws
//! [--jobs N]`
//!
//! `--jobs` is accepted for CLI uniformity but has no effect: this binary
//! analyses a single tiny trace.

use cbws_harness::experiments::{fig03_stencil_cbws, jobs_from_args};
use cbws_telemetry::result;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let _ = jobs_from_args(); // validated for CLI uniformity; no sweep here
    result!("Figs. 3 & 4 — Stencil CBWS vectors and differentials\n");
    result!("{}", fig03_stencil_cbws(8));
}
