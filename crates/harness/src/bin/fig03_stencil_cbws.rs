//! Regenerates **Figs. 3 & 4** (and the flavour of Table I): the CBWS
//! access matrix of the Parboil Stencil inner loop and its constant
//! differential vectors.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig03_stencil_cbws`

use cbws_harness::experiments::fig03_stencil_cbws;

fn main() {
    println!("Figs. 3 & 4 — Stencil CBWS vectors and differentials\n");
    print!("{}", fig03_stencil_cbws(8));
}
