//! Regenerates **Fig. 14**: IPC normalized to SMS for all 30 benchmarks
//! (higher is better) — the paper's headline result.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig14_speedup
//! [--scale tiny|small|full]`

use cbws_harness::experiments::{fig14_speedup, save_csv, scale_from_args};

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig14] scale = {scale}");
    let all: Vec<_> = cbws_workloads::ALL.iter().collect();
    let records = cbws_harness::experiments::sweep_parallel(scale, &all);
    let table = fig14_speedup(&records);
    println!("Fig. 14 — IPC normalized to SMS (higher is better)\n");
    println!("{table}");
    save_csv("fig14_speedup", &table);
}
