//! Regenerates **Fig. 14**: IPC normalized to SMS for all 30 benchmarks
//! (higher is better) — the paper's headline result.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig14_speedup
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    fig14_speedup, jobs_from_args, save_csv, scale_from_args, sweep_engine,
};
use cbws_harness::{PrefetcherKind, RunManifest, SystemConfig};
use cbws_telemetry::{result, status};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[fig14] scale = {scale}");
    let all: Vec<_> = cbws_workloads::ALL.iter().collect();
    let run = sweep_engine(scale, &all, jobs_from_args());
    let table = fig14_speedup(&run.records);
    result!("Fig. 14 — IPC normalized to SMS (higher is better)\n");
    result!("{table}");
    save_csv("fig14_speedup", &table);
    RunManifest::new(
        "fig14_speedup",
        scale,
        all.iter().map(|w| w.name),
        PrefetcherKind::ALL,
        SystemConfig::default(),
    )
    .with_timing(run.workers, run.wall_seconds, &run.profiler)
    .with_workers(&run.worker_stats)
    .save("fig14_speedup");
}
