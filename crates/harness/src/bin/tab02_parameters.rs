//! Prints **Table II**: the simulation parameters in force.
//!
//! Usage: `cargo run --release -p cbws-harness --bin tab02_parameters`

use cbws_harness::experiments::{save_csv, tab02_parameters};
use cbws_harness::SystemConfig;
use cbws_telemetry::result;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let table = tab02_parameters(&SystemConfig::default());
    result!("Table II — simulation parameters\n");
    result!("{table}");
    save_csv("tab02_parameters", &table);
}
