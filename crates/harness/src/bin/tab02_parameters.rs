//! Prints **Table II**: the simulation parameters in force.
//!
//! Usage: `cargo run --release -p cbws-harness --bin tab02_parameters`

use cbws_harness::experiments::{save_csv, tab02_parameters};
use cbws_harness::SystemConfig;

fn main() {
    let table = tab02_parameters(&SystemConfig::default());
    println!("Table II — simulation parameters\n");
    println!("{table}");
    save_csv("tab02_parameters", &table);
}
