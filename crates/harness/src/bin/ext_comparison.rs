//! **Extension experiment** (beyond the paper): compares the paper's seven
//! configurations against five additional schemes —
//!
//! * AMPM (Ishii et al.), the zone-based prefetcher the paper's related
//!   work argues finds within-iteration patterns before cross-iteration
//!   ones;
//! * FDP(SMS) (Srinath et al.), dynamic-feedback throttling on SMS, versus
//!   CBWS's *static* compiler-hint-driven aggressiveness;
//! * CBWSx4, a four-context CBWS that survives interleaved tight loops;
//! * STeMS-lite (Somogyi et al.), temporally chained paced footprints at
//!   the ~640 KB storage point the paper contrasts against;
//! * Markov (Joseph & Grunwald), pair-correlation prefetching.
//!
//! Usage: `cargo run --release -p cbws-harness --bin ext_comparison
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    get, jobs_from_args, result_cache_from_args, save_csv, scale_from_args, session_spans,
    write_session_spans,
};
use cbws_harness::{Engine, EngineConfig, PrefetcherKind, RunManifest, SystemConfig};
use cbws_stats::{geomean, TextTable};
use cbws_telemetry::{result, status};
use cbws_workloads::mi_suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[ext] scale = {scale}");
    let kinds: Vec<PrefetcherKind> = PrefetcherKind::ALL
        .into_iter()
        .chain(PrefetcherKind::EXTENDED)
        .collect();

    let suite = mi_suite();
    let engine = Engine::new(EngineConfig {
        jobs: jobs_from_args(),
        spans: session_spans().clone(),
        result_cache: result_cache_from_args(),
        ..EngineConfig::default()
    });
    let run = engine.run(scale, &suite, &kinds);
    status!(
        "[ext] {} jobs on {} workers in {:.2} s",
        run.job_count,
        run.workers,
        run.wall_seconds
    );
    let records = &run.records;

    let mut table = TextTable::new(
        std::iter::once("benchmark".to_string())
            .chain(kinds.iter().map(|k| k.name().to_string()))
            .collect(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for w in mi_suite() {
        let sms = get(records, w.name, "SMS").ipc();
        let mut row = vec![w.name.to_string()];
        for (i, &kind) in kinds.iter().enumerate() {
            let v = get(records, w.name, kind.name()).ipc() / sms;
            row.push(format!("{v:.3}"));
            cols[i].push(v);
        }
        table.row(row);
    }
    let mut avg = vec!["geomean".to_string()];
    for c in &cols {
        avg.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    table.row(avg);

    result!("Extended comparison — IPC normalized to SMS (MI suite)\n");
    result!("{table}");
    save_csv("ext_comparison", &table);
    write_session_spans();
    RunManifest::new(
        "ext_comparison",
        scale,
        suite.iter().map(|w| w.name),
        kinds.iter().copied(),
        SystemConfig::default(),
    )
    .with_timing(run.workers, run.wall_seconds, &run.profiler)
    .with_workers(&run.worker_stats)
    .save("ext_comparison");

    // Storage context for the comparison.
    let cfg = SystemConfig::default();
    result!("Storage budgets:");
    for &kind in &kinds {
        result!(
            "  {:<10} {:>7.2} KB",
            kind.name(),
            kind.storage_bits(&cfg) as f64 / 8192.0
        );
    }
}
