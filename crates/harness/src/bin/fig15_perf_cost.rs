//! Regenerates **Fig. 15**: performance/cost — IPC per byte read from
//! memory, normalized to the no-prefetch configuration (higher is better).
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig15_perf_cost
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    fig15_perf_cost, jobs_from_args, save_csv, scale_from_args, sweep_engine,
};
use cbws_harness::{PrefetcherKind, RunManifest, SystemConfig};
use cbws_telemetry::{result, status};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[fig15] scale = {scale}");
    let suite = cbws_workloads::mi_suite();
    let run = sweep_engine(scale, &suite, jobs_from_args());
    let table = fig15_perf_cost(&run.records);
    result!("Fig. 15 — IPC / bytes read, normalized to no-prefetch\n");
    result!("{table}");
    save_csv("fig15_perf_cost", &table);
    RunManifest::new(
        "fig15_perf_cost",
        scale,
        suite.iter().map(|w| w.name),
        PrefetcherKind::ALL,
        SystemConfig::default(),
    )
    .with_timing(run.workers, run.wall_seconds, &run.profiler)
    .with_workers(&run.worker_stats)
    .save("fig15_perf_cost");
}
