//! Regenerates **Fig. 15**: performance/cost — IPC per byte read from
//! memory, normalized to the no-prefetch configuration (higher is better).
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig15_perf_cost
//! [--scale tiny|small|full]`

use cbws_harness::experiments::{fig15_perf_cost, save_csv, scale_from_args, sweep};

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig15] scale = {scale}");
    let records = sweep(scale, &cbws_workloads::mi_suite());
    let table = fig15_perf_cost(&records);
    println!("Fig. 15 — IPC / bytes read, normalized to no-prefetch\n");
    println!("{table}");
    save_csv("fig15_perf_cost", &table);
}
