//! Regenerates **Fig. 1**: fraction of runtime spent executing tight,
//! innermost loops for the memory-intensive benchmarks.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig01_loop_fraction
//! [--scale tiny|small|full]`

use cbws_harness::experiments::{fig01_loop_fraction, save_csv, scale_from_args};

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig01] scale = {scale}");
    let table = fig01_loop_fraction(scale);
    println!("Fig. 1 — runtime fraction in tight innermost loops (no-prefetch)\n");
    println!("{table}");
    save_csv("fig01_loop_fraction", &table);
}
