//! Regenerates **Fig. 1**: fraction of runtime spent executing tight,
//! innermost loops for the memory-intensive benchmarks.
//!
//! Usage: `cargo run --release -p cbws-harness --bin fig01_loop_fraction
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    fig01_from_records, jobs_from_args, result_cache_from_args, save_csv, scale_from_args,
    session_spans, write_session_spans,
};
use cbws_harness::{Engine, EngineConfig, PrefetcherKind, RunManifest, SystemConfig};
use cbws_telemetry::{result, status};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[fig01] scale = {scale}");
    let suite = cbws_workloads::mi_suite();
    let engine = Engine::new(EngineConfig {
        jobs: jobs_from_args(),
        spans: session_spans().clone(),
        result_cache: result_cache_from_args(),
        ..EngineConfig::default()
    });
    let run = engine.run(scale, &suite, &[PrefetcherKind::None]);
    let table = fig01_from_records(&run.records);
    result!("Fig. 1 — runtime fraction in tight innermost loops (no-prefetch)\n");
    result!("{table}");
    save_csv("fig01_loop_fraction", &table);
    write_session_spans();
    RunManifest::new(
        "fig01_loop_fraction",
        scale,
        suite.iter().map(|w| w.name),
        [PrefetcherKind::None],
        SystemConfig::default(),
    )
    .with_timing(run.workers, run.wall_seconds, &run.profiler)
    .with_workers(&run.worker_stats)
    .save("fig01_loop_fraction");
}
