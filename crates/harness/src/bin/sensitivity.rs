//! **Extension experiment**: sensitivity of the headline result to the L2
//! capacity and to the memory latency. The paper evaluates a single design
//! point (2 MB L2, 300-cycle memory); this sweep checks that the CBWS+SMS
//! advantage is not an artifact of that point.
//!
//! Usage: `cargo run --release -p cbws-harness --bin sensitivity
//! [--scale tiny|small|full] [--jobs N] [--spans-out F]
//! [--resume] [--no-result-cache] [--quiet|--progress]`

use cbws_harness::experiments::{
    jobs_from_args, result_cache_from_args, save_csv, scale_from_args, session_spans,
    write_session_spans,
};
use cbws_harness::{
    Engine, EngineConfig, EngineRun, PrefetcherKind, RunManifest, SystemConfig, WorkerStats,
};
use cbws_stats::{geomean, TextTable};
use cbws_telemetry::{result, status, Profiler, Telemetry};
use cbws_workloads::{mi_suite, Scale};

/// Runs the MI suite under `cfg` through the engine and returns the
/// geomean CBWS+SMS / SMS speedup plus the run's timing.
fn geomean_speedup(scale: Scale, cfg: SystemConfig, jobs: usize) -> (f64, EngineRun) {
    let engine = Engine::new(EngineConfig {
        jobs,
        system: cfg,
        telemetry: Telemetry::disabled(),
        spans: session_spans().clone(),
        // Each sensitivity point's config is part of the result key, so
        // cached entries from other points can never be served here.
        result_cache: result_cache_from_args(),
        ..EngineConfig::default()
    });
    let run = engine.run(
        scale,
        &mi_suite(),
        &[PrefetcherKind::Sms, PrefetcherKind::CbwsSms],
    );
    // Workload-major order: each pair is (SMS, CBWS+SMS) for one workload.
    let speedup = geomean(run.records.chunks(2).map(|p| p[1].ipc() / p[0].ipc()));
    (speedup, run)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    let jobs = jobs_from_args();
    status!("[sensitivity] scale = {scale}");
    let mut profiler = Profiler::new();
    let mut wall = 0.0;
    let mut workers = 0;
    let mut worker_stats: Vec<WorkerStats> = Vec::new();
    let merge_stats = |stats: &[WorkerStats], acc: &mut Vec<WorkerStats>| {
        for s in stats {
            match acc.iter_mut().find(|a| a.worker == s.worker) {
                Some(a) => a.merge(s),
                None => acc.push(s.clone()),
            }
        }
    };

    // L2 capacity sweep.
    let mut l2 = TextTable::new(vec![
        "L2 size".into(),
        "CBWS+SMS vs SMS (geomean, MI)".into(),
    ]);
    for mb in [1u64, 2, 4] {
        let mut cfg = SystemConfig::default();
        cfg.mem.l2.size_bytes = mb * 1024 * 1024;
        status!("[sensitivity] L2 = {mb} MB");
        let (speedup, run) = geomean_speedup(scale, cfg, jobs);
        profiler.merge(&run.profiler);
        wall += run.wall_seconds;
        workers = run.workers;
        merge_stats(&run.worker_stats, &mut worker_stats);
        l2.row(vec![format!("{mb} MB"), format!("{speedup:.3}")]);
    }
    result!("Sensitivity — L2 capacity (Table II point: 2 MB)\n\n{l2}");
    save_csv("sensitivity_l2", &l2);

    // Memory latency sweep.
    let mut lat = TextTable::new(vec![
        "memory latency".into(),
        "CBWS+SMS vs SMS (geomean, MI)".into(),
    ]);
    for cycles in [150u64, 300, 600] {
        let mut cfg = SystemConfig::default();
        cfg.mem.memory_latency = cycles;
        status!("[sensitivity] memory = {cycles} cycles");
        let (speedup, run) = geomean_speedup(scale, cfg, jobs);
        profiler.merge(&run.profiler);
        wall += run.wall_seconds;
        workers = run.workers;
        merge_stats(&run.worker_stats, &mut worker_stats);
        lat.row(vec![format!("{cycles} cycles"), format!("{speedup:.3}")]);
    }
    result!("Sensitivity — memory latency (Table II point: 300 cycles)\n\n{lat}");
    save_csv("sensitivity_latency", &lat);

    let manifest = RunManifest::new(
        "sensitivity",
        scale,
        mi_suite().iter().map(|w| w.name),
        [PrefetcherKind::Sms, PrefetcherKind::CbwsSms],
        SystemConfig::default(),
    )
    .with_timing(workers, wall, &profiler)
    .with_workers(&worker_stats);
    write_session_spans();
    manifest.save("sensitivity_l2");
    manifest.save("sensitivity_latency");
}
