//! **Extension experiment**: sensitivity of the headline result to the L2
//! capacity and to the memory latency. The paper evaluates a single design
//! point (2 MB L2, 300-cycle memory); this sweep checks that the CBWS+SMS
//! advantage is not an artifact of that point.
//!
//! Usage: `cargo run --release -p cbws-harness --bin sensitivity
//! [--scale tiny|small|full] [--quiet|--progress]`

use cbws_harness::experiments::{save_csv, scale_from_args};
use cbws_harness::{PrefetcherKind, RunManifest, Simulator, SystemConfig};
use cbws_stats::{geomean, TextTable};
use cbws_telemetry::{result, status};
use cbws_workloads::{mi_suite, Scale};

fn geomean_speedup(scale: Scale, cfg: SystemConfig) -> f64 {
    let sim = Simulator::new(cfg);
    let mut ratios = Vec::new();
    for w in mi_suite() {
        let trace = w.generate(scale);
        let sms = sim.run(w.name, true, &trace, PrefetcherKind::Sms);
        let hybrid = sim.run(w.name, true, &trace, PrefetcherKind::CbwsSms);
        ratios.push(hybrid.ipc() / sms.ipc());
    }
    geomean(ratios)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[sensitivity] scale = {scale}");

    // L2 capacity sweep.
    let mut l2 = TextTable::new(vec![
        "L2 size".into(),
        "CBWS+SMS vs SMS (geomean, MI)".into(),
    ]);
    for mb in [1u64, 2, 4] {
        let mut cfg = SystemConfig::default();
        cfg.mem.l2.size_bytes = mb * 1024 * 1024;
        status!("[sensitivity] L2 = {mb} MB");
        l2.row(vec![
            format!("{mb} MB"),
            format!("{:.3}", geomean_speedup(scale, cfg)),
        ]);
    }
    result!("Sensitivity — L2 capacity (Table II point: 2 MB)\n\n{l2}");
    save_csv("sensitivity_l2", &l2);

    // Memory latency sweep.
    let mut lat = TextTable::new(vec![
        "memory latency".into(),
        "CBWS+SMS vs SMS (geomean, MI)".into(),
    ]);
    for cycles in [150u64, 300, 600] {
        let mut cfg = SystemConfig::default();
        cfg.mem.memory_latency = cycles;
        status!("[sensitivity] memory = {cycles} cycles");
        lat.row(vec![
            format!("{cycles} cycles"),
            format!("{:.3}", geomean_speedup(scale, cfg)),
        ]);
    }
    result!("Sensitivity — memory latency (Table II point: 300 cycles)\n\n{lat}");
    save_csv("sensitivity_latency", &lat);

    let manifest = RunManifest::new(
        "sensitivity",
        scale,
        mi_suite().iter().map(|w| w.name),
        [PrefetcherKind::Sms, PrefetcherKind::CbwsSms],
        SystemConfig::default(),
    );
    manifest.save("sensitivity_l2");
    manifest.save("sensitivity_latency");
}
