//! Regenerates every table and figure of the paper in one run, sharing a
//! single sweep across Figs. 12-15. Text tables go to stdout; CSVs and SVG
//! figures go to `results/`.
//!
//! Usage: `cargo run --release -p cbws-harness --bin all_experiments
//! [--scale tiny|small|full]`

use cbws_harness::experiments::{
    fig01_loop_fraction, fig03_stencil_cbws, fig05_differential_skew, fig05_svg, fig12_mpki,
    fig12_svg, fig13_svg, fig13_timeliness, fig14_speedup, fig14_svg, fig15_perf_cost,
    fig15_svg, save_csv, save_svg, scale_from_args, sweep_parallel, tab02_parameters,
    tab03_storage,
};
use cbws_harness::SystemConfig;

fn main() {
    let scale = scale_from_args();
    eprintln!("[all] scale = {scale}");
    let cfg = SystemConfig::default();

    let tab02 = tab02_parameters(&cfg);
    println!("Table II — simulation parameters\n\n{tab02}");
    save_csv("tab02_parameters", &tab02);

    let tab03 = tab03_storage(&cfg);
    println!("Table III — prefetcher storage budgets\n\n{tab03}");
    save_csv("tab03_storage", &tab03);

    println!("Figs. 3 & 4 — Stencil CBWS vectors and differentials\n");
    println!("{}", fig03_stencil_cbws(8));

    let fig01 = fig01_loop_fraction(scale);
    println!("Fig. 1 — runtime fraction in tight innermost loops\n\n{fig01}");
    save_csv("fig01_loop_fraction", &fig01);

    let fig05 = fig05_differential_skew(scale);
    println!("Fig. 5 — CBWS differential skew\n\n{fig05}");
    save_csv("fig05_differential_skew", &fig05);
    save_svg("fig05_differential_skew", &fig05_svg(scale));

    // One sweep over all 30 benchmarks backs Figs. 12-15.
    let all: Vec<_> = cbws_workloads::ALL.iter().collect();
    let records = sweep_parallel(scale, &all);

    let fig12 = fig12_mpki(&records);
    println!("Fig. 12 — L2 MPKI (lower is better)\n\n{fig12}");
    save_csv("fig12_mpki", &fig12);
    save_svg("fig12_mpki", &fig12_svg(&records));

    let fig13 = fig13_timeliness(&records);
    println!("Fig. 13 — timeliness/accuracy (% of demand L2 accesses)\n\n{fig13}");
    save_csv("fig13_timeliness", &fig13);
    save_svg("fig13_timeliness", &fig13_svg(&records));

    let fig14 = fig14_speedup(&records);
    println!("Fig. 14 — IPC normalized to SMS (higher is better)\n\n{fig14}");
    save_csv("fig14_speedup", &fig14);
    save_svg("fig14_speedup", &fig14_svg(&records));

    let fig15 = fig15_perf_cost(&records);
    println!("Fig. 15 — IPC / bytes read, normalized to no-prefetch\n\n{fig15}");
    save_csv("fig15_perf_cost", &fig15);
    save_svg("fig15_perf_cost", &fig15_svg(&records));

    eprintln!("[all] text tables above; CSVs and SVG figures in results/");
}
