//! Regenerates every table and figure of the paper in one run, sharing a
//! single sweep across Figs. 12-15. Text tables go to stdout; CSVs and SVG
//! figures go to `results/`, each with a `.manifest.json` describing the
//! run that produced it.
//!
//! Usage: `cargo run --release -p cbws-harness --bin all_experiments
//! [--scale tiny|small|full] [--jobs N] [--resume] [--no-result-cache]
//! [--quiet|--progress]`

use cbws_harness::experiments::{
    fig01_loop_fraction, fig03_stencil_cbws, fig05_differential_skew, fig05_svg, fig12_mpki,
    fig12_svg, fig13_svg, fig13_timeliness, fig14_speedup, fig14_svg, fig15_perf_cost, fig15_svg,
    jobs_from_args, save_csv, save_svg, scale_from_args, session_spans, sweep_engine,
    tab02_parameters, tab03_storage, write_session_spans,
};
use cbws_harness::{PrefetcherKind, RunManifest, SystemConfig};
use cbws_telemetry::{detail, result, status, Profiler};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let scale = scale_from_args();
    status!("[all] scale = {scale}");
    let cfg = SystemConfig::default();
    let mut profiler = Profiler::new();
    profiler.attach_spans(session_spans().clone());

    profiler.begin("static_tables");
    let tab02 = tab02_parameters(&cfg);
    result!("Table II — simulation parameters\n\n{tab02}");
    save_csv("tab02_parameters", &tab02);

    let tab03 = tab03_storage(&cfg);
    result!("Table III — prefetcher storage budgets\n\n{tab03}");
    save_csv("tab03_storage", &tab03);

    result!("Figs. 3 & 4 — Stencil CBWS vectors and differentials\n");
    result!("{}", fig03_stencil_cbws(8));

    profiler.begin("trace_analysis");
    let fig01 = fig01_loop_fraction(scale);
    result!("Fig. 1 — runtime fraction in tight innermost loops\n\n{fig01}");
    save_csv("fig01_loop_fraction", &fig01);

    let fig05 = fig05_differential_skew(scale);
    result!("Fig. 5 — CBWS differential skew\n\n{fig05}");
    save_csv("fig05_differential_skew", &fig05);
    save_svg("fig05_differential_skew", &fig05_svg(scale));

    // One engine sweep over all 30 benchmarks backs Figs. 12-15.
    profiler.begin("sweep");
    let all: Vec<_> = cbws_workloads::ALL.iter().collect();
    let run = sweep_engine(scale, &all, jobs_from_args());
    let records = run.records;

    profiler.begin("figures");
    let fig12 = fig12_mpki(&records);
    result!("Fig. 12 — L2 MPKI (lower is better)\n\n{fig12}");
    save_csv("fig12_mpki", &fig12);
    save_svg("fig12_mpki", &fig12_svg(&records));

    let fig13 = fig13_timeliness(&records);
    result!("Fig. 13 — timeliness/accuracy (% of demand L2 accesses)\n\n{fig13}");
    save_csv("fig13_timeliness", &fig13);
    save_svg("fig13_timeliness", &fig13_svg(&records));

    let fig14 = fig14_speedup(&records);
    result!("Fig. 14 — IPC normalized to SMS (higher is better)\n\n{fig14}");
    save_csv("fig14_speedup", &fig14);
    save_svg("fig14_speedup", &fig14_svg(&records));

    let fig15 = fig15_perf_cost(&records);
    result!("Fig. 15 — IPC / bytes read, normalized to no-prefetch\n\n{fig15}");
    save_csv("fig15_perf_cost", &fig15);
    save_svg("fig15_perf_cost", &fig15_svg(&records));
    profiler.end();

    profiler.merge(&run.profiler);
    RunManifest::new(
        "all_experiments",
        scale,
        all.iter().map(|w| w.name),
        PrefetcherKind::ALL,
        cfg,
    )
    .with_timing(run.workers, run.wall_seconds, &profiler)
    .with_workers(&run.worker_stats)
    .save("all_experiments");
    write_session_spans();

    detail!("[all] phase timings:\n{}", profiler.report());
    status!("[all] text tables above; CSVs and SVG figures in results/");
}
