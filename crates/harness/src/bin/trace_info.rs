//! Trace inspection tool: generates a workload's trace and prints its
//! structural profile — instruction mix, block statistics, working-set-size
//! distribution (§IV-A's 16-line sufficiency statistic), and the CBWS
//! differential skew.
//!
//! Usage: `cargo run --release -p cbws-harness --bin trace_info --
//! <workload> [--scale tiny|small|full] [--jobs N]`
//!
//! `--jobs` is accepted for CLI uniformity but has no effect: this binary
//! generates and inspects a single trace.
//!
//! List available workloads with `--list`.

use cbws_core::analysis::{collect_block_histories, DifferentialSkew};
use cbws_harness::experiments::{jobs_from_args, scale_from_args};
use cbws_telemetry::result;
use cbws_workloads::{by_name, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    if args.iter().any(|a| a == "--list") {
        result!("{:<26} {:<10} {:<16} pattern", "name", "suite", "group");
        for w in ALL {
            result!(
                "{:<26} {:<10} {:<16} {}",
                w.name,
                w.suite.to_string(),
                format!("{:?}", w.group),
                w.pattern
            );
        }
        return;
    }
    // The workload name is the first token that is neither a flag nor the
    // value of a value-taking flag (`--scale tiny`, `--jobs 4`).
    let mut skip_value = false;
    let Some(name) = args.iter().find(|a| {
        if skip_value {
            skip_value = false;
            return false;
        }
        if *a == "--scale" || *a == "--jobs" {
            skip_value = true;
            return false;
        }
        !a.starts_with("--")
    }) else {
        eprintln!("usage: trace_info <workload> [--scale tiny|small|full] [--jobs N] | --list");
        std::process::exit(2);
    };
    let Some(w) = by_name(name) else {
        eprintln!("unknown workload `{name}`; try --list");
        std::process::exit(2);
    };

    let scale = scale_from_args();
    let _ = jobs_from_args(); // validated for CLI uniformity; no sweep here
    let trace = cbws_workloads::trace_cache::generate_shared(w, scale);
    let s = trace.stats();

    result!("workload : {} ({}, {:?})", w.name, w.suite, w.group);
    result!("pattern  : {}", w.pattern);
    result!("scale    : {scale}");
    result!("");
    result!("instructions      : {}", s.instructions);
    result!(
        "memory accesses   : {} ({} loads, {} stores)",
        s.mem_accesses,
        s.loads,
        s.stores
    );
    result!("branches          : {}", s.branches);
    result!(
        "annotated blocks  : {} dynamic, {} static",
        s.dynamic_blocks,
        s.static_blocks
    );
    result!(
        "in-block fraction : {:.1}% of instructions",
        s.block_instruction_fraction() * 100.0
    );
    result!(
        "blocks within 16 lines : {:.1}%  (the paper's >98% claim, §IV-A)",
        s.block_ws_within(16) * 100.0
    );

    // Working-set-size histogram (compact, non-zero buckets only).
    result!("\nper-block working-set sizes (lines -> blocks):");
    for (size, count) in s.ws_histogram.iter().enumerate() {
        if *count > 0 {
            let label = if size + 1 == s.ws_histogram.len() {
                format!("{size}+")
            } else {
                size.to_string()
            };
            result!("  {label:>4} : {count}");
        }
    }

    // Differential skew.
    let histories = collect_block_histories(&*trace, 16);
    let skew = DifferentialSkew::from_histories(histories.values());
    result!(
        "\nCBWS differential alphabet : {} distinct vectors",
        skew.distinct()
    );
    for frac in [0.01, 0.05, 0.25] {
        result!(
            "  top {:>4.0}% of vectors cover {:.1}% of iterations",
            frac * 100.0,
            skew.coverage_at(frac) * 100.0
        );
    }
    result!("\nmost frequent differentials:");
    for (d, c) in skew.counts.iter().take(5) {
        result!("  {c:>8} x {d}");
    }
}
