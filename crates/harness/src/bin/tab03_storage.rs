//! Regenerates **Table III**: hardware storage requirements of the
//! evaluated prefetchers.
//!
//! Usage: `cargo run --release -p cbws-harness --bin tab03_storage
//! [--jobs N]`
//!
//! `--jobs` is accepted for CLI uniformity but has no effect: this binary
//! runs no simulations.

use cbws_harness::experiments::{jobs_from_args, save_csv, tab03_storage};
use cbws_harness::SystemConfig;
use cbws_telemetry::result;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    cbws_telemetry::log::apply_cli_flags(&args);
    let _ = jobs_from_args(); // validated for CLI uniformity; no sweep here
    let table = tab03_storage(&SystemConfig::default());
    result!("Table III — prefetcher storage budgets\n");
    result!("{table}");
    save_csv("tab03_storage", &table);
}
