//! Regenerates **Table III**: hardware storage requirements of the
//! evaluated prefetchers.
//!
//! Usage: `cargo run --release -p cbws-harness --bin tab03_storage`

use cbws_harness::experiments::{save_csv, tab03_storage};
use cbws_harness::SystemConfig;

fn main() {
    let table = tab03_storage(&SystemConfig::default());
    println!("Table III — prefetcher storage budgets\n");
    println!("{table}");
    save_csv("tab03_storage", &table);
}
