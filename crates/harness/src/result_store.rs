//! Persistent on-disk simulation **result** store.
//!
//! The [`cbws_workloads::trace_store`] made trace *generation* incremental;
//! this module does the same for the simulations themselves. Every
//! `(workload, prefetcher, scale)` job the engine runs is a deterministic
//! pure function of (a) the workload's trace, (b) the prefetcher kind and
//! the full [`SystemConfig`], and (c) the simulator code — so its
//! [`RunRecord`] can be stored once and served forever, as long as the key
//! captures exactly those inputs. A hit skips the trace load *and* the
//! simulation; a miss simulates and persists. Repeated sweeps, interrupted
//! sweeps restarted with `--resume`, and CI reruns then pay only for the
//! jobs whose inputs actually changed.
//!
//! # Key
//!
//! The 64-bit key hash folds, in order:
//!
//! - the per-workload trace hash ([`cbws_workloads::trace_store::workload_hash`],
//!   the PR that introduced format v2's per-suite FNV scheme) — covers the
//!   DSL sources the trace is generated from,
//! - the scale code and workload name,
//! - the prefetcher kind name and the config hash ([`config_hash`], FNV
//!   over the serialized [`SystemConfig`]),
//! - the simulator-code version hash ([`sim_version_hash`], FNV over every
//!   source file of the replay + simulation stack, embedded at compile
//!   time via `include_str!`).
//!
//! Any edit to a kernel, a prefetcher, the core, the memory hierarchy, the
//! replay path, or the config in force changes the key hash; the stored
//! entry is then invalidated and regenerated on next access. Entries are
//! **content-addressed** by that key, not trusted by mtime or file name.
//!
//! # File format (version 1, little-endian)
//!
//! | field | size | contents |
//! |---|---|---|
//! | magic | 8 | `b"CBWSRSLT"` |
//! | format version | 4 | `u32`, currently 1 |
//! | key hash | 8 | FNV-1a key described above |
//! | payload checksum | 8 | FNV-1a of the payload bytes |
//! | payload length | 8 | `u64` |
//! | payload | var | the [`RunRecord`] as JSON |
//!
//! One file per `(workload, scale, prefetcher, config hash)` under
//! `CBWS_RESULT_STORE_DIR` (default: `target/result-store/` of the
//! workspace) — the config hash in the name lets sensitivity sweeps that
//! revisit one `(workload, scale, prefetcher)` triple under many
//! configurations coexist instead of overwriting each other. Files are
//! written atomically (unique temporary file + rename), so a sweep killed
//! mid-write can never leave a torn entry — the property `--resume` relies
//! on.
//!
//! # Byte budget and eviction
//!
//! `CBWS_RESULT_CACHE_BYTES` caps the store's total size (default 64 MiB).
//! After each write the store evicts oldest-modified entries first until it
//! is back under budget; a hit bumps the entry's mtime, so the order is
//! LRU. The entry just written is never evicted by its own write.
//!
//! # Telemetry
//!
//! `result_store.hit` / `.miss` / `.write` / `.invalidate` / `.evict`
//! counters plus `result_store.write_bytes` (the bytes each write adds,
//! which the sweep server's per-client quotas charge against),
//! `result_store.load_us` and `result_store.store_us`, and
//! `result.load` / `result.write` spans when a collector is attached.

use crate::runner::{PrefetcherKind, SystemConfig};
use cbws_stats::RunRecord;
use cbws_telemetry::{warn, Spans, Telemetry};
use cbws_workloads::trace_store::{fnv1a, workload_hash};
use cbws_workloads::{Scale, WorkloadSpec};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Magic bytes opening every result-store file.
pub const MAGIC: &[u8; 8] = b"CBWSRSLT";

/// Current file-format version.
pub const FORMAT_VERSION: u32 = 1;

/// Environment variable selecting the store directory.
pub const DIR_ENV: &str = "CBWS_RESULT_STORE_DIR";

/// Environment variable capping the store's total size in bytes.
pub const BUDGET_ENV: &str = "CBWS_RESULT_CACHE_BYTES";

/// Default byte budget when [`BUDGET_ENV`] is unset: far above a full
/// sweep's footprint (a record is ~1 KB, the full matrix is ~210 entries
/// per scale), so eviction only engages when someone sweeps many configs.
pub const DEFAULT_BUDGET_BYTES: u64 = 64 * 1024 * 1024;

/// File extension of store entries.
const EXT: &str = "cbwsresult";

/// Folds `bytes` into an FNV-1a state.
fn fnv_fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every source file whose edit can change a simulation result given the
/// same packed trace: the replay path (`cbws-trace`), the simulated core
/// and memory system, every prefetcher, the CBWS predictor stack, and the
/// harness glue that drives them. Embedded at compile time so version skew
/// between a store and a binary is detected by content, not by guesswork.
const SIM_SOURCES: &[(&str, &str)] = &[
    ("harness/runner.rs", include_str!("runner.rs")),
    ("harness/dispatch.rs", include_str!("dispatch.rs")),
    ("harness/prefetched.rs", include_str!("prefetched.rs")),
    ("core/lib.rs", include_str!("../../core/src/lib.rs")),
    (
        "core/analysis.rs",
        include_str!("../../core/src/analysis.rs"),
    ),
    ("core/hybrid.rs", include_str!("../../core/src/hybrid.rs")),
    ("core/multi.rs", include_str!("../../core/src/multi.rs")),
    (
        "core/predictor.rs",
        include_str!("../../core/src/predictor.rs"),
    ),
    ("core/vector.rs", include_str!("../../core/src/vector.rs")),
    (
        "prefetchers/lib.rs",
        include_str!("../../prefetchers/src/lib.rs"),
    ),
    (
        "prefetchers/ampm.rs",
        include_str!("../../prefetchers/src/ampm.rs"),
    ),
    (
        "prefetchers/fdp.rs",
        include_str!("../../prefetchers/src/fdp.rs"),
    ),
    (
        "prefetchers/ghb.rs",
        include_str!("../../prefetchers/src/ghb.rs"),
    ),
    (
        "prefetchers/instrumented.rs",
        include_str!("../../prefetchers/src/instrumented.rs"),
    ),
    (
        "prefetchers/markov.rs",
        include_str!("../../prefetchers/src/markov.rs"),
    ),
    (
        "prefetchers/sms.rs",
        include_str!("../../prefetchers/src/sms.rs"),
    ),
    (
        "prefetchers/stems.rs",
        include_str!("../../prefetchers/src/stems.rs"),
    ),
    (
        "prefetchers/stride.rs",
        include_str!("../../prefetchers/src/stride.rs"),
    ),
    ("sim-cpu/lib.rs", include_str!("../../sim-cpu/src/lib.rs")),
    (
        "sim-cpu/branch.rs",
        include_str!("../../sim-cpu/src/branch.rs"),
    ),
    (
        "sim-cpu/config.rs",
        include_str!("../../sim-cpu/src/config.rs"),
    ),
    ("sim-cpu/core.rs", include_str!("../../sim-cpu/src/core.rs")),
    ("sim-mem/lib.rs", include_str!("../../sim-mem/src/lib.rs")),
    (
        "sim-mem/cache.rs",
        include_str!("../../sim-mem/src/cache.rs"),
    ),
    (
        "sim-mem/config.rs",
        include_str!("../../sim-mem/src/config.rs"),
    ),
    ("sim-mem/dram.rs", include_str!("../../sim-mem/src/dram.rs")),
    (
        "sim-mem/hierarchy.rs",
        include_str!("../../sim-mem/src/hierarchy.rs"),
    ),
    (
        "sim-mem/stats.rs",
        include_str!("../../sim-mem/src/stats.rs"),
    ),
    ("trace/lib.rs", include_str!("../../trace/src/lib.rs")),
    ("trace/addr.rs", include_str!("../../trace/src/addr.rs")),
    (
        "trace/builder.rs",
        include_str!("../../trace/src/builder.rs"),
    ),
    ("trace/event.rs", include_str!("../../trace/src/event.rs")),
    ("trace/packed.rs", include_str!("../../trace/src/packed.rs")),
    ("trace/stats.rs", include_str!("../../trace/src/stats.rs")),
    ("trace/varint.rs", include_str!("../../trace/src/varint.rs")),
    ("stats/lib.rs", include_str!("../../stats/src/lib.rs")),
];

/// FNV-1a hash over every simulator source file (framed by name, like
/// [`cbws_workloads::trace_store::workload_hash`]), folded once per
/// process. Two binaries agree on this hash exactly when they were built
/// from identical simulation sources.
pub fn sim_version_hash() -> u64 {
    static HASH: OnceLock<u64> = OnceLock::new();
    *HASH.get_or_init(|| {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (name, body) in SIM_SOURCES {
            h = fnv_fold_bytes(h, name.as_bytes());
            h = fnv_fold_bytes(h, &[0u8]);
            h = fnv_fold_bytes(h, body.as_bytes());
        }
        h
    })
}

/// FNV-1a hash of a prefetcher kind + system configuration pair: the name
/// of the kind and the JSON form of the full [`SystemConfig`]. Sensitivity
/// sweeps that vary cache sizes or latencies therefore key their results
/// apart from the default configuration's.
pub fn config_hash(kind: PrefetcherKind, system: &SystemConfig) -> u64 {
    let json = serde_json::to_string(system).expect("SystemConfig serialization is infallible");
    let mut h = fnv1a(kind.name().as_bytes());
    h = fnv_fold_bytes(h, &[0u8]);
    fnv_fold_bytes(h, json.as_bytes())
}

fn scale_code(scale: Scale) -> u8 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
        Scale::Huge => 3,
    }
}

/// The complete content address of one simulation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultKey {
    /// The workload simulated.
    pub workload: &'static str,
    /// The scale it ran at.
    pub scale: Scale,
    /// The prefetcher kind simulated.
    pub kind: PrefetcherKind,
    trace_hash: u64,
    config_hash: u64,
}

impl ResultKey {
    /// The key for simulating `workload` at `scale` with `kind` under
    /// `system`.
    pub fn new(
        workload: &'static WorkloadSpec,
        scale: Scale,
        kind: PrefetcherKind,
        system: &SystemConfig,
    ) -> ResultKey {
        ResultKey {
            workload: workload.name,
            scale,
            kind,
            trace_hash: workload_hash(workload),
            config_hash: config_hash(kind, system),
        }
    }

    /// The 64-bit content hash stored in (and verified against) the entry
    /// header. `salt` is XORed into the simulator-version component;
    /// always 0 outside tests.
    fn hash(&self, salt: u64) -> u64 {
        let mut h = self.trace_hash;
        h = fnv_fold_bytes(h, &[scale_code(self.scale)]);
        h = fnv_fold_bytes(h, self.workload.as_bytes());
        h = fnv_fold_bytes(h, &[0u8]);
        h = fnv_fold_bytes(h, self.kind.name().as_bytes());
        h = fnv_fold_bytes(h, &self.config_hash.to_le_bytes());
        fnv_fold_bytes(h, &(sim_version_hash() ^ salt).to_le_bytes())
    }

    /// Filesystem-safe file stem (`"CBWS+SMS"` → `cbws-sms`), suffixed
    /// with the config hash so entries for different [`SystemConfig`]s of
    /// the same `(workload, scale, prefetcher)` triple live in different
    /// files and can coexist under one store directory.
    fn file_stem(&self) -> String {
        let slug: String = self
            .kind
            .name()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!(
            "{}-{}-{}-{:016x}",
            self.workload, self.scale, slug, self.config_hash
        )
    }
}

/// Writes `bytes` to `path` via a uniquely named temporary file + rename
/// (creating the parent directory first), so readers never observe a
/// half-written file — even when several workers or processes write the
/// same path concurrently.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Why a stored entry could not be served.
enum LoadError {
    /// No file yet — a plain miss.
    Missing,
    /// The file exists but is invalid for this key and binary (corruption,
    /// version skew, key-hash skew — simulator sources, config, or trace
    /// sources changed). The reason is human-readable.
    Invalid(String),
}

fn invalid<T>(reason: impl Into<String>) -> Result<T, LoadError> {
    Err(LoadError::Invalid(reason.into()))
}

/// Parses and fully verifies a store file into the record it holds.
fn load_file(path: &Path, want_hash: u64, key: &ResultKey) -> Result<RunRecord, LoadError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LoadError::Missing),
        Err(e) => return invalid(format!("unreadable: {e}")),
    };
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8], LoadError> {
        let end = at.checked_add(n).filter(|&e| e <= bytes.len());
        match end {
            Some(end) => {
                let s = &bytes[*at..end];
                *at = end;
                Ok(s)
            }
            None => invalid(format!("truncated header at byte {at}")),
        }
    };
    if take(&mut at, MAGIC.len())? != MAGIC {
        return invalid("bad magic");
    }
    let version = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
    if version != FORMAT_VERSION {
        return invalid(format!(
            "format version {version}, this binary writes {FORMAT_VERSION}"
        ));
    }
    let file_hash = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    if file_hash != want_hash {
        return invalid(format!(
            "key hash {file_hash:#018x} does not match this binary's {want_hash:#018x} \
             (trace sources, simulator sources, or the config changed)"
        ));
    }
    let checksum = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    let payload_len = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    let payload = match usize::try_from(payload_len) {
        Ok(n) if at + n == bytes.len() => &bytes[at..],
        _ => return invalid("payload length disagrees with file size"),
    };
    let got = fnv1a(payload);
    if got != checksum {
        return invalid(format!(
            "payload checksum {got:#018x} != stored {checksum:#018x}"
        ));
    }
    let json = match std::str::from_utf8(payload) {
        Ok(s) => s,
        Err(e) => return invalid(format!("payload is not UTF-8: {e}")),
    };
    let record: RunRecord = match serde_json::from_str(json) {
        Ok(r) => r,
        Err(e) => return invalid(format!("payload rejected: {e}")),
    };
    if record.workload != key.workload || record.prefetcher != key.kind.name() {
        return invalid("stored record does not match its key");
    }
    Ok(record)
}

/// Serializes a record into the version-1 file bytes for `key_hash`.
fn encode_file(key_hash: u64, record: &RunRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record)
        .expect("RunRecord serialization is infallible")
        .into_bytes();
    let mut out = Vec::with_capacity(36 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key_hash.to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A persistent, content-addressed store of simulation results. See the
/// module docs for the key, format, and eviction policy.
///
/// Unlike the trace store there is **no in-process memoization**: a hit
/// always reads and re-verifies the file, so cached-sweep timings measure
/// the store, not a `HashMap`, and a concurrent writer's eviction can
/// never leave a stale record pinned in memory.
pub struct ResultStore {
    dir: PathBuf,
    /// Total-size cap in bytes; `None` disables eviction.
    budget: Option<u64>,
    /// XORed into the simulator-version component of every key hash;
    /// always 0 outside tests, which use it to simulate a binary built
    /// from different simulator sources.
    hash_salt: u64,
    telemetry: Mutex<Telemetry>,
    spans: Mutex<Spans>,
    /// Running total of entry bytes on disk, so [`ResultStore::put`] can
    /// skip the directory walk while the store is under budget. `None`
    /// until first consulted; initialized from a scan, maintained
    /// incrementally by writes and invalidations, and refreshed from an
    /// authoritative re-scan whenever eviction engages.
    cached_bytes: Mutex<Option<u64>>,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl ResultStore {
    /// A store over `dir` with the byte budget from [`BUDGET_ENV`]
    /// (default [`DEFAULT_BUDGET_BYTES`]; `0` disables eviction).
    pub fn at(dir: impl Into<PathBuf>) -> ResultStore {
        let budget = match std::env::var(BUDGET_ENV) {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(0) => None,
                Ok(n) => Some(n),
                Err(_) => {
                    warn!("[result-store] invalid {BUDGET_ENV}={v:?}; using default budget");
                    Some(DEFAULT_BUDGET_BYTES)
                }
            },
            Err(_) => Some(DEFAULT_BUDGET_BYTES),
        };
        ResultStore::with_budget(dir, budget)
    }

    /// A store over `dir` with an explicit byte budget (`None` disables
    /// eviction).
    pub fn with_budget(dir: impl Into<PathBuf>, budget: Option<u64>) -> ResultStore {
        ResultStore {
            dir: dir.into(),
            budget,
            hash_salt: 0,
            telemetry: Mutex::new(Telemetry::disabled()),
            spans: Mutex::new(Spans::disabled()),
            cached_bytes: Mutex::new(None),
        }
    }

    /// Test-only: a store whose key hashes simulate a binary built from
    /// different simulator sources (used by the property tests to exercise
    /// version-skew invalidation without editing source files).
    #[doc(hidden)]
    pub fn with_hash_salt(dir: impl Into<PathBuf>, salt: u64) -> ResultStore {
        let mut store = ResultStore::at(dir);
        store.hash_salt = salt;
        store
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The byte budget in force (`None` = unlimited).
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Routes the store's counters (`result_store.*`) to `telemetry`.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock().unwrap_or_else(|e| e.into_inner()) = telemetry;
    }

    /// Routes the store's `result.*` spans to `spans`.
    pub fn set_spans(&self, spans: Spans) {
        *self.spans.lock().unwrap_or_else(|e| e.into_inner()) = spans;
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn spans(&self) -> Spans {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The file an entry for `key` lives in.
    pub fn path_for(&self, key: &ResultKey) -> PathBuf {
        self.dir.join(format!("{}.{EXT}", key.file_stem()))
    }

    /// The stored record for `key`, fully verified, or `None` on a miss.
    /// An invalid entry (corruption, version/key skew) is removed, counted
    /// as `result_store.invalidate`, and reported as a miss so the caller
    /// regenerates it.
    pub fn get(&self, key: &ResultKey) -> Option<RunRecord> {
        let telemetry = self.telemetry();
        let spans = self.spans();
        let path = self.path_for(key);
        let started = Instant::now();
        let load_span = spans.begin("result.load");
        load_span
            .attr("workload", key.workload)
            .attr("prefetcher", key.kind.name());
        let loaded = load_file(&path, key.hash(self.hash_salt), key);
        drop(load_span);
        match loaded {
            Ok(record) => {
                telemetry.count("result_store.hit", 1);
                telemetry.count("result_store.load_us", started.elapsed().as_micros() as u64);
                // LRU touch: a served entry becomes the newest, so the
                // byte-budget eviction removes cold entries first.
                if let Ok(f) = File::options().append(true).open(&path) {
                    let _ = f.set_modified(std::time::SystemTime::now());
                }
                Some(record)
            }
            Err(LoadError::Missing) => {
                telemetry.count("result_store.miss", 1);
                None
            }
            Err(LoadError::Invalid(reason)) => {
                telemetry.count("result_store.invalidate", 1);
                warn!(
                    "[result-store] discarding {}: {reason}; re-simulating",
                    path.display()
                );
                let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if std::fs::remove_file(&path).is_ok() {
                    self.note_disk_change(len, 0);
                }
                None
            }
        }
    }

    /// Persists `record` under `key` (atomic write), then enforces the
    /// byte budget. Failure to write is reported but not fatal — the sweep
    /// just loses persistence for this entry.
    pub fn put(&self, key: &ResultKey, record: &RunRecord) {
        let telemetry = self.telemetry();
        let spans = self.spans();
        let path = self.path_for(key);
        let started = Instant::now();
        let write_span = spans.begin("result.write");
        write_span.attr("workload", key.workload);
        let bytes = encode_file(key.hash(self.hash_salt), record);
        // Stat before the atomic rename: an overwrite replaces the old
        // entry, so the running total changes by (new - old), not new.
        let old_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        match write_atomic(&path, &bytes) {
            Ok(()) => {
                self.note_disk_change(old_len, bytes.len() as u64);
                telemetry.count("result_store.write", 1);
                telemetry.count("result_store.write_bytes", bytes.len() as u64);
                telemetry.count(
                    "result_store.store_us",
                    started.elapsed().as_micros() as u64,
                );
            }
            Err(e) => warn!(
                "[result-store] cannot write {}: {e}; continuing without persistence",
                path.display()
            ),
        }
        drop(write_span);
        self.enforce_budget(&path);
    }

    /// Adjusts the cached byte total for one entry shrinking by `removed`
    /// bytes and growing by `added` (an overwrite is both at once). A
    /// no-op until the cache has been initialized by a scan.
    fn note_disk_change(&self, removed: u64, added: u64) {
        let mut cached = self.cached_bytes.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(total) = cached.as_mut() {
            *total = total.saturating_sub(removed).saturating_add(added);
        }
    }

    /// Sum of entry bytes currently on disk (a full directory scan).
    fn scan_bytes(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == EXT))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// Evicts oldest-modified entries until the store is back under its
    /// byte budget. `just_wrote` is exempt so a write can never evict its
    /// own entry.
    ///
    /// While the store is under budget this consults only the in-process
    /// running total ([`ResultStore::note_disk_change`]) — no directory
    /// walk per write. The total is initialized from a scan on the first
    /// call, and whenever eviction engages the directory is re-scanned
    /// authoritatively (a concurrent process may have added or removed
    /// entries behind this one's back) and the cache refreshed from the
    /// post-eviction state.
    fn enforce_budget(&self, just_wrote: &Path) {
        let Some(budget) = self.budget else {
            return;
        };
        let mut cached = self.cached_bytes.lock().unwrap_or_else(|e| e.into_inner());
        let running = match *cached {
            Some(total) => total,
            None => {
                let total = self.scan_bytes();
                *cached = Some(total);
                total
            }
        };
        if running <= budget {
            return;
        }
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == EXT))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, e.path(), meta.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total > budget {
            let telemetry = self.telemetry();
            files.sort();
            for (_, path, len) in files {
                if total <= budget {
                    break;
                }
                if path == just_wrote {
                    continue;
                }
                if std::fs::remove_file(&path).is_ok() {
                    telemetry.count("result_store.evict", 1);
                    total = total.saturating_sub(len);
                }
            }
        }
        *cached = Some(total);
    }
}

/// The process-wide store. Directory comes from `CBWS_RESULT_STORE_DIR`;
/// unset falls back to the workspace's `target/result-store/`.
pub fn shared() -> &'static ResultStore {
    static SHARED: OnceLock<ResultStore> = OnceLock::new();
    SHARED.get_or_init(|| {
        let dir = std::env::var_os(DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/result-store")
            });
        ResultStore::at(dir)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Simulator;
    use cbws_workloads::by_name;

    /// A unique per-test scratch directory (no tempfile dependency).
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cbws-result-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn counter(t: &Telemetry, path: &str) -> u64 {
        t.with_metrics(|m| m.counter(path).unwrap_or(0)).unwrap()
    }

    fn simulate(workload: &'static WorkloadSpec, kind: PrefetcherKind) -> RunRecord {
        let sim = Simulator::new(SystemConfig::default());
        let trace = cbws_workloads::trace_store::shared().get(workload, Scale::Tiny);
        sim.run(workload.name, true, &*trace, kind)
    }

    #[test]
    fn miss_then_hit_round_trips() {
        let dir = scratch_dir("hit");
        let w = by_name("stencil-default").unwrap();
        let key = ResultKey::new(
            w,
            Scale::Tiny,
            PrefetcherKind::Sms,
            &SystemConfig::default(),
        );
        let telemetry = Telemetry::enabled_default();
        let store = ResultStore::at(&dir);
        store.set_telemetry(telemetry.clone());

        assert!(store.get(&key).is_none());
        assert_eq!(counter(&telemetry, "result_store.miss"), 1);

        let record = simulate(w, PrefetcherKind::Sms);
        store.put(&key, &record);
        assert_eq!(counter(&telemetry, "result_store.write"), 1);

        let loaded = store.get(&key).expect("stored entry must hit");
        assert_eq!(counter(&telemetry, "result_store.hit"), 1);
        assert_eq!(loaded, record, "stored record must round-trip identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_version_skew_invalidates() {
        let dir = scratch_dir("simskew");
        let w = by_name("nw").unwrap();
        let key = ResultKey::new(
            w,
            Scale::Tiny,
            PrefetcherKind::None,
            &SystemConfig::default(),
        );
        let record = simulate(w, PrefetcherKind::None);
        ResultStore::at(&dir).put(&key, &record);

        let telemetry = Telemetry::enabled_default();
        let skewed = ResultStore::with_hash_salt(&dir, 1);
        skewed.set_telemetry(telemetry.clone());
        assert!(skewed.get(&key).is_none());
        assert_eq!(counter(&telemetry, "result_store.invalidate"), 1);
        // The invalid file was removed: the next access is a plain miss.
        assert!(skewed.get(&key).is_none());
        assert_eq!(counter(&telemetry, "result_store.miss"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn configs_coexist_under_distinct_files() {
        let dir = scratch_dir("config");
        let w = by_name("nw").unwrap();
        let kind = PrefetcherKind::Stride;
        let default_key = ResultKey::new(w, Scale::Tiny, kind, &SystemConfig::default());
        let mut bigger = SystemConfig::default();
        bigger.mem.l2.size_bytes *= 2;
        let bigger_key = ResultKey::new(w, Scale::Tiny, kind, &bigger);
        assert_ne!(
            default_key.hash(0),
            bigger_key.hash(0),
            "config must be part of the key"
        );

        let store = ResultStore::at(&dir);
        assert_ne!(
            store.path_for(&default_key),
            store.path_for(&bigger_key),
            "the config hash must be part of the file name"
        );
        // A sensitivity sweep revisiting one (workload, scale, prefetcher)
        // triple under two configs: both entries must survive side by side.
        let default_record = simulate(w, kind);
        store.put(&default_key, &default_record);
        let bigger_record = {
            let sim = Simulator::new(bigger);
            let trace = cbws_workloads::trace_store::shared().get(w, Scale::Tiny);
            sim.run(w.name, true, &*trace, kind)
        };
        store.put(&bigger_key, &bigger_record);

        let telemetry = Telemetry::enabled_default();
        store.set_telemetry(telemetry.clone());
        assert_eq!(store.get(&default_key), Some(default_record));
        assert_eq!(store.get(&bigger_key), Some(bigger_record));
        assert_eq!(counter(&telemetry, "result_store.hit"), 2);
        assert_eq!(counter(&telemetry, "result_store.invalidate"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_invalidates() {
        let dir = scratch_dir("corrupt");
        let w = by_name("nw").unwrap();
        let key = ResultKey::new(
            w,
            Scale::Tiny,
            PrefetcherKind::FdpSms,
            &SystemConfig::default(),
        );
        let store = ResultStore::at(&dir);
        store.put(&key, &simulate(w, PrefetcherKind::FdpSms));
        let path = store.path_for(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload bit
        std::fs::write(&path, &bytes).unwrap();

        let telemetry = Telemetry::enabled_default();
        store.set_telemetry(telemetry.clone());
        assert!(store.get(&key).is_none());
        assert_eq!(counter(&telemetry, "result_store.invalidate"), 1);
        assert!(!path.exists(), "invalid entry must be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_evicts_oldest_first_and_spares_fresh_write() {
        let dir = scratch_dir("budget");
        let w = by_name("stencil-default").unwrap();
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::GhbPcDc,
        ];
        let records: Vec<RunRecord> = kinds.iter().map(|&k| simulate(w, k)).collect();
        let keys: Vec<ResultKey> = kinds
            .iter()
            .map(|&k| ResultKey::new(w, Scale::Tiny, k, &SystemConfig::default()))
            .collect();
        let entry_len = encode_file(keys[0].hash(0), &records[0]).len() as u64;

        // Budget for roughly two entries.
        let telemetry = Telemetry::enabled_default();
        let store = ResultStore::with_budget(&dir, Some(entry_len * 5 / 2));
        store.set_telemetry(telemetry.clone());
        for (i, (key, record)) in keys.iter().zip(&records).enumerate() {
            store.put(key, record);
            // Deterministic LRU order regardless of filesystem timestamp
            // granularity: backdate each entry by its write order.
            let f = File::options()
                .append(true)
                .open(store.path_for(key))
                .unwrap();
            f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(i as u64 + 1))
                .unwrap();
        }
        // Re-run eviction with a fresh write: oldest entries go first, the
        // newest (and the just-written file) survive.
        store.put(&keys[3], &records[3]);
        assert!(counter(&telemetry, "result_store.evict") >= 1);
        assert!(
            !store.path_for(&keys[0]).exists(),
            "oldest entry must be evicted first"
        );
        assert!(
            store.path_for(&keys[3]).exists(),
            "the just-written entry must survive its own write"
        );
        let total: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= entry_len * 5 / 2, "store must end under budget");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The in-process running byte total that lets `put` skip the per-write
    /// directory walk must agree with an authoritative fresh scan after
    /// every mutation: under-budget writes, an overwrite, eviction, and
    /// invalidation-driven removal.
    #[test]
    fn cached_byte_total_matches_fresh_scan() {
        let dir = scratch_dir("cachedbytes");
        let w = by_name("stencil-default").unwrap();
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::GhbPcDc,
        ];
        let records: Vec<RunRecord> = kinds.iter().map(|&k| simulate(w, k)).collect();
        let keys: Vec<ResultKey> = kinds
            .iter()
            .map(|&k| ResultKey::new(w, Scale::Tiny, k, &SystemConfig::default()))
            .collect();
        let entry_len = encode_file(keys[0].hash(0), &records[0]).len() as u64;
        let store = ResultStore::with_budget(&dir, Some(entry_len * 5 / 2));
        let cached = |s: &ResultStore| s.cached_bytes.lock().unwrap().expect("initialized");
        for (key, record) in keys.iter().zip(&records) {
            store.put(key, record);
            assert_eq!(cached(&store), store.scan_bytes(), "after put {key:?}");
        }
        // Eviction engaged above (4 entries, budget ~2.5): the cache was
        // refreshed from the post-eviction re-scan.
        assert!(cached(&store) <= entry_len * 5 / 2);
        // Overwriting an existing entry charges (new - old), not new.
        store.put(&keys[3], &records[3]);
        assert_eq!(cached(&store), store.scan_bytes(), "after overwrite");
        // Invalidation-driven removal is subtracted too.
        let path = store.path_for(&keys[3]);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.get(&keys[3]).is_none());
        assert_eq!(cached(&store), store.scan_bytes(), "after invalidation");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        let a = by_name("stencil-default").unwrap();
        let b = by_name("nw").unwrap();
        let cfg = SystemConfig::default();
        let ka = ResultKey::new(a, Scale::Tiny, PrefetcherKind::Sms, &cfg);
        assert_eq!(ka.hash(0), ka.hash(0));
        assert_ne!(
            ka.hash(0),
            ResultKey::new(b, Scale::Tiny, PrefetcherKind::Sms, &cfg).hash(0)
        );
        assert_ne!(
            ka.hash(0),
            ResultKey::new(a, Scale::Small, PrefetcherKind::Sms, &cfg).hash(0)
        );
        assert_ne!(
            ka.hash(0),
            ResultKey::new(a, Scale::Tiny, PrefetcherKind::Cbws, &cfg).hash(0)
        );
        assert_ne!(sim_version_hash(), 0);
    }

    #[test]
    fn store_accesses_emit_spans() {
        let dir = scratch_dir("spans");
        let w = by_name("nw").unwrap();
        let key = ResultKey::new(
            w,
            Scale::Tiny,
            PrefetcherKind::Ampm,
            &SystemConfig::default(),
        );
        let spans = Spans::enabled();
        let store = ResultStore::at(&dir);
        store.set_spans(spans.clone());
        store.get(&key); // miss
        store.put(&key, &simulate(w, PrefetcherKind::Ampm));
        store.get(&key); // hit
        let records = spans.records();
        let count = |name: &str| records.iter().filter(|r| r.name == name).count();
        assert_eq!(count("result.load"), 2);
        assert_eq!(count("result.write"), 1);
        assert!(records.iter().all(|r| r.dur_us.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
