#![warn(missing_docs)]

//! Experiment harness: wires workload traces, the core timing model, the
//! memory hierarchy, and a prefetcher into full simulations, and provides
//! one regenerator per table/figure of the paper (see the `bin/` targets
//! and [`experiments`]).
//!
//! # Example
//!
//! ```
//! use cbws_harness::{PrefetcherKind, Simulator, SystemConfig};
//! use cbws_workloads::{by_name, Scale};
//!
//! let trace = by_name("stencil-default").unwrap().generate(Scale::Tiny);
//! let sim = Simulator::new(SystemConfig::default());
//! let sms = sim.run("stencil-default", true, &trace, PrefetcherKind::Sms);
//! let hybrid = sim.run("stencil-default", true, &trace, PrefetcherKind::CbwsSms);
//! assert!(hybrid.cpu.instructions == sms.cpu.instructions);
//! ```

mod dispatch;
pub mod engine;
pub mod experiments;
mod manifest;
mod prefetched;
pub mod result_store;
mod runner;
pub mod service;

pub use dispatch::AnyPrefetcher;
pub use engine::{
    Engine, EngineConfig, EngineRun, JobObserver, JobUpdate, ResultCache, WorkerStats,
};
pub use manifest::{ManifestWorker, RunManifest};
pub use prefetched::PrefetchedMemory;
pub use runner::{component_registry, PrefetcherKind, Simulator, SystemConfig};
pub use service::{SweepOutcome, SweepSession, SweepSpec};
