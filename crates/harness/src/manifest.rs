//! Machine-readable run manifests.
//!
//! Every experiment binary that writes a `results/<name>.csv` also writes a
//! `results/<name>.manifest.json` describing exactly what produced it: the
//! binary, the workload scale, the workloads and prefetchers simulated, and
//! the full [`SystemConfig`] in force. A results directory is then
//! self-describing — no need to reconstruct CLI flags from shell history to
//! reproduce a CSV.

use crate::engine::{detect_parallelism, WorkerStats};
use crate::runner::{PrefetcherKind, SystemConfig};
use cbws_telemetry::Profiler;
use cbws_workloads::Scale;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Per-worker scheduling stats as persisted in a manifest: the counters of
/// [`WorkerStats`] plus a three-point summary of its job-duration
/// histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestWorker {
    /// Worker index, matching the `worker-N` span lane.
    pub worker: usize,
    /// Jobs this worker claimed and completed.
    pub jobs: usize,
    /// Seconds spent executing jobs.
    pub busy_seconds: f64,
    /// Seconds inside the worker loop not spent on a job.
    pub idle_seconds: f64,
    /// Jobs this worker served from the persistent result store (zero when
    /// the run's result cache was off).
    pub store_hits: usize,
    /// Jobs this worker simulated because the result store had no valid
    /// entry (zero when the run's result cache was off).
    pub store_misses: usize,
    /// Median per-job duration (µs, log2-bucket upper bound).
    pub job_us_p50: u64,
    /// 90th-percentile per-job duration (µs, log2-bucket upper bound).
    pub job_us_p90: u64,
    /// Slowest job (µs, exact).
    pub job_us_max: u64,
}

impl ManifestWorker {
    /// Summarizes one worker's stats for persistence.
    pub fn from_stats(s: &WorkerStats) -> Self {
        ManifestWorker {
            worker: s.worker,
            jobs: s.jobs,
            busy_seconds: s.busy_seconds,
            idle_seconds: s.idle_seconds,
            store_hits: s.store_hits,
            store_misses: s.store_misses,
            job_us_p50: s.job_us.percentile(0.50),
            job_us_p90: s.job_us.percentile(0.90),
            job_us_max: s.job_us.max(),
        }
    }
}

/// What produced one results artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// The binary that ran (e.g. `"fig12_mpki"`).
    pub binary: String,
    /// Workload scale, lowercase (`"tiny"`, `"small"`, `"full"`).
    pub scale: String,
    /// Workload names simulated, in run order.
    pub workloads: Vec<String>,
    /// Prefetcher display names simulated, in run order.
    pub prefetchers: Vec<String>,
    /// The full system configuration in force.
    pub config: SystemConfig,
    /// Engine worker threads used (`0` when the binary ran serially or did
    /// no simulation sweep).
    pub jobs: usize,
    /// Cores the host reported at run time ([`detect_parallelism`]) — the
    /// context that makes `jobs` and the worker split interpretable.
    pub host_cores: usize,
    /// End-to-end wall-clock seconds of the sweep (`0.0` when untimed).
    pub wall_seconds: f64,
    /// Per-phase wall-clock totals in seconds, summed across workers
    /// (e.g. `"generate"`, `"simulate"`). Empty when untimed.
    pub phases: BTreeMap<String, f64>,
    /// Per-worker jobs/busy/idle breakdown of the engine run, ordered by
    /// worker index. Empty when the binary ran serially.
    pub worker_stats: Vec<ManifestWorker>,
}

impl RunManifest {
    /// Builds a manifest for `binary` running `prefetchers` over
    /// `workloads` at `scale` under `config`.
    pub fn new(
        binary: &str,
        scale: Scale,
        workloads: impl IntoIterator<Item = impl Into<String>>,
        prefetchers: impl IntoIterator<Item = PrefetcherKind>,
        config: SystemConfig,
    ) -> Self {
        RunManifest {
            binary: binary.to_string(),
            scale: scale_name(scale).to_string(),
            workloads: workloads.into_iter().map(Into::into).collect(),
            prefetchers: prefetchers
                .into_iter()
                .map(|k| k.name().to_string())
                .collect(),
            config,
            jobs: 0,
            host_cores: detect_parallelism(),
            wall_seconds: 0.0,
            phases: BTreeMap::new(),
            worker_stats: Vec::new(),
        }
    }

    /// Records sweep timing: worker count, wall-clock seconds, and the
    /// per-phase totals of `profiler` (builder-style, used with the
    /// engine's [`crate::EngineRun`]).
    pub fn with_timing(mut self, jobs: usize, wall_seconds: f64, profiler: &Profiler) -> Self {
        self.jobs = jobs;
        self.wall_seconds = wall_seconds;
        self.phases = profiler
            .phases()
            .iter()
            .map(|(name, d)| (name.clone(), d.as_secs_f64()))
            .collect();
        self
    }

    /// Records the per-worker scheduling breakdown (builder-style,
    /// normally from [`crate::EngineRun::worker_stats`]).
    pub fn with_workers(mut self, stats: &[WorkerStats]) -> Self {
        self.worker_stats = stats.iter().map(ManifestWorker::from_stats).collect();
        self
    }

    /// The manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }

    /// Writes the manifest to `results/<name>.manifest.json` next to the
    /// CSV of the same name (best-effort, like `save_csv`: errors go to
    /// stderr but are not fatal). The write is atomic (unique temporary
    /// file + rename), so a sweep killed mid-save can never leave a torn
    /// manifest behind — a prerequisite for trusting `--resume` runs.
    pub fn save(&self, name: &str) {
        let path = Path::new("results").join(format!("{name}.manifest.json"));
        let bytes = self.to_json() + "\n";
        if let Err(e) = crate::result_store::write_atomic(&path, bytes.as_bytes()) {
            cbws_telemetry::warn!("cannot write {}: {e}", path.display());
        }
    }
}

/// Lowercase display form of a scale.
fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
        Scale::Huge => "huge",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut profiler = Profiler::new();
        profiler.record("generate", std::time::Duration::from_millis(250));
        profiler.record("simulate", std::time::Duration::from_millis(750));
        let mut job_us = cbws_telemetry::Log2Histogram::new();
        job_us.record(900);
        job_us.record(1100);
        let stats = [WorkerStats {
            worker: 0,
            jobs: 2,
            busy_seconds: 0.002,
            idle_seconds: 0.001,
            store_hits: 1,
            store_misses: 1,
            job_us,
        }];
        let m = RunManifest::new(
            "fig12_mpki",
            Scale::Small,
            ["stencil-default", "histo-large"],
            PrefetcherKind::ALL,
            SystemConfig::default(),
        )
        .with_timing(4, 1.25, &profiler)
        .with_workers(&stats);
        let json = m.to_json();
        assert!(json.contains("\"binary\""));
        assert!(json.contains("fig12_mpki"));
        assert!(json.contains("CBWS+SMS"));
        assert!(json.contains("\"wall_seconds\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"worker_stats\""));
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.scale, "small");
        assert_eq!(back.workloads.len(), 2);
        assert_eq!(back.prefetchers.len(), 7);
        assert_eq!(back.jobs, 4);
        assert!(back.host_cores >= 1);
        assert_eq!(back.phases.len(), 2);
        assert!((back.phases["simulate"] - 0.75).abs() < 1e-9);
        assert_eq!(back.worker_stats.len(), 1);
        assert_eq!(back.worker_stats[0].jobs, 2);
        assert_eq!(back.worker_stats[0].job_us_max, 1100);
        assert_eq!(back.worker_stats[0].job_us_p50, 1023);
    }
}
