//! Machine-readable run manifests.
//!
//! Every experiment binary that writes a `results/<name>.csv` also writes a
//! `results/<name>.manifest.json` describing exactly what produced it: the
//! binary, the workload scale, the workloads and prefetchers simulated, and
//! the full [`SystemConfig`] in force. A results directory is then
//! self-describing — no need to reconstruct CLI flags from shell history to
//! reproduce a CSV.

use crate::runner::{PrefetcherKind, SystemConfig};
use cbws_workloads::Scale;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// What produced one results artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// The binary that ran (e.g. `"fig12_mpki"`).
    pub binary: String,
    /// Workload scale, lowercase (`"tiny"`, `"small"`, `"full"`).
    pub scale: String,
    /// Workload names simulated, in run order.
    pub workloads: Vec<String>,
    /// Prefetcher display names simulated, in run order.
    pub prefetchers: Vec<String>,
    /// The full system configuration in force.
    pub config: SystemConfig,
}

impl RunManifest {
    /// Builds a manifest for `binary` running `prefetchers` over
    /// `workloads` at `scale` under `config`.
    pub fn new(
        binary: &str,
        scale: Scale,
        workloads: impl IntoIterator<Item = impl Into<String>>,
        prefetchers: impl IntoIterator<Item = PrefetcherKind>,
        config: SystemConfig,
    ) -> Self {
        RunManifest {
            binary: binary.to_string(),
            scale: scale_name(scale).to_string(),
            workloads: workloads.into_iter().map(Into::into).collect(),
            prefetchers: prefetchers
                .into_iter()
                .map(|k| k.name().to_string())
                .collect(),
            config,
        }
    }

    /// The manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }

    /// Writes the manifest to `results/<name>.manifest.json` next to the
    /// CSV of the same name (best-effort, like `save_csv`: errors go to
    /// stderr but are not fatal).
    pub fn save(&self, name: &str) {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            cbws_telemetry::warn!("cannot create results/: {e}");
            return;
        }
        let path = dir.join(format!("{name}.manifest.json"));
        if let Err(e) = std::fs::write(&path, self.to_json() + "\n") {
            cbws_telemetry::warn!("cannot write {}: {e}", path.display());
        }
    }
}

/// Lowercase display form of a scale.
fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest::new(
            "fig12_mpki",
            Scale::Small,
            ["stencil-default", "histo-large"],
            PrefetcherKind::ALL,
            SystemConfig::default(),
        );
        let json = m.to_json();
        assert!(json.contains("\"binary\""));
        assert!(json.contains("fig12_mpki"));
        assert!(json.contains("CBWS+SMS"));
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.scale, "small");
        assert_eq!(back.workloads.len(), 2);
        assert_eq!(back.prefetchers.len(), 7);
    }
}
