//! Glue between the core timing model and a prefetcher-equipped memory
//! hierarchy.

use cbws_prefetchers::{PrefetchContext, Prefetcher};
use cbws_sim_cpu::{MemResult, MemSystem};
use cbws_sim_mem::MemoryHierarchy;
use cbws_telemetry::{SimEvent, Telemetry};
use cbws_trace::{BlockId, LineAddr, MemAccess};

/// A [`MemoryHierarchy`] driven by a [`Prefetcher`].
///
/// On every committed demand access the hierarchy is accessed first (so the
/// prefetcher sees the true hit/miss levels, as hardware training logic
/// does), then the prefetcher observes the access and its candidate lines
/// are enqueued. Block boundary instructions are forwarded with their commit
/// timestamps.
pub struct PrefetchedMemory<P> {
    hierarchy: MemoryHierarchy,
    prefetcher: P,
    in_block: bool,
    scratch: Vec<LineAddr>,
    last_time: u64,
    telemetry: Telemetry,
}

impl<P: Prefetcher> PrefetchedMemory<P> {
    /// Wraps a hierarchy and a prefetcher.
    pub fn new(hierarchy: MemoryHierarchy, prefetcher: P) -> Self {
        PrefetchedMemory {
            hierarchy,
            prefetcher,
            in_block: false,
            scratch: Vec::new(),
            last_time: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink recording `BLOCK_BEGIN`/`BLOCK_END`
    /// boundary events with their commit timestamps.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The wrapped hierarchy.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// The wrapped prefetcher.
    pub fn prefetcher(&self) -> &P {
        &self.prefetcher
    }

    /// Finalizes the run (lands in-flight prefetches, accounts wrong ones)
    /// and returns the hierarchy stats.
    pub fn finish(mut self) -> cbws_sim_mem::MemStats {
        let t = self.last_time + 1;
        self.hierarchy.finish(t)
    }

    fn issue(&mut self, now: u64) {
        // One batched call per candidate column: the hierarchy advances
        // once and resolves every line's L2 residency in a single pass
        // over the tag lanes (`Cache::probe_batch`) instead of per line.
        self.hierarchy.enqueue_prefetch_batch(now, &self.scratch);
        self.scratch.clear();
    }
}

impl<P: Prefetcher> MemSystem for PrefetchedMemory<P> {
    fn access(&mut self, now: u64, access: &MemAccess) -> MemResult {
        self.last_time = self.last_time.max(now);
        let out = self
            .hierarchy
            .demand_access(now, access.addr, access.kind.is_store());
        let ctx = PrefetchContext {
            pc: access.pc,
            addr: access.addr,
            is_store: access.kind.is_store(),
            l1_hit: out.l1_hit,
            l2_hit: matches!(
                out.class,
                Some(cbws_sim_mem::DemandClass::PlainHit | cbws_sim_mem::DemandClass::Timely)
            ),
            in_block: self.in_block,
        };
        self.scratch.clear();
        self.prefetcher.on_access(&ctx, &mut self.scratch);
        self.issue(now);
        MemResult {
            latency: out.latency,
            l1_hit: out.l1_hit,
        }
    }

    fn block_begin(&mut self, now: u64, id: BlockId) {
        self.last_time = self.last_time.max(now);
        self.in_block = true;
        self.telemetry.set_clock(now);
        self.telemetry.record(|_| SimEvent::BlockBegin {
            cycle: now,
            block: id.0,
        });
        self.prefetcher.on_block_begin(id);
    }

    fn block_end(&mut self, now: u64, id: BlockId) {
        self.last_time = self.last_time.max(now);
        self.in_block = false;
        self.scratch.clear();
        self.prefetcher.on_block_end(id, &mut self.scratch);
        self.telemetry.set_clock(now);
        self.telemetry.record(|_| SimEvent::BlockEnd {
            cycle: now,
            block: id.0,
            predicted: self.scratch.len() as u32,
        });
        self.issue(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_prefetchers::{NullPrefetcher, StridePrefetcher};
    use cbws_sim_cpu::{Core, CoreConfig};
    use cbws_sim_mem::HierarchyConfig;
    use cbws_trace::{Addr, Pc, TraceBuilder};

    fn strided_trace(n: u64, stride: u64) -> cbws_trace::Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            b.load(Pc(0x40), Addr(i * stride));
            b.alu(Pc(0x44), 3);
        }
        b.finish()
    }

    #[test]
    fn stride_prefetching_cuts_misses_and_cycles() {
        let trace = strided_trace(3000, 256);
        let mut null = PrefetchedMemory::new(
            MemoryHierarchy::new(HierarchyConfig::default()),
            NullPrefetcher,
        );
        let base = Core::new(CoreConfig::default()).run(&trace, &mut null);
        let base_mem = null.finish();

        let mut pf = PrefetchedMemory::new(
            MemoryHierarchy::new(HierarchyConfig::default()),
            StridePrefetcher::default(),
        );
        let fast = Core::new(CoreConfig::default()).run(&trace, &mut pf);
        let pf_mem = pf.finish();

        assert!(pf_mem.l2_misses() < base_mem.l2_misses() / 2);
        assert!(
            fast.cycles < base.cycles,
            "{} !< {}",
            fast.cycles,
            base.cycles
        );
        assert!(pf_mem.timely > 0);
    }

    #[test]
    fn classification_partition_holds_end_to_end() {
        let trace = strided_trace(500, 192);
        let mut pf = PrefetchedMemory::new(
            MemoryHierarchy::new(HierarchyConfig::default()),
            StridePrefetcher::default(),
        );
        Core::new(CoreConfig::default()).run(&trace, &mut pf);
        let mem = pf.finish();
        assert!(mem.classification_is_partition());
    }
}
