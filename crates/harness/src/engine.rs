//! Work-stealing experiment engine.
//!
//! The evaluation is a `(workload × prefetcher)` matrix whose cells cost
//! wildly different amounts of wall-clock time — trace sizes span orders of
//! magnitude across the 30 benchmarks. The chunked sweep this engine
//! replaced (retired in favour of [`crate::experiments::sweep_engine`])
//! split the *workload list* into static per-thread chunks, so one thread
//! could be stuck with the biggest traces while the rest idled. This engine
//! instead schedules **individual `(workload, prefetcher, scale)` jobs**:
//! workers pull the next job index from one shared atomic counter (a
//! lock-free single-producer queue over the precomputed job list), so load
//! imbalance is bounded by a single job, not a chunk.
//!
//! Determinism: every job is an independent, deterministic simulation, and
//! each worker writes its result into the job's slot by index. The returned
//! records are therefore **identical to the serial sweep** — same
//! workload-major, prefetcher-minor order, same values — for any worker
//! count and any scheduling interleaving (asserted by tests and the CI
//! perf-smoke job).
//!
//! Traces come from the persistent [`cbws_workloads::trace_store`] in the
//! packed columnar representation: within a process each `(workload,
//! scale)` trace is loaded once and shared by every prefetcher job, and
//! across processes the store's checksummed files skip DSL generation
//! entirely (the `generate` phase then measures verified load time). The
//! simulator replays the packed trace directly through its cursor — no
//! `Vec<TraceEvent>` is materialized.
//!
//! Telemetry: the engine records `engine.*` metrics into its configured
//! sink — `engine.workers`, `engine.jobs.total`, `engine.jobs.completed`,
//! `engine.queue.depth`, `engine.jobs_per_sec`, `engine.utilization`,
//! `engine.wall_seconds` — plus per-phase `phase.{generate,simulate}.seconds`
//! gauges. Per-run simulator telemetry stays disabled inside the engine:
//! concurrent runs would interleave their `run.*` gauges, and telemetry is
//! observationally transparent to results, so nothing is lost.

use crate::runner::{PrefetcherKind, Simulator, SystemConfig};
use cbws_stats::RunRecord;
use cbws_telemetry::{warn, Profiler, Telemetry};
use cbws_workloads::{trace_store, Group, Scale, WorkloadSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of workers the engine will use for `jobs = 0` (all cores).
///
/// Unlike the deprecated chunked sweep, detection failure is *reported*
/// (and falls back to serial execution) instead of silently pretending the
/// machine has four cores.
///
/// ```
/// let workers = cbws_harness::engine::detect_parallelism();
/// assert!(workers >= 1);
/// ```
pub fn detect_parallelism() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) => n.get(),
        Err(e) => {
            warn!("[engine] cannot detect available parallelism ({e}); running single-threaded");
            1
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker count; `0` means [`detect_parallelism`] (all cores). The
    /// effective count is additionally clamped to the number of jobs.
    pub jobs: usize,
    /// System configuration every simulation runs under.
    pub system: SystemConfig,
    /// Sink for `engine.*` metrics and phase gauges (disabled by default).
    pub telemetry: Telemetry,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            system: SystemConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The result of one engine run: the records in serial-sweep order plus
/// scheduling/timing observability.
#[derive(Debug)]
pub struct EngineRun {
    /// One record per `(workload, prefetcher)` job, workload-major,
    /// prefetcher-minor — byte-identical to the serial sweep's output.
    pub records: Vec<RunRecord>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Total jobs executed.
    pub job_count: usize,
    /// End-to-end wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Per-phase totals summed across workers (`generate`, `simulate`).
    pub profiler: Profiler,
    /// Mean fraction of the run each worker spent busy (0..=1).
    pub utilization: f64,
}

impl EngineRun {
    /// Jobs completed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.job_count as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Schedules `(workload, prefetcher, scale)` simulation jobs across worker
/// threads. See the module docs for the scheduling and determinism model.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Runs the full `workloads × kinds` matrix at `scale` and returns the
    /// records in workload-major, prefetcher-minor order.
    ///
    /// ```
    /// use cbws_harness::{Engine, EngineConfig, PrefetcherKind};
    /// use cbws_workloads::{by_name, Scale};
    ///
    /// let engine = Engine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
    /// let run = engine.run(
    ///     Scale::Tiny,
    ///     &[by_name("stencil-default").unwrap()],
    ///     &[PrefetcherKind::Stride, PrefetcherKind::Cbws],
    /// );
    /// assert_eq!(run.records.len(), 2);
    /// assert_eq!(run.records[0].prefetcher, PrefetcherKind::Stride.name());
    /// ```
    pub fn run(
        &self,
        scale: Scale,
        workloads: &[&'static WorkloadSpec],
        kinds: &[PrefetcherKind],
    ) -> EngineRun {
        let job_count = workloads.len() * kinds.len();
        let requested = if self.cfg.jobs == 0 {
            detect_parallelism()
        } else {
            self.cfg.jobs
        };
        let workers = requested.max(1).min(job_count.max(1));
        let telemetry = &self.cfg.telemetry;
        // Route `trace_store.*` counters to the same sink so hit/miss
        // behaviour shows up in `--metrics-out` dumps.
        trace_store::shared().set_telemetry(telemetry.clone());
        telemetry.set_gauge("engine.workers", workers as f64);
        telemetry.set_gauge("engine.jobs.total", job_count as f64);
        telemetry.set_gauge("engine.queue.depth", job_count as f64);

        let next = AtomicUsize::new(0);
        // (index, record) pairs plus merged profiler and summed busy time.
        type WorkerOutput = (Vec<(usize, RunRecord)>, Profiler, f64);
        let shared: Mutex<WorkerOutput> =
            Mutex::new((Vec::with_capacity(job_count), Profiler::new(), 0.0));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let sim = Simulator::new(self.cfg.system);
                    let mut local: Vec<(usize, RunRecord)> = Vec::new();
                    let mut prof = Profiler::new();
                    let busy_start = Instant::now();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= job_count {
                            break;
                        }
                        let w = workloads[i / kinds.len()];
                        let kind = kinds[i % kinds.len()];
                        let gen_start = Instant::now();
                        let trace = trace_store::shared().get(w, scale);
                        prof.record("generate", gen_start.elapsed());
                        let sim_start = Instant::now();
                        let record =
                            sim.run(w.name, w.group == Group::MemoryIntensive, &*trace, kind);
                        prof.record("simulate", sim_start.elapsed());
                        local.push((i, record));
                        telemetry.count("engine.jobs.completed", 1);
                        telemetry.set_gauge(
                            "engine.queue.depth",
                            job_count.saturating_sub(next.load(Ordering::Relaxed)) as f64,
                        );
                    }
                    let busy = busy_start.elapsed().as_secs_f64();
                    let mut g = shared.lock().unwrap_or_else(|e| e.into_inner());
                    g.0.extend(local);
                    g.1.merge(&prof);
                    g.2 += busy;
                });
            }
        });
        let wall_seconds = start.elapsed().as_secs_f64();

        let (mut indexed, profiler, busy_total) =
            shared.into_inner().unwrap_or_else(|e| e.into_inner());
        indexed.sort_unstable_by_key(|(i, _)| *i);
        debug_assert!(indexed.iter().enumerate().all(|(pos, (i, _))| pos == *i));
        let records: Vec<RunRecord> = indexed.into_iter().map(|(_, r)| r).collect();

        let utilization = if wall_seconds > 0.0 && workers > 0 {
            (busy_total / (workers as f64 * wall_seconds)).min(1.0)
        } else {
            0.0
        };
        let run = EngineRun {
            records,
            workers,
            job_count,
            wall_seconds,
            profiler,
            utilization,
        };
        telemetry.set_gauge("engine.wall_seconds", wall_seconds);
        telemetry.set_gauge("engine.jobs_per_sec", run.jobs_per_sec());
        telemetry.set_gauge("engine.utilization", utilization);
        run.profiler.export(telemetry);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_workloads::by_name;

    fn picks(names: &[&str]) -> Vec<&'static WorkloadSpec> {
        names.iter().map(|n| by_name(n).unwrap()).collect()
    }

    fn serial_reference(
        scale: Scale,
        workloads: &[&'static WorkloadSpec],
        kinds: &[PrefetcherKind],
    ) -> Vec<RunRecord> {
        let sim = Simulator::new(SystemConfig::default());
        let mut records = Vec::new();
        for w in workloads {
            let trace = w.generate(scale);
            for &kind in kinds {
                records.push(sim.run(w.name, w.group == Group::MemoryIntensive, &trace, kind));
            }
        }
        records
    }

    #[test]
    fn engine_matches_serial_for_any_worker_count() {
        let workloads = picks(&["stencil-default", "histo-large", "nw"]);
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::Sms,
            PrefetcherKind::CbwsSms,
        ];
        let serial = serial_reference(Scale::Tiny, &workloads, &kinds);
        for jobs in [1, 2, 8] {
            let run = Engine::new(EngineConfig {
                jobs,
                ..EngineConfig::default()
            })
            .run(Scale::Tiny, &workloads, &kinds);
            assert_eq!(run.job_count, serial.len());
            assert_eq!(run.records, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let workloads = picks(&["stencil-default"]);
        let run = Engine::new(EngineConfig {
            jobs: 64,
            ..EngineConfig::default()
        })
        .run(Scale::Tiny, &workloads, &[PrefetcherKind::None]);
        assert_eq!(run.workers, 1);
        assert_eq!(run.records.len(), 1);
    }

    #[test]
    fn empty_matrix_is_empty_run() {
        let run = Engine::default().run(Scale::Tiny, &[], &[]);
        assert!(run.records.is_empty());
        assert_eq!(run.job_count, 0);
    }

    #[test]
    fn engine_metrics_and_phases_recorded() {
        let telemetry = Telemetry::enabled(64);
        let workloads = picks(&["stencil-default", "nw"]);
        let run = Engine::new(EngineConfig {
            jobs: 2,
            system: SystemConfig::default(),
            telemetry: telemetry.clone(),
        })
        .run(Scale::Tiny, &workloads, &[PrefetcherKind::Sms]);
        let counter = |p: &str| telemetry.with_metrics(|r| r.counter(p)).unwrap().unwrap();
        assert_eq!(counter("engine.jobs.completed"), 2);
        assert!(run.wall_seconds >= 0.0);
        assert!(run.utilization > 0.0 && run.utilization <= 1.0);
        let phases: Vec<String> = run
            .profiler
            .phases()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert!(phases.contains(&"generate".to_string()));
        assert!(phases.contains(&"simulate".to_string()));
    }
}
