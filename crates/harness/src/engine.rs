//! Work-stealing experiment engine.
//!
//! The evaluation is a `(workload × prefetcher)` matrix whose cells cost
//! wildly different amounts of wall-clock time — trace sizes span orders of
//! magnitude across the 30 benchmarks. The chunked sweep this engine
//! replaced (retired in favour of [`crate::experiments::sweep_engine`])
//! split the *workload list* into static per-thread chunks, so one thread
//! could be stuck with the biggest traces while the rest idled. This engine
//! instead schedules **individual `(workload, prefetcher, scale)` jobs**:
//! workers pull the next job index from one shared atomic counter (a
//! lock-free single-producer queue over the precomputed job list), so load
//! imbalance is bounded by a single job, not a chunk.
//!
//! Determinism: every job is an independent, deterministic simulation, and
//! each worker writes its result into the job's slot by index. The returned
//! records are therefore **identical to the serial sweep** — same
//! workload-major, prefetcher-minor order, same values — for any worker
//! count and any scheduling interleaving (asserted by tests and the CI
//! perf-smoke job).
//!
//! Traces come from the persistent [`cbws_workloads::trace_store`] in the
//! packed columnar representation: within a process each `(workload,
//! scale)` trace is loaded once and shared by every prefetcher job, and
//! across processes the store's checksummed files skip DSL generation
//! entirely (the `generate` phase then measures verified load time). The
//! simulator replays the packed trace directly through its cursor — no
//! `Vec<TraceEvent>` is materialized.
//!
//! Single-worker runs take a dedicated fast path: when the effective
//! worker count is 1 the jobs run inline on the calling thread with one
//! simulator and one in-order records buffer — no thread spawn, no shared
//! mutexes, no per-job queue-depth gauge, no merge sort — so engine
//! `--jobs 1` tracks the serial sweep within the perf-history gate's 2%
//! (`engine_warm_seconds` vs `serial_seconds` in BENCH_sweep.json). Jobs
//! on that path carry a `fast_path=true` span attribute.
//!
//! Results can come from the persistent [`crate::result_store`] when the
//! configured [`ResultCache`] attaches one: each job is content-addressed
//! by (trace hash, prefetcher kind + config hash, scale, simulator-version
//! hash), and a verified hit skips the trace load and the simulation
//! entirely — the stored record is byte-identical to a fresh run (asserted
//! by determinism tests), so resumed or repeated sweeps pay only for the
//! jobs whose inputs changed. Hits and misses are tallied per worker in
//! [`WorkerStats`] and surface in every manifest.
//!
//! Telemetry: the engine records `engine.*` metrics into its configured
//! sink — `engine.workers`, `engine.jobs.total`, `engine.jobs.completed`,
//! `engine.queue.depth`, `engine.jobs_per_sec`, `engine.utilization`,
//! `engine.wall_seconds` — plus per-phase `phase.{generate,simulate}.seconds`
//! gauges. Per-run simulator telemetry stays disabled inside the engine:
//! concurrent runs would interleave their `run.*` gauges, and telemetry is
//! observationally transparent to results, so nothing is lost.

use crate::result_store::{self, ResultKey, ResultStore};
use crate::runner::{PrefetcherKind, Simulator, SystemConfig};
use cbws_stats::RunRecord;
use cbws_telemetry::{
    detail, log, warn, Heartbeat, Log2Histogram, Profiler, Spans, Telemetry, Verbosity,
};
use cbws_workloads::{trace_store, Group, Scale, WorkloadSpec};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of workers the engine will use for `jobs = 0` (all cores).
///
/// Unlike the deprecated chunked sweep, detection failure is *reported*
/// (and falls back to serial execution) instead of silently pretending the
/// machine has four cores.
///
/// ```
/// let workers = cbws_harness::engine::detect_parallelism();
/// assert!(workers >= 1);
/// ```
pub fn detect_parallelism() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) => n.get(),
        Err(e) => {
            warn!("[engine] cannot detect available parallelism ({e}); running single-threaded");
            1
        }
    }
}

/// Environment variable overriding the default streamed-replay threshold
/// (bytes). Store files larger than this replay through the disk-backed
/// read-ahead cursor instead of being loaded into memory.
pub const STREAM_THRESHOLD_ENV: &str = "CBWS_STREAM_THRESHOLD_BYTES";

/// Default streamed-replay threshold: 256 MiB. Every committed scale's
/// store files sit far below this, so behaviour (and performance) of
/// existing sweeps is unchanged; `Scale::Huge` traces cross it and stream.
pub const DEFAULT_STREAM_THRESHOLD_BYTES: u64 = 256 * 1024 * 1024;

/// Where the engine looks for previously computed simulation results
/// ([`crate::result_store`]).
#[derive(Debug, Clone, Default)]
pub enum ResultCache {
    /// No reads, no writes — every job simulates from its trace. The
    /// library default: unit tests and callers that measure simulation
    /// itself stay unaffected by whatever the store happens to hold.
    /// Binaries opt in via
    /// [`crate::experiments::result_cache_from_args`], which returns
    /// [`ResultCache::Shared`] unless `--no-result-cache` is given.
    #[default]
    Off,
    /// The process-wide [`result_store::shared`] store
    /// (`CBWS_RESULT_STORE_DIR`).
    Shared,
    /// A specific store instance (benches and tests with scratch
    /// directories).
    At(Arc<ResultStore>),
}

/// Everything an [`EngineConfig::observer`] learns about one completed
/// job. Borrowed — observers that keep the record clone it.
#[derive(Debug)]
pub struct JobUpdate<'a> {
    /// Job index in the serial (workload-major, prefetcher-minor) order.
    pub job: usize,
    /// Total jobs of the run's matrix.
    pub job_count: usize,
    /// The workload simulated.
    pub workload: &'static str,
    /// Display name of the prefetcher simulated.
    pub prefetcher: &'static str,
    /// Whether the record was served from the result store.
    pub cached: bool,
    /// The job's record, byte-identical to a serial sweep's.
    pub record: &'a RunRecord,
}

/// Per-job completion callback (the sweep server's streaming hook). Called
/// from whichever worker thread finished the job, in completion (not
/// serial) order; returning `false` requests cooperative cancellation —
/// workers stop claiming new jobs and the run returns with
/// [`EngineRun::cancelled`] set.
pub type JobObserver = Arc<dyn Fn(&JobUpdate<'_>) -> bool + Send + Sync>;

/// Engine configuration.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker count; `0` means [`detect_parallelism`] (all cores). The
    /// effective count is additionally clamped to the number of jobs.
    pub jobs: usize,
    /// System configuration every simulation runs under.
    pub system: SystemConfig,
    /// Sink for `engine.*` metrics and phase gauges (disabled by default).
    pub telemetry: Telemetry,
    /// Span collector for per-worker timelines (disabled by default). Each
    /// worker gets a `worker-N` lane carrying one span per job plus the
    /// idle gaps between claims; the trace store and `Core::run` nest
    /// their spans underneath.
    pub spans: Spans,
    /// Result-store policy: with a store attached, each job first consults
    /// it by content key — a hit skips the trace load and the simulation
    /// entirely and returns the stored (checksummed, key-verified) record;
    /// a miss simulates and persists. Off by default.
    pub result_cache: ResultCache,
    /// When `false`, jobs still consult the result store but fresh records
    /// are **not** persisted — reads stay warm, the store grows by nothing.
    /// The sweep server runs over-quota clients in this mode; `true` (the
    /// default) everywhere else.
    pub store_writes: bool,
    /// Per-job completion callback; `None` (the default) costs nothing.
    /// See [`JobObserver`] for the calling convention and cancellation.
    pub observer: Option<JobObserver>,
    /// Streamed-replay threshold in bytes: trace-store files larger than
    /// this replay through [`cbws_workloads::trace_store::TraceStore::replay_source`]'s
    /// disk-backed cursor instead of being loaded into memory. `None` (the
    /// default) resolves to [`STREAM_THRESHOLD_ENV`] when set, else
    /// [`DEFAULT_STREAM_THRESHOLD_BYTES`]. `0` streams everything.
    pub stream_threshold_bytes: Option<u64>,
}

impl EngineConfig {
    /// The effective streamed-replay threshold for this run: the explicit
    /// [`EngineConfig::stream_threshold_bytes`], else
    /// [`STREAM_THRESHOLD_ENV`], else [`DEFAULT_STREAM_THRESHOLD_BYTES`].
    pub fn resolved_stream_threshold(&self) -> u64 {
        self.stream_threshold_bytes.unwrap_or_else(|| {
            std::env::var(STREAM_THRESHOLD_ENV)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(DEFAULT_STREAM_THRESHOLD_BYTES)
        })
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("jobs", &self.jobs)
            .field("result_cache", &self.result_cache)
            .field("store_writes", &self.store_writes)
            .field("observer", &self.observer.as_ref().map(|_| ".."))
            .field("stream_threshold_bytes", &self.stream_threshold_bytes)
            .finish_non_exhaustive()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            system: SystemConfig::default(),
            telemetry: Telemetry::disabled(),
            spans: Spans::disabled(),
            result_cache: ResultCache::Off,
            store_writes: true,
            observer: None,
            stream_threshold_bytes: None,
        }
    }
}

/// Scheduling observability for one worker thread of an engine run.
///
/// Recorded unconditionally (the counters are a handful of adds per job),
/// independent of whether spans or telemetry are enabled — this is the
/// auditable-scaling evidence every manifest carries.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (`0..workers`), matching the `worker-N` span lane.
    pub worker: usize,
    /// Jobs this worker claimed and completed.
    pub jobs: usize,
    /// Seconds spent executing jobs (generate + simulate).
    pub busy_seconds: f64,
    /// Seconds inside the worker loop not spent on a job (claim overhead
    /// and the tail after the queue drained).
    pub idle_seconds: f64,
    /// Jobs served from the result store (zero when the run's
    /// [`ResultCache`] is `Off`).
    pub store_hits: usize,
    /// Jobs simulated because the result store had no valid entry (zero
    /// when the run's [`ResultCache`] is `Off`).
    pub store_misses: usize,
    /// Distribution of per-job durations in microseconds.
    pub job_us: Log2Histogram,
}

impl WorkerStats {
    /// Fresh zeroed stats for worker `worker`.
    fn new(worker: usize) -> WorkerStats {
        WorkerStats {
            worker,
            jobs: 0,
            busy_seconds: 0.0,
            idle_seconds: 0.0,
            store_hits: 0,
            store_misses: 0,
            job_us: Log2Histogram::new(),
        }
    }

    /// Folds another run's stats for the same worker index into `self`
    /// (used by binaries that drive several engine runs and report one
    /// aggregate manifest).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.jobs += other.jobs;
        self.busy_seconds += other.busy_seconds;
        self.idle_seconds += other.idle_seconds;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.job_us.merge(&other.job_us);
    }
}

/// The result of one engine run: the records in serial-sweep order plus
/// scheduling/timing observability.
#[derive(Debug)]
pub struct EngineRun {
    /// One record per `(workload, prefetcher)` job, workload-major,
    /// prefetcher-minor — byte-identical to the serial sweep's output.
    pub records: Vec<RunRecord>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Total jobs executed.
    pub job_count: usize,
    /// End-to-end wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Per-phase totals summed across workers (`generate`, `simulate`).
    pub profiler: Profiler,
    /// Mean fraction of the run each worker spent busy (0..=1).
    pub utilization: f64,
    /// Per-worker scheduling stats, ordered by worker index.
    pub worker_stats: Vec<WorkerStats>,
    /// `true` when an [`JobObserver`] requested cancellation mid-run:
    /// `records` then holds only the jobs that completed (still sorted by
    /// serial index, but with gaps) and must not be treated as a full
    /// matrix.
    pub cancelled: bool,
}

impl EngineRun {
    /// Jobs completed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.job_count as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Jobs served from the result store, summed across workers.
    pub fn store_hits(&self) -> usize {
        self.worker_stats.iter().map(|s| s.store_hits).sum()
    }

    /// Jobs simulated because the result store had no valid entry, summed
    /// across workers.
    pub fn store_misses(&self) -> usize {
        self.worker_stats.iter().map(|s| s.store_misses).sum()
    }
}

/// Runs one `(workload, prefetcher)` job. With a result store attached it
/// is consulted first — a verified hit skips the trace load and the
/// simulation and is accounted under the `cached` phase; a miss (or no
/// store) loads the trace, simulates, and persists the fresh record.
/// Returns the record and whether it was served from the store.
#[allow(clippy::too_many_arguments)]
fn run_job(
    store: Option<&ResultStore>,
    store_writes: bool,
    sim: &Simulator,
    spans: &Spans,
    system: &SystemConfig,
    w: &'static WorkloadSpec,
    kind: PrefetcherKind,
    scale: Scale,
    stream_threshold: u64,
    prof: &mut Profiler,
    stats: &mut WorkerStats,
) -> (RunRecord, bool) {
    let key = store.map(|_| ResultKey::new(w, scale, kind, system));
    if let (Some(st), Some(key)) = (store, key.as_ref()) {
        let lookup_start = Instant::now();
        if let Some(record) = st.get(key) {
            prof.record("cached", lookup_start.elapsed());
            stats.store_hits += 1;
            return (record, true);
        }
    }
    let gen_start = Instant::now();
    let gen_span = spans.begin("generate");
    let trace = trace_store::shared().replay_source(w, scale, stream_threshold);
    gen_span.attr("streamed", trace.is_streamed());
    drop(gen_span);
    prof.record("generate", gen_start.elapsed());
    let sim_start = Instant::now();
    let record = sim.run(w.name, w.group == Group::MemoryIntensive, &trace, kind);
    prof.record("simulate", sim_start.elapsed());
    if let (Some(st), Some(key)) = (store, key.as_ref()) {
        if store_writes {
            st.put(key, &record);
        }
        stats.store_misses += 1;
    }
    (record, false)
}

/// Schedules `(workload, prefetcher, scale)` simulation jobs across worker
/// threads. See the module docs for the scheduling and determinism model.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The result store this run consults, if any.
    fn store(&self) -> Option<&ResultStore> {
        match &self.cfg.result_cache {
            ResultCache::Off => None,
            ResultCache::Shared => Some(result_store::shared()),
            ResultCache::At(store) => Some(store),
        }
    }

    /// Runs the full `workloads × kinds` matrix at `scale` and returns the
    /// records in workload-major, prefetcher-minor order.
    ///
    /// ```
    /// use cbws_harness::{Engine, EngineConfig, PrefetcherKind};
    /// use cbws_workloads::{by_name, Scale};
    ///
    /// let engine = Engine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
    /// let run = engine.run(
    ///     Scale::Tiny,
    ///     &[by_name("stencil-default").unwrap()],
    ///     &[PrefetcherKind::Stride, PrefetcherKind::Cbws],
    /// );
    /// assert_eq!(run.records.len(), 2);
    /// assert_eq!(run.records[0].prefetcher, PrefetcherKind::Stride.name());
    /// ```
    pub fn run(
        &self,
        scale: Scale,
        workloads: &[&'static WorkloadSpec],
        kinds: &[PrefetcherKind],
    ) -> EngineRun {
        let job_count = workloads.len() * kinds.len();
        let requested = if self.cfg.jobs == 0 {
            detect_parallelism()
        } else {
            self.cfg.jobs
        };
        let workers = requested.max(1).min(job_count.max(1));
        let telemetry = &self.cfg.telemetry;
        let spans = &self.cfg.spans;
        // Route `trace_store.*` counters and load/generate spans to the
        // same sinks so cache behaviour shows up in `--metrics-out` dumps
        // and on the worker timelines.
        trace_store::shared().set_telemetry(telemetry.clone());
        trace_store::shared().set_spans(spans.clone());
        let store = self.store();
        if let Some(st) = store {
            st.set_telemetry(telemetry.clone());
            st.set_spans(spans.clone());
        }
        telemetry.set_gauge("engine.workers", workers as f64);
        telemetry.set_gauge("engine.jobs.total", job_count as f64);
        telemetry.set_gauge("engine.queue.depth", job_count as f64);

        if workers == 1 {
            return self.run_single(scale, workloads, kinds);
        }

        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        // Set by an observer returning `false`: workers stop claiming.
        let cancel = AtomicBool::new(false);
        // Done/total progress lines under `--progress`, shared across
        // workers so the rate limit is global.
        let heartbeat = Mutex::new(Heartbeat::new(Duration::from_secs(1)));
        // (index, record) pairs plus merged profiler and per-worker stats.
        type WorkerOutput = (Vec<(usize, RunRecord)>, Profiler, Vec<WorkerStats>);
        let shared: Mutex<WorkerOutput> =
            Mutex::new((Vec::with_capacity(job_count), Profiler::new(), Vec::new()));
        let engine_span = spans.begin("engine.run");
        engine_span.attr("jobs", job_count).attr("workers", workers);
        let start = Instant::now();
        std::thread::scope(|s| {
            let next = &next;
            let completed = &completed;
            let cancel = &cancel;
            let heartbeat = &heartbeat;
            let shared = &shared;
            let system = self.cfg.system;
            let observer = self.cfg.observer.as_ref();
            let store_writes = self.cfg.store_writes;
            let stream_threshold = self.cfg.resolved_stream_threshold();
            for worker in 0..workers {
                let spans = spans.clone();
                s.spawn(move || {
                    let lane = spans.lane(&format!("worker-{worker}"));
                    spans.adopt_lane(lane);
                    // Per-run simulator telemetry stays disabled (see the
                    // module docs), but the span collector rides along so
                    // `Core::run` lands on this worker's lane.
                    let sim = Simulator::with_telemetry(
                        system,
                        Telemetry::disabled().with_spans(spans.clone()),
                    );
                    let mut local: Vec<(usize, RunRecord)> = Vec::new();
                    let mut prof = Profiler::new();
                    let mut stats = WorkerStats::new(worker);
                    let loop_start = Instant::now();
                    loop {
                        // The idle span covers the gap from the previous
                        // job's end (or thread start) to the next claim.
                        let idle = spans.begin("idle");
                        if cancel.load(Ordering::Relaxed) {
                            break; // cooperative cancellation between jobs
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= job_count {
                            break; // `idle` drops here, closing the gap
                        }
                        drop(idle);
                        let w = workloads[i / kinds.len()];
                        let kind = kinds[i % kinds.len()];
                        let job_span = if spans.is_enabled() {
                            let g = spans.begin(&format!("{}/{}", w.name, kind.name()));
                            g.attr("workload", w.name)
                                .attr("prefetcher", kind.name())
                                .attr("job", i);
                            Some(g)
                        } else {
                            None
                        };
                        let job_start = Instant::now();
                        let (record, cached) = run_job(
                            store,
                            store_writes,
                            &sim,
                            &spans,
                            &system,
                            w,
                            kind,
                            scale,
                            stream_threshold,
                            &mut prof,
                            &mut stats,
                        );
                        if store.is_some() {
                            if let Some(g) = &job_span {
                                g.attr("cached", cached);
                            }
                        }
                        drop(job_span);
                        let job_elapsed = job_start.elapsed();
                        stats.jobs += 1;
                        stats.busy_seconds += job_elapsed.as_secs_f64();
                        stats.job_us.record(job_elapsed.as_micros() as u64);
                        if let Some(obs) = observer {
                            let go = obs(&JobUpdate {
                                job: i,
                                job_count,
                                workload: w.name,
                                prefetcher: kind.name(),
                                cached,
                                record: &record,
                            });
                            if !go {
                                cancel.store(true, Ordering::Relaxed);
                            }
                        }
                        local.push((i, record));
                        telemetry.count("engine.jobs.completed", 1);
                        telemetry.observe("engine.job.us", job_elapsed.as_micros() as u64);
                        telemetry.set_gauge(
                            "engine.queue.depth",
                            job_count.saturating_sub(next.load(Ordering::Relaxed)) as f64,
                        );
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        if log::level() >= Verbosity::Verbose {
                            let msg = heartbeat
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .tick(done as u64, job_count as u64);
                            if let Some(msg) = msg {
                                detail!("[engine] {msg}");
                            }
                        }
                    }
                    stats.idle_seconds =
                        (loop_start.elapsed().as_secs_f64() - stats.busy_seconds).max(0.0);
                    let mut g = shared.lock().unwrap_or_else(|e| e.into_inner());
                    g.0.extend(local);
                    g.1.merge(&prof);
                    g.2.push(stats);
                });
            }
        });
        let wall_seconds = start.elapsed().as_secs_f64();
        drop(engine_span);

        let cancelled = cancel.load(Ordering::Relaxed);
        let (mut indexed, profiler, mut worker_stats) =
            shared.into_inner().unwrap_or_else(|e| e.into_inner());
        indexed.sort_unstable_by_key(|(i, _)| *i);
        debug_assert!(cancelled || indexed.iter().enumerate().all(|(pos, (i, _))| pos == *i));
        let records: Vec<RunRecord> = indexed.into_iter().map(|(_, r)| r).collect();
        worker_stats.sort_unstable_by_key(|s| s.worker);

        let busy_total: f64 = worker_stats.iter().map(|s| s.busy_seconds).sum();
        let utilization = if wall_seconds > 0.0 && workers > 0 {
            (busy_total / (workers as f64 * wall_seconds)).min(1.0)
        } else {
            0.0
        };
        for s in &worker_stats {
            let prefix = format!("engine.worker.{}", s.worker);
            telemetry.set_gauge(&format!("{prefix}.jobs"), s.jobs as f64);
            telemetry.set_gauge(&format!("{prefix}.busy_seconds"), s.busy_seconds);
            telemetry.set_gauge(&format!("{prefix}.idle_seconds"), s.idle_seconds);
        }
        let run = EngineRun {
            records,
            workers,
            job_count,
            wall_seconds,
            profiler,
            utilization,
            worker_stats,
            cancelled,
        };
        telemetry.set_gauge("engine.wall_seconds", wall_seconds);
        telemetry.set_gauge("engine.jobs_per_sec", run.jobs_per_sec());
        telemetry.set_gauge("engine.utilization", utilization);
        run.profiler.export(telemetry);
        run
    }

    /// Dedicated single-worker fast path: every job runs inline on the
    /// calling thread, with one [`Simulator`], one in-order records
    /// buffer, and one scratch arena reused across jobs. Relative to the
    /// threaded path this drops the thread spawn/join, the shared-state
    /// mutexes, the per-job `engine.queue.depth` gauge write, and the
    /// index-sort merge — the fixed overheads that made engine `--jobs 1`
    /// measurably slower than the serial sweep. Records, worker stats,
    /// phases, and `engine.*` metrics keep the exact shape of a one-worker
    /// threaded run; job spans additionally carry `fast_path=true` so
    /// Perfetto timelines distinguish the two paths.
    fn run_single(
        &self,
        scale: Scale,
        workloads: &[&'static WorkloadSpec],
        kinds: &[PrefetcherKind],
    ) -> EngineRun {
        let job_count = workloads.len() * kinds.len();
        let telemetry = &self.cfg.telemetry;
        let spans = &self.cfg.spans;
        let store = self.store();
        let engine_span = spans.begin("engine.run");
        engine_span
            .attr("jobs", job_count)
            .attr("workers", 1)
            .attr("fast_path", true);
        let start = Instant::now();
        // Run under the `worker-0` lane so timelines look the same as a
        // one-worker threaded run, then restore the caller's lane.
        let caller_lane = spans.current_lane();
        let lane = spans.lane("worker-0");
        spans.adopt_lane(lane);
        let sim = Simulator::with_telemetry(
            self.cfg.system,
            Telemetry::disabled().with_spans(spans.clone()),
        );
        let mut records: Vec<RunRecord> = Vec::with_capacity(job_count);
        let mut prof = Profiler::new();
        let mut stats = WorkerStats::new(0);
        let mut heartbeat = Heartbeat::new(Duration::from_secs(1));
        let stream_threshold = self.cfg.resolved_stream_threshold();
        let mut i = 0usize;
        let mut cancelled = false;
        'outer: for &w in workloads {
            for &kind in kinds {
                let job_span = if spans.is_enabled() {
                    let g = spans.begin(&format!("{}/{}", w.name, kind.name()));
                    g.attr("workload", w.name)
                        .attr("prefetcher", kind.name())
                        .attr("job", i)
                        .attr("fast_path", true);
                    Some(g)
                } else {
                    None
                };
                let job_start = Instant::now();
                let (record, cached) = run_job(
                    store,
                    self.cfg.store_writes,
                    &sim,
                    spans,
                    &self.cfg.system,
                    w,
                    kind,
                    scale,
                    stream_threshold,
                    &mut prof,
                    &mut stats,
                );
                if store.is_some() {
                    if let Some(g) = &job_span {
                        g.attr("cached", cached);
                    }
                }
                drop(job_span);
                let job_elapsed = job_start.elapsed();
                stats.jobs += 1;
                stats.busy_seconds += job_elapsed.as_secs_f64();
                stats.job_us.record(job_elapsed.as_micros() as u64);
                if let Some(obs) = &self.cfg.observer {
                    let go = obs(&JobUpdate {
                        job: i,
                        job_count,
                        workload: w.name,
                        prefetcher: kind.name(),
                        cached,
                        record: &record,
                    });
                    if !go {
                        records.push(record);
                        telemetry.count("engine.jobs.completed", 1);
                        cancelled = true;
                        break 'outer;
                    }
                }
                records.push(record);
                telemetry.count("engine.jobs.completed", 1);
                telemetry.observe("engine.job.us", job_elapsed.as_micros() as u64);
                i += 1;
                if log::level() >= Verbosity::Verbose {
                    if let Some(msg) = heartbeat.tick(i as u64, job_count as u64) {
                        detail!("[engine] {msg}");
                    }
                }
            }
        }
        spans.adopt_lane(caller_lane);
        let wall_seconds = start.elapsed().as_secs_f64();
        drop(engine_span);
        telemetry.set_gauge("engine.queue.depth", 0.0);
        stats.idle_seconds = (wall_seconds - stats.busy_seconds).max(0.0);
        let utilization = if wall_seconds > 0.0 {
            (stats.busy_seconds / wall_seconds).min(1.0)
        } else {
            0.0
        };
        telemetry.set_gauge("engine.worker.0.jobs", stats.jobs as f64);
        telemetry.set_gauge("engine.worker.0.busy_seconds", stats.busy_seconds);
        telemetry.set_gauge("engine.worker.0.idle_seconds", stats.idle_seconds);
        let run = EngineRun {
            records,
            workers: 1,
            job_count,
            wall_seconds,
            profiler: prof,
            utilization,
            worker_stats: vec![stats],
            cancelled,
        };
        telemetry.set_gauge("engine.wall_seconds", wall_seconds);
        telemetry.set_gauge("engine.jobs_per_sec", run.jobs_per_sec());
        telemetry.set_gauge("engine.utilization", utilization);
        run.profiler.export(telemetry);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_workloads::by_name;
    use std::path::PathBuf;

    fn picks(names: &[&str]) -> Vec<&'static WorkloadSpec> {
        names.iter().map(|n| by_name(n).unwrap()).collect()
    }

    /// A unique per-test scratch directory for result-store tests.
    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cbws-engine-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn serial_reference(
        scale: Scale,
        workloads: &[&'static WorkloadSpec],
        kinds: &[PrefetcherKind],
    ) -> Vec<RunRecord> {
        let sim = Simulator::new(SystemConfig::default());
        let mut records = Vec::new();
        for w in workloads {
            let trace = w.generate(scale);
            for &kind in kinds {
                records.push(sim.run(w.name, w.group == Group::MemoryIntensive, &trace, kind));
            }
        }
        records
    }

    #[test]
    fn engine_matches_serial_for_any_worker_count() {
        let workloads = picks(&["stencil-default", "histo-large", "nw"]);
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::Sms,
            PrefetcherKind::CbwsSms,
        ];
        let serial = serial_reference(Scale::Tiny, &workloads, &kinds);
        for jobs in [1, 2, 8] {
            let run = Engine::new(EngineConfig {
                jobs,
                ..EngineConfig::default()
            })
            .run(Scale::Tiny, &workloads, &kinds);
            assert_eq!(run.job_count, serial.len());
            assert_eq!(run.records, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn stream_threshold_resolution() {
        let explicit = EngineConfig {
            stream_threshold_bytes: Some(7),
            ..EngineConfig::default()
        };
        assert_eq!(explicit.resolved_stream_threshold(), 7);
        let default = EngineConfig::default();
        match std::env::var(STREAM_THRESHOLD_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(n) => assert_eq!(default.resolved_stream_threshold(), n),
            None => assert_eq!(
                default.resolved_stream_threshold(),
                DEFAULT_STREAM_THRESHOLD_BYTES
            ),
        }
    }

    /// With the threshold forced to zero every job replays straight from
    /// the store file through the read-ahead cursor; the records must be
    /// byte-identical to the in-memory path.
    #[test]
    fn streamed_replay_matches_in_memory_records() {
        // A workload no other test in this binary touches, so the store's
        // memoized stream-vs-memory decision for the key is ours alone.
        let workloads = picks(&["cholesky-tk29"]);
        let kinds = [PrefetcherKind::None, PrefetcherKind::CbwsSms];
        let serial = serial_reference(Scale::Tiny, &workloads, &kinds);
        let run = Engine::new(EngineConfig {
            jobs: 2,
            stream_threshold_bytes: Some(0),
            ..EngineConfig::default()
        })
        .run(Scale::Tiny, &workloads, &kinds);
        assert_eq!(run.records, serial);
        // The store decided to stream this key and remembers the decision:
        // the jobs above replayed from disk, not from a resident trace.
        let src = trace_store::shared().replay_source(workloads[0], Scale::Tiny, u64::MAX);
        assert!(src.is_streamed());
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let workloads = picks(&["stencil-default"]);
        let run = Engine::new(EngineConfig {
            jobs: 64,
            ..EngineConfig::default()
        })
        .run(Scale::Tiny, &workloads, &[PrefetcherKind::None]);
        assert_eq!(run.workers, 1);
        assert_eq!(run.records.len(), 1);
    }

    #[test]
    fn empty_matrix_is_empty_run() {
        let run = Engine::default().run(Scale::Tiny, &[], &[]);
        assert!(run.records.is_empty());
        assert_eq!(run.job_count, 0);
    }

    #[test]
    fn engine_metrics_and_phases_recorded() {
        let telemetry = Telemetry::enabled(64);
        let workloads = picks(&["stencil-default", "nw"]);
        let run = Engine::new(EngineConfig {
            jobs: 2,
            telemetry: telemetry.clone(),
            ..EngineConfig::default()
        })
        .run(Scale::Tiny, &workloads, &[PrefetcherKind::Sms]);
        let counter = |p: &str| telemetry.with_metrics(|r| r.counter(p)).unwrap().unwrap();
        assert_eq!(counter("engine.jobs.completed"), 2);
        assert!(run.wall_seconds >= 0.0);
        assert!(run.utilization > 0.0 && run.utilization <= 1.0);
        let phases: Vec<String> = run
            .profiler
            .phases()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert!(phases.contains(&"generate".to_string()));
        assert!(phases.contains(&"simulate".to_string()));
    }

    #[test]
    fn worker_stats_cover_every_job() {
        let workloads = picks(&["stencil-default", "histo-large", "nw"]);
        let run = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        })
        .run(
            Scale::Tiny,
            &workloads,
            &[PrefetcherKind::None, PrefetcherKind::Sms],
        );
        assert_eq!(run.worker_stats.len(), 2);
        assert_eq!(
            run.worker_stats
                .iter()
                .map(|s| s.worker)
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        let total_jobs: usize = run.worker_stats.iter().map(|s| s.jobs).sum();
        assert_eq!(total_jobs, run.job_count);
        for s in &run.worker_stats {
            assert_eq!(s.job_us.count() as usize, s.jobs);
            assert!(s.busy_seconds >= 0.0 && s.idle_seconds >= 0.0);
            if s.jobs > 0 {
                assert!(s.busy_seconds > 0.0);
            }
        }
    }

    #[test]
    fn single_worker_fast_path_tags_spans_and_restores_lane() {
        let spans = Spans::enabled();
        let main_lane = spans.lane("main");
        spans.adopt_lane(main_lane);
        let telemetry = Telemetry::enabled(64);
        let workloads = picks(&["stencil-default", "nw"]);
        let run = Engine::new(EngineConfig {
            jobs: 1,
            spans: spans.clone(),
            telemetry: telemetry.clone(),
            ..EngineConfig::default()
        })
        .run(
            Scale::Tiny,
            &workloads,
            &[PrefetcherKind::None, PrefetcherKind::Sms],
        );
        assert_eq!(run.workers, 1);
        assert_eq!(run.worker_stats.len(), 1);
        assert_eq!(run.worker_stats[0].jobs, 4);
        assert_eq!(run.worker_stats[0].job_us.count(), 4);
        assert!(run.utilization > 0.0 && run.utilization <= 1.0);
        // Metrics keep the threaded shape.
        let counter = |p: &str| telemetry.with_metrics(|r| r.counter(p)).unwrap().unwrap();
        assert_eq!(counter("engine.jobs.completed"), 4);
        // The caller thread is bound back to its original lane.
        assert_eq!(spans.current_lane(), main_lane);
        // Job spans run on the worker-0 lane and are tagged fast_path.
        let lanes = spans.lanes();
        let w0 = lanes.iter().position(|l| l == "worker-0").unwrap();
        let records = spans.records();
        let jobs: Vec<_> = records.iter().filter(|r| r.name.contains('/')).collect();
        assert_eq!(jobs.len(), 4, "{records:?}");
        for job in &jobs {
            assert_eq!(job.lane, w0, "{job:?}");
            assert!(
                job.attrs
                    .iter()
                    .any(|(k, v)| k == "fast_path" && v == "true"),
                "{job:?}"
            );
        }
        assert!(records.iter().all(|r| r.dur_us.is_some()));
    }

    #[test]
    fn cached_run_matches_fresh_and_counts_hits() {
        let dir = scratch_dir("cached");
        let store = Arc::new(ResultStore::at(&dir));
        let workloads = picks(&["stencil-default", "nw"]);
        let kinds = [PrefetcherKind::None, PrefetcherKind::Sms];
        let serial = serial_reference(Scale::Tiny, &workloads, &kinds);

        let cfg = |jobs| EngineConfig {
            jobs,
            result_cache: ResultCache::At(store.clone()),
            ..EngineConfig::default()
        };
        // First run: empty store, every job simulates and persists.
        let fresh = Engine::new(cfg(1)).run(Scale::Tiny, &workloads, &kinds);
        assert_eq!(fresh.store_hits(), 0);
        assert_eq!(fresh.store_misses(), fresh.job_count);
        assert_eq!(fresh.records, serial, "fresh cached run must equal serial");

        // Second run (threaded path): every job served from the store,
        // byte-identical records, no simulate phase at all.
        let cached = Engine::new(cfg(2)).run(Scale::Tiny, &workloads, &kinds);
        assert_eq!(cached.store_hits(), cached.job_count);
        assert_eq!(cached.store_misses(), 0);
        assert_eq!(cached.records, serial, "stored records must round-trip");
        let phases: Vec<String> = cached
            .profiler
            .phases()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert!(phases.contains(&"cached".to_string()), "{phases:?}");
        assert!(!phases.contains(&"simulate".to_string()), "{phases:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_executes_only_remaining_jobs() {
        let dir = scratch_dir("resume");
        let store = Arc::new(ResultStore::at(&dir));
        let workloads = picks(&["stencil-default", "histo-large", "nw"]);
        let all = [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::CbwsSms,
        ];
        let cfg = |jobs| EngineConfig {
            jobs,
            result_cache: ResultCache::At(store.clone()),
            ..EngineConfig::default()
        };
        // Simulate an interrupted sweep: only part of the matrix landed in
        // the store before the kill.
        let partial = Engine::new(cfg(1)).run(Scale::Tiny, &workloads, &all[..2]);
        assert_eq!(partial.store_misses(), 6);

        // The restarted full sweep serves the finished jobs from the store
        // and simulates exactly the remaining ones.
        let resumed = Engine::new(cfg(2)).run(Scale::Tiny, &workloads, &all);
        assert_eq!(resumed.job_count, 12);
        assert_eq!(resumed.store_hits(), 6, "finished jobs must not re-run");
        assert_eq!(resumed.store_misses(), 6, "only remaining jobs simulate");
        assert_eq!(
            resumed.records,
            serial_reference(Scale::Tiny, &workloads, &all)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_off_never_touches_the_store() {
        let workloads = picks(&["stencil-default"]);
        let run = Engine::new(EngineConfig::default()).run(
            Scale::Tiny,
            &workloads,
            &[PrefetcherKind::Sms],
        );
        assert_eq!(run.store_hits(), 0);
        assert_eq!(run.store_misses(), 0);
    }

    #[test]
    fn observer_sees_every_job_with_serial_indices() {
        let seen: Arc<Mutex<Vec<(usize, String, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let workloads = picks(&["stencil-default", "nw"]);
        let kinds = [PrefetcherKind::None, PrefetcherKind::Sms];
        let run = Engine::new(EngineConfig {
            jobs: 2,
            observer: Some(Arc::new(move |u: &JobUpdate<'_>| {
                sink.lock().unwrap().push((
                    u.job,
                    u.workload.to_string(),
                    u.record.prefetcher.clone(),
                ));
                true
            })),
            ..EngineConfig::default()
        })
        .run(Scale::Tiny, &workloads, &kinds);
        assert!(!run.cancelled);
        let mut seen = seen.lock().unwrap().clone();
        seen.sort();
        assert_eq!(seen.len(), run.job_count);
        // Indices are the serial order; workload/prefetcher derive from them.
        for (i, (job, workload, prefetcher)) in seen.iter().enumerate() {
            assert_eq!(*job, i);
            assert_eq!(*workload, workloads[i / kinds.len()].name);
            assert_eq!(*prefetcher, kinds[i % kinds.len()].name());
        }
    }

    #[test]
    fn observer_cancel_stops_the_run() {
        let workloads = picks(&["stencil-default", "histo-large", "nw"]);
        let kinds = [PrefetcherKind::None, PrefetcherKind::Sms];
        for jobs in [1, 2] {
            let done = Arc::new(AtomicUsize::new(0));
            let counter = done.clone();
            let run = Engine::new(EngineConfig {
                jobs,
                observer: Some(Arc::new(move |_: &JobUpdate<'_>| {
                    counter.fetch_add(1, Ordering::Relaxed) + 1 < 2
                })),
                ..EngineConfig::default()
            })
            .run(Scale::Tiny, &workloads, &kinds);
            assert!(run.cancelled, "jobs = {jobs}");
            assert!(
                run.records.len() < run.job_count,
                "jobs = {jobs}: cancellation must leave the matrix unfinished \
                 ({} of {} records)",
                run.records.len(),
                run.job_count
            );
        }
    }

    #[test]
    fn store_writes_off_reads_but_never_persists() {
        let dir = scratch_dir("readonly");
        let store = Arc::new(ResultStore::at(&dir));
        let workloads = picks(&["stencil-default"]);
        let kinds = [PrefetcherKind::None, PrefetcherKind::Sms];
        let cfg = |store_writes| EngineConfig {
            jobs: 1,
            result_cache: ResultCache::At(store.clone()),
            store_writes,
            ..EngineConfig::default()
        };
        // Read-only against an empty store: every job misses, simulates,
        // and leaves nothing on disk.
        let first = Engine::new(cfg(false)).run(Scale::Tiny, &workloads, &kinds);
        assert_eq!(first.store_misses(), first.job_count);
        let entries = || std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(entries(), 0, "read-only mode must not write the store");
        // Populate normally, then read-only serves every job from disk.
        Engine::new(cfg(true)).run(Scale::Tiny, &workloads, &kinds);
        let populated = entries();
        assert!(populated > 0);
        let cached = Engine::new(cfg(false)).run(Scale::Tiny, &workloads, &kinds);
        assert_eq!(cached.store_hits(), cached.job_count);
        assert_eq!(entries(), populated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_record_one_lane_per_worker_with_job_and_idle_spans() {
        let spans = Spans::enabled();
        let workloads = picks(&["stencil-default", "nw"]);
        let run = Engine::new(EngineConfig {
            jobs: 2,
            spans: spans.clone(),
            ..EngineConfig::default()
        })
        .run(
            Scale::Tiny,
            &workloads,
            &[PrefetcherKind::None, PrefetcherKind::Sms],
        );
        assert_eq!(run.job_count, 4);
        let lanes = spans.lanes();
        assert!(lanes.iter().any(|l| l == "worker-0"), "{lanes:?}");
        assert!(lanes.iter().any(|l| l == "worker-1"), "{lanes:?}");
        let records = spans.records();
        // One top-level engine.run span, one span per job named
        // workload/prefetcher with attrs, plus idle gaps on each worker.
        assert_eq!(records.iter().filter(|r| r.name == "engine.run").count(), 1);
        let jobs: Vec<_> = records.iter().filter(|r| r.name.contains('/')).collect();
        assert_eq!(jobs.len(), 4, "{records:?}");
        assert!(jobs.iter().any(|r| r.name == "stencil-default/SMS"
            && r.attrs
                .iter()
                .any(|(k, v)| k == "workload" && v == "stencil-default")));
        assert!(records.iter().filter(|r| r.name == "idle").count() >= 2);
        // Every span closed by the end of the run.
        assert!(records.iter().all(|r| r.dur_us.is_some()));
    }
}
