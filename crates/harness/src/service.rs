//! Reusable sweep orchestration — the service layer shared by the CLI
//! binaries and the sweep server (`crates/server`).
//!
//! Before this module existed, every harness binary hand-wired the same
//! sequence: pick workloads and prefetchers, build an [`EngineConfig`],
//! run the engine, and assemble a [`RunManifest`] from the run's timing
//! and worker stats. The sweep server needs exactly that sequence driven
//! from an HTTP request instead of `std::env::args`, so the pieces live
//! here as plain data in / data out functions:
//!
//! - [`resolve_workloads`] / [`resolve_kinds`] / [`parse_scale`] turn
//!   client-supplied *names* (workload names, prefetcher display names,
//!   the `all` / `mi` / `extended` group aliases) into specs, with
//!   human-readable errors naming the unknown input;
//! - [`SweepSpec`] is one fully resolved sweep request;
//! - [`SweepSession`] carries the process-level wiring (telemetry sink,
//!   span collector, result-store policy) and [`SweepSession::run`]
//!   executes a spec, returning the records *and* the manifest in one
//!   [`SweepOutcome`].
//!
//! [`crate::experiments::sweep_engine`] and the binaries delegate here,
//! so a sweep submitted over HTTP and one run from the command line share
//! every line of orchestration code — the byte-identical-records
//! guarantee is structural, not coincidental.

use crate::engine::{Engine, EngineConfig, EngineRun, JobObserver, ResultCache};
use crate::manifest::RunManifest;
use crate::runner::{PrefetcherKind, SystemConfig};
use cbws_telemetry::{Spans, Telemetry};
use cbws_workloads::{by_name, mi_suite, Scale, WorkloadSpec, ALL};

/// Resolves client-supplied workload names into specs. The aliases `all`
/// (every benchmark; also the empty list's meaning) and `mi` (the
/// memory-intensive suite) are accepted alongside exact names; an unknown
/// name fails with a message listing it.
pub fn resolve_workloads(names: &[String]) -> Result<Vec<&'static WorkloadSpec>, String> {
    if names.is_empty() || (names.len() == 1 && names[0] == "all") {
        return Ok(ALL.iter().collect());
    }
    if names.len() == 1 && names[0] == "mi" {
        return Ok(mi_suite());
    }
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        match by_name(name) {
            Some(w) => out.push(w),
            None => {
                return Err(format!(
                    "unknown workload `{name}` (use exact names from /v1/workloads, \
                     or the aliases `all` / `mi`)"
                ))
            }
        }
    }
    Ok(out)
}

/// Resolves client-supplied prefetcher display names into kinds. The
/// aliases `all` (the paper's seven-kind comparison; also the empty
/// list's meaning) and `extended` (those seven plus the extended-
/// comparison kinds) are accepted alongside exact names, matched
/// case-insensitively; an unknown name fails with a message listing it.
pub fn resolve_kinds(names: &[String]) -> Result<Vec<PrefetcherKind>, String> {
    if names.is_empty() || (names.len() == 1 && names[0] == "all") {
        return Ok(PrefetcherKind::ALL.to_vec());
    }
    if names.len() == 1 && names[0] == "extended" {
        let mut kinds = PrefetcherKind::ALL.to_vec();
        kinds.extend(PrefetcherKind::EXTENDED);
        return Ok(kinds);
    }
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        match PrefetcherKind::from_name(name) {
            Some(k) => out.push(k),
            None => {
                return Err(format!(
                    "unknown prefetcher `{name}` (use display names like `SMS` or \
                     `CBWS+SMS`, or the aliases `all` / `extended`)"
                ))
            }
        }
    }
    Ok(out)
}

/// Parses a lowercase scale name (`tiny` / `small` / `full` / `huge`).
pub fn parse_scale(name: &str) -> Result<Scale, String> {
    match name {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        "huge" => Ok(Scale::Huge),
        other => Err(format!(
            "unknown scale `{other}` (tiny, small, full, or huge)"
        )),
    }
}

/// One fully resolved sweep request: the `(workload × prefetcher)` matrix,
/// the scale, the worker count, and the system configuration.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Workloads to sweep (outer/major axis of the job matrix).
    pub workloads: Vec<&'static WorkloadSpec>,
    /// Prefetcher kinds to sweep (inner/minor axis).
    pub kinds: Vec<PrefetcherKind>,
    /// Trace scale every job runs at.
    pub scale: Scale,
    /// Engine worker threads; `0` = all cores.
    pub jobs: usize,
    /// System configuration every simulation runs under.
    pub system: SystemConfig,
    /// Streamed-replay threshold in bytes; `None` defers to the
    /// `CBWS_STREAM_THRESHOLD_BYTES` environment variable, then to
    /// [`crate::engine::DEFAULT_STREAM_THRESHOLD_BYTES`]. `Some(0)` streams
    /// every trace from disk.
    pub stream_threshold_bytes: Option<u64>,
}

impl SweepSpec {
    /// The paper's full-matrix sweep: every workload × the seven headline
    /// prefetchers, at `scale`, under the default configuration.
    pub fn full_matrix(scale: Scale, jobs: usize) -> SweepSpec {
        SweepSpec {
            workloads: ALL.iter().collect(),
            kinds: PrefetcherKind::ALL.to_vec(),
            scale,
            jobs,
            system: SystemConfig::default(),
            stream_threshold_bytes: None,
        }
    }

    /// Total jobs the spec expands to.
    pub fn job_count(&self) -> usize {
        self.workloads.len() * self.kinds.len()
    }
}

/// Process-level wiring an orchestrated sweep runs under: where metrics
/// and spans go, and how the persistent result store participates. One
/// session outlives many [`SweepSession::run`] calls — the server builds
/// one at startup; the CLI builds one per invocation from its flags.
#[derive(Debug, Clone)]
pub struct SweepSession {
    /// Sink for `engine.*`, `trace_store.*`, and `result_store.*` metrics.
    pub telemetry: Telemetry,
    /// Span collector for per-worker timelines.
    pub spans: Spans,
    /// Result-store policy for every run of this session.
    pub result_cache: ResultCache,
    /// When `false`, runs consult the store but never persist fresh
    /// records (the server's over-quota mode; see
    /// [`EngineConfig::store_writes`]).
    pub store_writes: bool,
}

impl Default for SweepSession {
    fn default() -> Self {
        SweepSession {
            telemetry: Telemetry::disabled(),
            spans: Spans::disabled(),
            result_cache: ResultCache::Off,
            store_writes: true,
        }
    }
}

/// Everything one orchestrated sweep produced: the engine run (records in
/// serial order, worker stats, phases) and the manifest describing it.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The engine run itself.
    pub run: EngineRun,
    /// A manifest with timing and worker stats already folded in; callers
    /// persist it with [`RunManifest::save`] or embed its JSON form.
    pub manifest: RunManifest,
}

impl SweepSession {
    /// Runs `spec` through the work-stealing engine and assembles the
    /// manifest, attributed to `binary`. `observer` (usually `None`)
    /// streams per-job completions and can cancel the run — see
    /// [`JobObserver`]; a cancelled run still returns its partial records
    /// and an honest manifest.
    pub fn run(
        &self,
        binary: &str,
        spec: &SweepSpec,
        observer: Option<JobObserver>,
    ) -> SweepOutcome {
        let engine = Engine::new(EngineConfig {
            jobs: spec.jobs,
            system: spec.system,
            telemetry: self.telemetry.clone(),
            spans: self.spans.clone(),
            result_cache: self.result_cache.clone(),
            store_writes: self.store_writes,
            observer,
            stream_threshold_bytes: spec.stream_threshold_bytes,
        });
        let run = engine.run(spec.scale, &spec.workloads, &spec.kinds);
        let manifest = RunManifest::new(
            binary,
            spec.scale,
            spec.workloads.iter().map(|w| w.name),
            spec.kinds.iter().copied(),
            spec.system,
        )
        .with_timing(run.workers, run.wall_seconds, &run.profiler)
        .with_workers(&run.worker_stats);
        SweepOutcome { run, manifest }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_aliases_and_names_resolve() {
        assert_eq!(resolve_workloads(&[]).unwrap().len(), ALL.len());
        assert_eq!(resolve_workloads(&["all".into()]).unwrap().len(), ALL.len());
        let mi = resolve_workloads(&["mi".into()]).unwrap();
        assert!(!mi.is_empty() && mi.len() < ALL.len());
        let picked = resolve_workloads(&["stencil-default".into(), "nw".into()]).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name, "stencil-default");
        let err = resolve_workloads(&["no-such-workload".into()]).unwrap_err();
        assert!(err.contains("no-such-workload"), "{err}");
    }

    #[test]
    fn prefetcher_aliases_and_names_resolve() {
        assert_eq!(resolve_kinds(&[]).unwrap(), PrefetcherKind::ALL.to_vec());
        assert_eq!(
            resolve_kinds(&["all".into()]).unwrap().len(),
            PrefetcherKind::ALL.len()
        );
        assert_eq!(
            resolve_kinds(&["extended".into()]).unwrap().len(),
            PrefetcherKind::ALL.len() + PrefetcherKind::EXTENDED.len()
        );
        // Display names, case-insensitively.
        assert_eq!(
            resolve_kinds(&["sms".into(), "CBWS+SMS".into()]).unwrap(),
            vec![PrefetcherKind::Sms, PrefetcherKind::CbwsSms]
        );
        let err = resolve_kinds(&["warp-drive".into()]).unwrap_err();
        assert!(err.contains("warp-drive"), "{err}");
    }

    #[test]
    fn scale_names_parse() {
        assert_eq!(parse_scale("tiny").unwrap(), Scale::Tiny);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert_eq!(parse_scale("huge").unwrap(), Scale::Huge);
        assert!(parse_scale("gigantic").is_err());
    }

    #[test]
    fn session_run_matches_engine_and_fills_manifest() {
        let spec = SweepSpec {
            workloads: resolve_workloads(&["stencil-default".into(), "nw".into()]).unwrap(),
            kinds: vec![PrefetcherKind::None, PrefetcherKind::Sms],
            scale: Scale::Tiny,
            jobs: 1,
            system: SystemConfig::default(),
            stream_threshold_bytes: None,
        };
        let outcome = SweepSession::default().run("service-test", &spec, None);
        assert_eq!(outcome.run.records.len(), spec.job_count());
        assert!(!outcome.run.cancelled);
        // The engine path is the same one Engine::run takes directly.
        let direct = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        })
        .run(spec.scale, &spec.workloads, &spec.kinds);
        assert_eq!(outcome.run.records, direct.records);
        // The manifest is fully assembled: identity, timing, workers.
        assert_eq!(outcome.manifest.binary, "service-test");
        assert_eq!(outcome.manifest.scale, "tiny");
        assert_eq!(outcome.manifest.workloads, vec!["stencil-default", "nw"]);
        assert_eq!(outcome.manifest.prefetchers, vec!["No-Prefetch", "SMS"]);
        assert_eq!(outcome.manifest.jobs, 1);
        assert!(outcome.manifest.wall_seconds > 0.0);
        assert_eq!(outcome.manifest.worker_stats.len(), 1);
        assert_eq!(outcome.manifest.worker_stats[0].jobs, 4);
    }
}
