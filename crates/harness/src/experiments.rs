//! Per-figure/table experiment computations (see DESIGN.md §6 for the
//! experiment index). Each `figNN_*` function turns raw [`RunRecord`]s (or
//! traces) into the paper's table/figure data rendered as a [`TextTable`].

use crate::engine::{EngineRun, ResultCache};
use crate::runner::{PrefetcherKind, Simulator, SystemConfig};
use cbws_core::analysis::{collect_block_histories, DifferentialSkew};
use cbws_core::{CbwsConfig, CbwsVec};
use cbws_stats::{
    geomean, mean, GroupedBarChart, LineChart, RunRecord, StackedBarChart, TextTable,
    TimelinessBreakdown,
};
use cbws_telemetry::{detail, status, warn, Profiler, Spans, Telemetry};
use cbws_workloads::{by_name, Scale, WorkloadSpec, ALL};
use std::sync::OnceLock;

/// Formats a float with 3 significant digits for tables.
fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Reads `--scale tiny|small|full|huge` from the process arguments
/// (default: full).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("tiny") => Scale::Tiny,
            Some("small") => Scale::Small,
            Some("huge") => Scale::Huge,
            Some("full") | None => Scale::Full,
            Some(other) => {
                warn!("unknown scale `{other}`, using full");
                Scale::Full
            }
        },
        None => Scale::Full,
    }
}

/// Reads `--metrics-out F` from the process arguments (default: none).
/// When present, [`sweep_engine`] enables telemetry and dumps the metrics
/// registry (`engine.*`, `trace_store.*`, phase gauges) to `F` as JSON.
pub fn metrics_out_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Reads `--spans-out F` from the process arguments (default: none). When
/// present, [`session_spans`] is enabled and the process's span timeline is
/// exported to `F` as Chrome trace-event JSON (load it at `ui.perfetto.dev`
/// or `chrome://tracing`).
pub fn spans_out_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--spans-out")
        .and_then(|i| args.get(i + 1).cloned())
}

/// The process-wide span collector: enabled when `--spans-out` is on the
/// command line, disabled (one untaken branch per span site) otherwise.
/// The engine's workers, the trace store, and the simulated core all record
/// into this one collector, so every lane lands in a single exported
/// timeline.
pub fn session_spans() -> &'static Spans {
    static SPANS: OnceLock<Spans> = OnceLock::new();
    SPANS.get_or_init(|| {
        if spans_out_from_args().is_some() {
            Spans::enabled()
        } else {
            Spans::disabled()
        }
    })
}

/// Writes the session's spans to the `--spans-out` path as Chrome
/// trace-event JSON (best-effort, like [`save_csv`]; no-op without the
/// flag). Callable repeatedly — each call rewrites the file with the
/// timeline so far.
pub fn write_session_spans() {
    let Some(path) = spans_out_from_args() else {
        return;
    };
    let write = std::fs::File::create(&path)
        .map_err(|e| e.to_string())
        .and_then(|f| {
            session_spans()
                .write_chrome_trace(std::io::BufWriter::new(f))
                .map_err(|e| e.to_string())
        });
    match write {
        Ok(()) => status!("[spans] wrote Chrome trace to {path}"),
        Err(e) => warn!("cannot write {path}: {e}"),
    }
}

/// Reads `--jobs N` from the process arguments (default: `0`, meaning all
/// available cores — see [`crate::engine::detect_parallelism`]).
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => n,
            Some(Err(_)) | None => {
                warn!("invalid --jobs value, using all cores");
                0
            }
        },
        None => 0,
    }
}

/// Decides the engine's [`ResultCache`] policy from a CLI argument list
/// (separated from [`result_cache_from_args`] so the conflict handling is
/// unit-testable):
///
/// - default: the persistent result store is **on**
///   ([`ResultCache::Shared`]) — repeated or resumed sweeps serve already
///   computed `(workload, prefetcher, config)` jobs from
///   `CBWS_RESULT_STORE_DIR`;
/// - `--resume` makes that explicit when restarting an interrupted sweep
///   (same policy, plus a resumption report of how many jobs were already
///   done);
/// - `--no-result-cache` turns the store off — every job simulates.
///   Combining it with `--resume` warns and the store stays off.
pub fn result_cache_mode(args: &[String]) -> ResultCache {
    let no_cache = args.iter().any(|a| a == "--no-result-cache");
    if no_cache {
        if args.iter().any(|a| a == "--resume") {
            warn!("--resume has no effect with --no-result-cache; the result store stays off");
        }
        ResultCache::Off
    } else {
        ResultCache::Shared
    }
}

/// Reads `--resume` / `--no-result-cache` from the process arguments (see
/// [`result_cache_mode`] for the policy).
pub fn result_cache_from_args() -> ResultCache {
    let args: Vec<String> = std::env::args().collect();
    result_cache_mode(&args)
}

/// True when `--resume` is on the command line — callers then report the
/// already-done/remaining job split prominently.
pub fn resume_requested() -> bool {
    std::env::args().any(|a| a == "--resume")
}

/// Writes a table to `results/<name>.csv`, creating the directory if
/// needed. Errors are reported to stderr but not fatal (the text table on
/// stdout is the primary artifact).
pub fn save_csv(name: &str, table: &TextTable) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        warn!("cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(f) => {
            if let Err(e) = cbws_stats::write_csv(f, &table.header(), table.csv_rows()) {
                warn!("cannot write {}: {e}", path.display());
            }
        }
        Err(e) => warn!("cannot create {}: {e}", path.display()),
    }
}

/// Runs the full (workload x prefetcher) sweep shared by Figs. 12-15.
/// Progress goes to stderr.
pub fn sweep(scale: Scale, workloads: &[&'static WorkloadSpec]) -> Vec<RunRecord> {
    let sim = Simulator::new(SystemConfig::default());
    let mut records = Vec::with_capacity(workloads.len() * PrefetcherKind::ALL.len());
    let mut profiler = Profiler::new();
    for w in workloads {
        profiler.begin("generate");
        let trace = cbws_workloads::trace_cache::generate_shared(w, scale);
        status!(
            "[sweep] {} ({} instructions)",
            w.name,
            trace.stats().instructions
        );
        profiler.begin("simulate");
        for kind in PrefetcherKind::ALL {
            records.push(sim.run(
                w.name,
                w.group == cbws_workloads::Group::MemoryIntensive,
                &*trace,
                kind,
            ));
        }
    }
    profiler.end();
    detail!("[sweep] phase timings:\n{}", profiler.report());
    records
}

/// Writes an SVG figure to `results/<name>.svg` (best-effort, like
/// [`save_csv`]).
pub fn save_svg(name: &str, svg: &str) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        warn!("cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.svg"));
    if let Err(e) = std::fs::write(&path, svg) {
        warn!("cannot write {}: {e}", path.display());
    }
}

/// Builds the grouped-bar SVG shared by Figs. 12/14/15: one category per
/// workload present in `records`, one bar per prefetcher.
fn per_workload_svg<F>(records: &[RunRecord], title: &str, y_label: &str, metric: F) -> String
where
    F: Fn(&RunRecord) -> f64,
{
    let workloads: Vec<&str> = ALL
        .iter()
        .filter(|w| records.iter().any(|r| r.workload == w.name))
        .map(|w| w.name)
        .collect();
    let mut chart =
        GroupedBarChart::new(title, y_label).categories(workloads.iter().map(|w| w.to_string()));
    for kind in PrefetcherKind::ALL {
        let values: Vec<f64> = workloads
            .iter()
            .map(|w| metric(get(records, w, kind.name())))
            .collect();
        chart = chart.series(kind.name(), values);
    }
    chart.render()
}

/// **Fig. 12** as an SVG grouped bar chart.
pub fn fig12_svg(records: &[RunRecord]) -> String {
    per_workload_svg(
        records,
        "Fig. 12 — L2 MPKI (lower is better)",
        "MPKI",
        RunRecord::mpki,
    )
}

/// **Fig. 14** as an SVG grouped bar chart (IPC normalized to SMS).
pub fn fig14_svg(records: &[RunRecord]) -> String {
    per_workload_svg(
        records,
        "Fig. 14 — IPC normalized to SMS (higher is better)",
        "IPC / IPC(SMS)",
        |r| r.ipc() / get(records, &r.workload, "SMS").ipc(),
    )
}

/// **Fig. 15** as an SVG grouped bar chart (perf/cost vs no-prefetch).
pub fn fig15_svg(records: &[RunRecord]) -> String {
    per_workload_svg(
        records,
        "Fig. 15 — IPC per byte read, normalized to no-prefetch",
        "perf/cost ratio",
        |r| r.perf_cost() / get(records, &r.workload, "No-Prefetch").perf_cost(),
    )
}

/// **Fig. 13** as an SVG stacked bar chart of the MI-average breakdown,
/// one stack per prefetcher (the paper's per-benchmark detail remains in
/// the CSV/table form).
pub fn fig13_svg(records: &[RunRecord]) -> String {
    let kinds = PrefetcherKind::ALL;
    let mut per_kind: Vec<TimelinessBreakdown> = Vec::new();
    for kind in kinds {
        let items: Vec<TimelinessBreakdown> = records
            .iter()
            .filter(|r| r.memory_intensive && r.prefetcher == kind.name())
            .map(RunRecord::timeliness)
            .collect();
        per_kind.push(TimelinessBreakdown::mean(items.iter()));
    }
    let mut chart = StackedBarChart::new(
        "Fig. 13 — timeliness/accuracy, MI average (% of demand L2 accesses)",
        "% of demand L2 accesses",
    )
    .categories(kinds.iter().map(|k| k.name().to_string()));
    type Seg = (&'static str, fn(&TimelinessBreakdown) -> f64);
    let segs: [Seg; 5] = [
        ("timely", |b| b.timely),
        ("shorter-waiting", |b| b.shorter_waiting_time),
        ("non-timely", |b| b.non_timely),
        ("missing", |b| b.missing),
        ("wrong", |b| b.wrong),
    ];
    for (name, f) in segs {
        chart = chart.series(name, per_kind.iter().map(|b| f(b) * 100.0).collect());
    }
    chart.render()
}

/// **Fig. 5** as an SVG line chart of the coverage curves.
pub fn fig05_svg(scale: Scale) -> String {
    const BENCHES: [&str; 6] = [
        "450.soplex-ref",
        "433.milc-su3imp",
        "stencil-default",
        "radix-simlarge",
        "sgemm-medium",
        "streamcluster-simlarge",
    ];
    let mut chart = LineChart::new(
        "Fig. 5 — iterations covered vs distinct differential vectors",
        "fraction of distinct vectors",
        "fraction of iterations",
    );
    for name in BENCHES {
        let w = by_name(name).expect("registered");
        let trace = cbws_workloads::trace_store::shared().get(w, scale);
        let h = collect_block_histories(&*trace, CbwsConfig::default().max_vector);
        let skew = DifferentialSkew::from_histories(h.values());
        let pts: Vec<(f64, f64)> = std::iter::once((0.0, 0.0))
            .chain(
                skew.cdf()
                    .into_iter()
                    .map(|p| (p.vector_fraction, p.iteration_fraction)),
            )
            .collect();
        chart = chart.series(name, pts);
    }
    chart.render()
}

/// Like [`sweep`], but schedules each (workload, prefetcher) job across
/// worker threads via the work-stealing [`Engine`](crate::Engine). Results
/// are identical
/// to the serial sweep (each simulation is independent and deterministic);
/// only wall-clock time changes. Records come back in the same
/// (workload-major, prefetcher-minor) order.
///
/// `jobs = 0` uses every available core; the run reports worker count,
/// wall-clock and per-phase timings for the manifest. With `--metrics-out
/// F` on the command line, the engine's telemetry (scheduling metrics and
/// the trace and result stores' hit/miss/invalidate counters) is dumped to
/// `F`. With `--spans-out F`, the per-worker span timeline
/// ([`session_spans`]) is exported to `F` as Chrome trace-event JSON.
///
/// The persistent result store is consulted per the command line
/// ([`result_cache_from_args`]): on by default, `--resume` reports the
/// already-done/remaining split, `--no-result-cache` simulates everything.
pub fn sweep_engine(scale: Scale, workloads: &[&'static WorkloadSpec], jobs: usize) -> EngineRun {
    sweep_engine_with(scale, workloads, jobs, result_cache_from_args())
}

/// [`sweep_engine`] with an explicit [`ResultCache`] policy instead of the
/// command-line one (benches and tests pin `Off` or a scratch store so
/// their timings and phase assertions are independent of whatever the
/// shared store holds).
pub fn sweep_engine_with(
    scale: Scale,
    workloads: &[&'static WorkloadSpec],
    jobs: usize,
    result_cache: ResultCache,
) -> EngineRun {
    let metrics_out = metrics_out_from_args();
    let telemetry = if metrics_out.is_some() {
        Telemetry::enabled_default()
    } else {
        Telemetry::disabled()
    };
    let cache_on = !matches!(result_cache, ResultCache::Off);
    // The CLI and the sweep server share this orchestration path (see
    // `crate::service`); only the flag parsing and reporting around it
    // differ.
    let session = crate::service::SweepSession {
        telemetry: telemetry.clone(),
        spans: session_spans().clone(),
        result_cache,
        store_writes: true,
    };
    let spec = crate::service::SweepSpec {
        workloads: workloads.to_vec(),
        kinds: PrefetcherKind::ALL.to_vec(),
        scale,
        jobs,
        system: SystemConfig::default(),
        stream_threshold_bytes: None,
    };
    let run = session.run("sweep_engine", &spec, None).run;
    status!(
        "[engine] {} jobs on {} workers in {:.2} s ({:.1} jobs/s, {:.0}% utilization)",
        run.job_count,
        run.workers,
        run.wall_seconds,
        run.jobs_per_sec(),
        run.utilization * 100.0
    );
    if cache_on {
        let hits = run.store_hits();
        if resume_requested() {
            status!(
                "[engine] resume: {hits} of {} jobs already in the result store, {} simulated",
                run.job_count,
                run.store_misses()
            );
        } else {
            status!(
                "[engine] result store: {hits} hits, {} misses",
                run.store_misses()
            );
        }
    }
    detail!("[engine] phase timings:\n{}", run.profiler.report());
    if let Some(path) = metrics_out {
        let write = std::fs::File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|f| {
                telemetry
                    .write_metrics_json(std::io::BufWriter::new(f))
                    .map_err(|e| e.to_string())
            });
        match write {
            Ok(()) => status!("[engine] wrote metrics to {path}"),
            Err(e) => warn!("cannot write {path}: {e}"),
        }
    }
    write_session_spans();
    run
}

/// Looks up one record of a sweep.
pub fn get<'a>(records: &'a [RunRecord], workload: &str, prefetcher: &str) -> &'a RunRecord {
    records
        .iter()
        .find(|r| r.workload == workload && r.prefetcher == prefetcher)
        .unwrap_or_else(|| panic!("no record for ({workload}, {prefetcher})"))
}

/// **Fig. 1** built from existing no-prefetch records (one per
/// memory-intensive benchmark, in suite order).
pub fn fig01_from_records(records: &[RunRecord]) -> TextTable {
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "loop %".into(),
        "non-loop %".into(),
    ]);
    let mut fracs = Vec::new();
    for r in records {
        let frac = r.cpu.loop_cycle_fraction();
        fracs.push(frac);
        table.row(vec![r.workload.clone(), pct(frac), pct(1.0 - frac)]);
    }
    let avg = mean(fracs);
    table.row(vec!["average".into(), pct(avg), pct(1.0 - avg)]);
    table
}

/// **Fig. 1**: fraction of runtime spent in tight innermost loops for the
/// memory-intensive benchmarks (no-prefetch configuration). Serial; the
/// `fig01_loop_fraction` binary runs the same simulations through the
/// engine and builds the table with [`fig01_from_records`].
pub fn fig01_loop_fraction(scale: Scale) -> TextTable {
    let sim = Simulator::new(SystemConfig::default());
    let mut records = Vec::new();
    for w in cbws_workloads::mi_suite() {
        let trace = cbws_workloads::trace_store::shared().get(w, scale);
        records.push(sim.run(w.name, true, &*trace, PrefetcherKind::None));
    }
    fig01_from_records(&records)
}

/// **Figs. 3 & 4 / Table I**: the stencil CBWS access matrix and its
/// differential vectors, reconstructed from the real kernel trace.
pub fn fig03_stencil_cbws(iterations: usize) -> String {
    let trace = cbws_workloads::trace_store::shared()
        .get(by_name("stencil-default").expect("registered"), Scale::Tiny);
    let histories = collect_block_histories(&*trace, CbwsConfig::default().max_vector);
    let bh = histories.values().next().expect("stencil has one block");
    let take: Vec<&CbwsVec> = bh.instances.iter().take(iterations).collect();
    let mut out = String::new();
    out.push_str("CBWS vectors (one row per innermost-loop iteration, Fig. 3):\n");
    for (i, ws) in take.iter().enumerate() {
        out.push_str(&format!("  CBWS{i} = {ws}\n"));
    }
    out.push_str("\nCBWS differentials (element-wise deltas, Fig. 4):\n");
    for (i, w) in take.windows(2).enumerate() {
        let d = w[1].differential(w[0]);
        out.push_str(&format!("  CBWS{} - CBWS{} = {d}\n", i + 1, i));
    }
    out
}

/// **Fig. 5**: the cumulative coverage of distinct CBWS differential
/// vectors, sampled at fixed vector-fraction percentiles for the paper's
/// six featured benchmarks.
pub fn fig05_differential_skew(scale: Scale) -> TextTable {
    const BENCHES: [&str; 6] = [
        "450.soplex-ref",
        "433.milc-su3imp",
        "stencil-default",
        "radix-simlarge",
        "sgemm-medium",
        "streamcluster-simlarge",
    ];
    const SAMPLES: [f64; 6] = [0.01, 0.05, 0.10, 0.25, 0.50, 1.00];
    let mut table = TextTable::new(
        std::iter::once("benchmark (distinct vecs)".to_string())
            .chain(SAMPLES.iter().map(|s| format!("{:.0}% vecs", s * 100.0)))
            .collect(),
    );
    for name in BENCHES {
        let w = by_name(name).expect("registered");
        let trace = cbws_workloads::trace_store::shared().get(w, scale);
        let h = collect_block_histories(&*trace, CbwsConfig::default().max_vector);
        let skew = DifferentialSkew::from_histories(h.values());
        let mut row = vec![format!("{name} ({})", skew.distinct())];
        for s in SAMPLES {
            row.push(pct(skew.coverage_at(s)));
        }
        table.row(row);
    }
    table
}

/// **Table II**: the simulation parameters actually in force.
pub fn tab02_parameters(cfg: &SystemConfig) -> TextTable {
    let mut t = TextTable::new(vec!["parameter".into(), "value".into()]);
    let rows: Vec<(&str, String)> = vec![
        ("OoO width", cfg.core.width.to_string()),
        ("ROB entries", cfg.core.rob_entries.to_string()),
        ("LDQ entries", cfg.core.ldq_entries.to_string()),
        ("STQ entries", cfg.core.stq_entries.to_string()),
        ("BP entries", cfg.core.bp_entries.to_string()),
        ("BP history bits", cfg.core.bp_history_bits.to_string()),
        ("L1D size", format!("{} KB", cfg.mem.l1d.size_bytes / 1024)),
        ("L1D assoc", format!("{}-way LRU", cfg.mem.l1d.assoc)),
        ("L1D latency", format!("{} cycles", cfg.mem.l1d.latency)),
        ("L1D MSHRs", cfg.mem.l1d.mshrs.to_string()),
        (
            "L2 size",
            format!("{} MB", cfg.mem.l2.size_bytes / (1024 * 1024)),
        ),
        (
            "L2 assoc",
            format!("{}-way LRU, inclusive", cfg.mem.l2.assoc),
        ),
        ("L2 latency", format!("{} cycles", cfg.mem.l2.latency)),
        ("L2 MSHRs", cfg.mem.l2.mshrs.to_string()),
        (
            "Memory latency",
            format!("{} cycles", cfg.mem.memory_latency),
        ),
        ("Line size", "64 bytes".to_string()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

/// **Table III**: storage budgets of the evaluated prefetchers.
pub fn tab03_storage(cfg: &SystemConfig) -> TextTable {
    let mut t = TextTable::new(vec!["prefetcher".into(), "bits".into(), "KB".into()]);
    for kind in PrefetcherKind::ALL {
        let bits = kind.storage_bits(cfg);
        t.row(vec![
            kind.name().to_string(),
            bits.to_string(),
            format!("{:.2}", bits as f64 / 8192.0),
        ]);
    }
    t
}

/// Orders the memory-intensive records by the paper's Fig. 12 row order and
/// appends `average-MI` / `average-ALL` rows via `avg`.
fn per_workload_table<F, A>(records: &[RunRecord], metric: F, avg: A) -> TextTable
where
    F: Fn(&RunRecord) -> f64,
    A: Fn(&[f64]) -> f64,
{
    let mut table = TextTable::new(
        std::iter::once("benchmark".to_string())
            .chain(PrefetcherKind::ALL.iter().map(|k| k.name().to_string()))
            .collect(),
    );
    let workloads: Vec<&str> = ALL
        .iter()
        .filter(|w| records.iter().any(|r| r.workload == w.name))
        .map(|w| w.name)
        .collect();
    let mut mi_cols: Vec<Vec<f64>> = vec![Vec::new(); PrefetcherKind::ALL.len()];
    let mut all_cols: Vec<Vec<f64>> = vec![Vec::new(); PrefetcherKind::ALL.len()];
    for name in &workloads {
        let mut row = vec![name.to_string()];
        for (i, kind) in PrefetcherKind::ALL.iter().enumerate() {
            let r = get(records, name, kind.name());
            let v = metric(r);
            row.push(f3(v));
            if r.memory_intensive {
                mi_cols[i].push(v);
            }
            all_cols[i].push(v);
        }
        table.row(row);
    }
    for (label, cols) in [("average-MI", &mi_cols), ("average-ALL", &all_cols)] {
        if cols.iter().all(|c| !c.is_empty()) {
            let mut row = vec![label.to_string()];
            for c in cols {
                row.push(f3(avg(c)));
            }
            table.row(row);
        }
    }
    table
}

/// **Fig. 12**: last-level-cache MPKI per benchmark and prefetcher
/// (lower is better).
pub fn fig12_mpki(records: &[RunRecord]) -> TextTable {
    per_workload_table(records, RunRecord::mpki, |v| mean(v.iter().copied()))
}

/// **Fig. 13**: the 5-way timeliness/accuracy breakdown, in percent of
/// demand L2 accesses, per benchmark and prefetcher.
pub fn fig13_timeliness(records: &[RunRecord]) -> TextTable {
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "prefetcher".into(),
        "timely %".into(),
        "shorter %".into(),
        "non-timely %".into(),
        "missing %".into(),
        "wrong %".into(),
    ]);
    let workloads: Vec<&str> = ALL
        .iter()
        .filter(|w| records.iter().any(|r| r.workload == w.name))
        .map(|w| w.name)
        .collect();
    let mut mi_acc: Vec<Vec<TimelinessBreakdown>> = vec![Vec::new(); PrefetcherKind::ALL.len()];
    let mut all_acc: Vec<Vec<TimelinessBreakdown>> = vec![Vec::new(); PrefetcherKind::ALL.len()];
    let push_row = |table: &mut TextTable, bench: &str, pf: &str, b: &TimelinessBreakdown| {
        table.row(vec![
            bench.to_string(),
            pf.to_string(),
            pct(b.timely),
            pct(b.shorter_waiting_time),
            pct(b.non_timely),
            pct(b.missing),
            pct(b.wrong),
        ]);
    };
    for name in &workloads {
        for (i, kind) in PrefetcherKind::ALL.iter().enumerate() {
            let r = get(records, name, kind.name());
            let b = r.timeliness();
            push_row(&mut table, name, kind.name(), &b);
            if r.memory_intensive {
                mi_acc[i].push(b);
            }
            all_acc[i].push(b);
        }
    }
    for (label, acc) in [("average-MI", &mi_acc), ("average-ALL", &all_acc)] {
        for (i, kind) in PrefetcherKind::ALL.iter().enumerate() {
            if !acc[i].is_empty() {
                let m = TimelinessBreakdown::mean(acc[i].iter());
                push_row(&mut table, label, kind.name(), &m);
            }
        }
    }
    table
}

/// **Fig. 14**: IPC normalized to SMS (higher is better). Averages are
/// geometric means of the ratios, as is standard for normalized IPC.
pub fn fig14_speedup(records: &[RunRecord]) -> TextTable {
    per_workload_table(
        records,
        |r| {
            let sms = get(records, &r.workload, "SMS");
            r.ipc() / sms.ipc()
        },
        |v| geomean(v.iter().copied()),
    )
}

/// **Fig. 15**: performance/cost — IPC per byte read from memory,
/// normalized to the no-prefetch configuration (higher is better).
pub fn fig15_perf_cost(records: &[RunRecord]) -> TextTable {
    per_workload_table(
        records,
        |r| {
            let base = get(records, &r.workload, "No-Prefetch");
            r.perf_cost() / base.perf_cost()
        },
        |v| geomean(v.iter().copied()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};

    fn tiny_sweep() -> Vec<RunRecord> {
        let picks: Vec<&'static WorkloadSpec> = ["stencil-default", "histo-large", "mxm-linpack"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect();
        sweep(Scale::Tiny, &picks)
    }

    #[test]
    fn sweep_produces_full_matrix() {
        let records = tiny_sweep();
        assert_eq!(records.len(), 3 * 7);
        // Every record classification partitions.
        assert!(records.iter().all(|r| r.mem.classification_is_partition()));
    }

    #[test]
    fn fig12_table_shape() {
        let records = tiny_sweep();
        let t = fig12_mpki(&records);
        // 3 workloads + average-MI + average-ALL.
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn fig14_sms_column_is_unity() {
        let records = tiny_sweep();
        let t = fig14_speedup(&records);
        // Column 5 (SMS) must be 1.000 for every workload row.
        for row in t.csv_rows().iter().take(3) {
            assert_eq!(row[5], "1.000", "{row:?}");
        }
    }

    #[test]
    fn fig15_noprefetch_column_is_unity() {
        let records = tiny_sweep();
        let t = fig15_perf_cost(&records);
        for row in t.csv_rows().iter().take(3) {
            assert_eq!(row[1], "1.000", "{row:?}");
        }
    }

    #[test]
    fn svg_figures_render_from_a_sweep() {
        let records = tiny_sweep();
        for svg in [
            fig12_svg(&records),
            fig13_svg(&records),
            fig14_svg(&records),
            fig15_svg(&records),
        ] {
            assert!(svg.starts_with("<svg"));
            assert!(svg.contains("CBWS+SMS"));
            assert!(svg.trim_end().ends_with("</svg>"));
            assert!(!svg.contains("NaN"), "chart contains NaN coordinates");
        }
        let f5 = fig05_svg(Scale::Tiny);
        assert!(f5.contains("<polyline"));
    }

    /// The engine must reproduce the serial sweep byte-for-byte over the
    /// full paper matrix (ALL) and the extension matrix (EXTENDED), for
    /// both a single worker and an oversubscribed worker count.
    #[test]
    fn engine_sweep_is_deterministic_across_worker_counts() {
        let picks: Vec<&'static WorkloadSpec> = ["stencil-default", "histo-large", "mxm-linpack"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect();
        for kinds in [&PrefetcherKind::ALL[..], &PrefetcherKind::EXTENDED[..]] {
            let sim = Simulator::new(SystemConfig::default());
            let mut serial = Vec::new();
            for w in &picks {
                let trace = w.generate(Scale::Tiny);
                for &kind in kinds {
                    serial.push(sim.run(
                        w.name,
                        w.group == cbws_workloads::Group::MemoryIntensive,
                        &trace,
                        kind,
                    ));
                }
            }
            for jobs in [1, 8] {
                let engine = Engine::new(EngineConfig {
                    jobs,
                    ..EngineConfig::default()
                });
                let run = engine.run(Scale::Tiny, &picks, kinds);
                assert_eq!(
                    run.records,
                    serial,
                    "engine diverged from serial ({} kinds, jobs = {jobs})",
                    kinds.len()
                );
                assert!(run
                    .records
                    .iter()
                    .all(|r| r.mem.classification_is_partition()));
            }
        }
    }

    #[test]
    fn sweep_engine_reports_timing() {
        let picks: Vec<&'static WorkloadSpec> =
            ["nw"].iter().map(|n| by_name(n).unwrap()).collect();
        // Cache pinned off so the phase assertion below holds regardless
        // of what the shared result store contains.
        let run = sweep_engine_with(Scale::Tiny, &picks, 2, ResultCache::Off);
        assert_eq!(run.records.len(), PrefetcherKind::ALL.len());
        assert_eq!(run.workers, 2);
        assert!(run.wall_seconds > 0.0);
        assert!(run.profiler.phases().iter().any(|(n, _)| n == "simulate"));
        assert_eq!(run.store_hits() + run.store_misses(), 0);
    }

    #[test]
    fn result_cache_mode_parses_flags() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(matches!(result_cache_mode(&args(&[])), ResultCache::Shared));
        assert!(matches!(
            result_cache_mode(&args(&["--scale", "tiny", "--resume"])),
            ResultCache::Shared
        ));
        assert!(matches!(
            result_cache_mode(&args(&["--no-result-cache"])),
            ResultCache::Off
        ));
        // Conflicting flags: no-cache wins (a warning is emitted).
        assert!(matches!(
            result_cache_mode(&args(&["--resume", "--no-result-cache"])),
            ResultCache::Off
        ));
    }

    #[test]
    fn fig03_prints_constant_differentials() {
        let s = fig03_stencil_cbws(8);
        assert!(s.contains("CBWS0"));
        assert!(
            s.contains("1024"),
            "stencil differential must be 1024 lines:\n{s}"
        );
    }

    #[test]
    fn fig05_table_has_six_benches() {
        let t = fig05_differential_skew(Scale::Tiny);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn tab02_and_tab03_render() {
        let cfg = SystemConfig::default();
        let t2 = tab02_parameters(&cfg);
        assert!(t2.to_string().contains("300 cycles"));
        let t3 = tab03_storage(&cfg);
        let s = t3.to_string();
        assert!(s.contains("CBWS+SMS"));
        assert!(s.contains("0.99") || s.contains("0.98"), "CBWS < 1KB:\n{s}");
    }

    #[test]
    fn fig01_fractions_bounded() {
        // Only shape-check on one benchmark to keep tests quick: the full
        // MI fig01 is exercised by the binary/bench.
        let sim = Simulator::new(SystemConfig::default());
        let w = by_name("stencil-default").unwrap();
        let trace = w.generate(Scale::Tiny);
        let r = sim.run(w.name, true, &trace, PrefetcherKind::None);
        let f = r.cpu.loop_cycle_fraction();
        assert!(f > 0.5 && f <= 1.0, "stencil loop fraction {f}");
    }
}
