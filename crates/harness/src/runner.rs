//! System configuration (Table II) and the simulation runner.

use crate::prefetched::PrefetchedMemory;
use cbws_core::{CbwsConfig, CbwsPrefetcher, CbwsSmsPrefetcher, MultiCbwsPrefetcher};
use cbws_describe::{ComponentDescription, Describe};
use cbws_prefetchers::{
    AmpmConfig, AmpmPrefetcher, FeedbackDirected, GhbConfig, GhbPrefetcher, InstrumentedPrefetcher,
    MarkovConfig, MarkovPrefetcher, NullPrefetcher, Prefetcher, SmsConfig, SmsPrefetcher,
    StemsConfig, StemsPrefetcher, StrideConfig, StridePrefetcher,
};
use cbws_sim_cpu::{Core, CoreConfig};
use cbws_sim_mem::{HierarchyConfig, MemoryHierarchy};
use cbws_stats::RunRecord;
use cbws_telemetry::Telemetry;
use cbws_trace::EventSource;
use serde::{Deserialize, Serialize};

/// Full simulated-system configuration (Table II defaults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Cache hierarchy parameters.
    pub mem: HierarchyConfig,
}

impl SystemConfig {
    /// CBWS predictor parameters (Fig. 8 defaults).
    pub fn cbws(&self) -> CbwsConfig {
        CbwsConfig::default()
    }

    /// SMS parameters (Table II defaults).
    pub fn sms(&self) -> SmsConfig {
        SmsConfig::default()
    }
}

/// The seven prefetcher configurations evaluated in §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// 256-entry PC-indexed stride prefetcher.
    Stride,
    /// GHB PC/DC.
    GhbPcDc,
    /// GHB G/DC.
    GhbGDc,
    /// Spatial memory streaming.
    Sms,
    /// Standalone CBWS.
    Cbws,
    /// The integrated CBWS+SMS policy.
    CbwsSms,
    /// Access Map Pattern Matching (extension; §III-A related work).
    Ampm,
    /// Feedback-directed throttling wrapped around SMS (extension;
    /// Srinath et al., whose taxonomy Fig. 13 borrows).
    FdpSms,
    /// CBWS with four per-block tracking contexts (extension).
    MultiCbws,
    /// STeMS-lite: temporally chained, paced spatial footprints
    /// (extension; §III-A's ~640 KB comparator).
    Stems,
    /// Markov pair-correlation prefetching (extension; §III-A).
    Markov,
}

impl PrefetcherKind {
    /// The paper's seven evaluated configurations, in figure order.
    pub const ALL: [PrefetcherKind; 7] = [
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::GhbPcDc,
        PrefetcherKind::GhbGDc,
        PrefetcherKind::Sms,
        PrefetcherKind::Cbws,
        PrefetcherKind::CbwsSms,
    ];

    /// The beyond-paper extension configurations (see EXPERIMENTS.md and
    /// the `ext_comparison` binary).
    pub const EXTENDED: [PrefetcherKind; 5] = [
        PrefetcherKind::Ampm,
        PrefetcherKind::FdpSms,
        PrefetcherKind::MultiCbws,
        PrefetcherKind::Stems,
        PrefetcherKind::Markov,
    ];

    /// Parses a display name (as printed by [`PrefetcherKind::name`],
    /// case-insensitively) back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        PrefetcherKind::ALL
            .into_iter()
            .chain(PrefetcherKind::EXTENDED)
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "No-Prefetch",
            PrefetcherKind::Stride => "Stride",
            PrefetcherKind::GhbPcDc => "GHB-PC/DC",
            PrefetcherKind::GhbGDc => "GHB-G/DC",
            PrefetcherKind::Sms => "SMS",
            PrefetcherKind::Cbws => "CBWS",
            PrefetcherKind::CbwsSms => "CBWS+SMS",
            PrefetcherKind::Ampm => "AMPM",
            PrefetcherKind::FdpSms => "FDP(SMS)",
            PrefetcherKind::MultiCbws => "CBWSx4",
            PrefetcherKind::Stems => "STeMS",
            PrefetcherKind::Markov => "Markov",
        }
    }

    /// Builds the prefetcher with its Table II configuration.
    pub fn build(self, cfg: &SystemConfig) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NullPrefetcher),
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(StrideConfig::default())),
            PrefetcherKind::GhbPcDc => Box::new(GhbPrefetcher::new(GhbConfig::pcdc())),
            PrefetcherKind::GhbGDc => Box::new(GhbPrefetcher::new(GhbConfig::gdc())),
            PrefetcherKind::Sms => Box::new(SmsPrefetcher::new(cfg.sms())),
            PrefetcherKind::Cbws => Box::new(CbwsPrefetcher::new(cfg.cbws())),
            PrefetcherKind::CbwsSms => Box::new(CbwsSmsPrefetcher::new(cfg.cbws(), cfg.sms())),
            PrefetcherKind::Ampm => Box::new(AmpmPrefetcher::new(AmpmConfig::default())),
            PrefetcherKind::FdpSms => {
                Box::new(FeedbackDirected::new(SmsPrefetcher::new(cfg.sms())))
            }
            PrefetcherKind::MultiCbws => Box::new(MultiCbwsPrefetcher::new(cfg.cbws(), 4)),
            PrefetcherKind::Stems => Box::new(StemsPrefetcher::new(StemsConfig::default())),
            PrefetcherKind::Markov => Box::new(MarkovPrefetcher::new(MarkovConfig::default())),
        }
    }

    /// Storage budget in bits (Table III).
    pub fn storage_bits(self, cfg: &SystemConfig) -> u64 {
        self.build(cfg).storage_bits()
    }

    /// Self-description of the prefetcher this kind builds: summary, paper
    /// section, storage budget, tunable parameters with their Table II
    /// defaults, and the telemetry metrics it emits.
    ///
    /// Constructs the concrete type and delegates to [`Describe`], so a
    /// prefetcher without a `Describe` implementation fails to compile here
    /// rather than silently missing from the generated reference
    /// (`cargo run -p docgen`).
    pub fn description(self, cfg: &SystemConfig) -> ComponentDescription {
        match self {
            PrefetcherKind::None => NullPrefetcher.describe(),
            PrefetcherKind::Stride => StridePrefetcher::new(StrideConfig::default()).describe(),
            PrefetcherKind::GhbPcDc => GhbPrefetcher::new(GhbConfig::pcdc()).describe(),
            PrefetcherKind::GhbGDc => GhbPrefetcher::new(GhbConfig::gdc()).describe(),
            PrefetcherKind::Sms => SmsPrefetcher::new(cfg.sms()).describe(),
            PrefetcherKind::Cbws => CbwsPrefetcher::new(cfg.cbws()).describe(),
            PrefetcherKind::CbwsSms => CbwsSmsPrefetcher::new(cfg.cbws(), cfg.sms()).describe(),
            PrefetcherKind::Ampm => AmpmPrefetcher::new(AmpmConfig::default()).describe(),
            PrefetcherKind::FdpSms => {
                FeedbackDirected::new(SmsPrefetcher::new(cfg.sms())).describe()
            }
            PrefetcherKind::MultiCbws => MultiCbwsPrefetcher::new(cfg.cbws(), 4).describe(),
            PrefetcherKind::Stems => StemsPrefetcher::new(StemsConfig::default()).describe(),
            PrefetcherKind::Markov => MarkovPrefetcher::new(MarkovConfig::default()).describe(),
        }
    }
}

/// Self-descriptions of every component the harness can build: the seven
/// paper configurations ([`PrefetcherKind::ALL`]), the five extensions
/// ([`PrefetcherKind::EXTENDED`]), and the CPU and memory models — in that
/// order. This is the single source the generated reference (`docgen`) and
/// the registry tests walk.
pub fn component_registry(cfg: &SystemConfig) -> Vec<ComponentDescription> {
    let mut out: Vec<ComponentDescription> = PrefetcherKind::ALL
        .into_iter()
        .chain(PrefetcherKind::EXTENDED)
        .map(|k| k.description(cfg))
        .collect();
    out.push(Core::new(cfg.core).describe());
    out.push(MemoryHierarchy::new(cfg.mem).describe());
    out
}

/// Runs full simulations for (workload, prefetcher) pairs.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    cfg: SystemConfig,
    telemetry: Telemetry,
}

impl Simulator {
    /// Creates a simulator with the given system configuration and
    /// telemetry disabled.
    pub fn new(cfg: SystemConfig) -> Self {
        Simulator {
            cfg,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates a simulator whose runs record into `telemetry`: structured
    /// events from every layer, live `l2.*`/`cbws.*`/`prefetcher.*`
    /// counters, and per-run `run.*` gauges.
    pub fn with_telemetry(cfg: SystemConfig, telemetry: Telemetry) -> Self {
        Simulator { cfg, telemetry }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The attached telemetry sink (disabled unless constructed via
    /// [`Simulator::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Simulates `trace` under `kind` and returns the run record.
    ///
    /// Generic over the trace representation (`Trace` or `PackedTrace`,
    /// via [`EventSource`]). Dispatch is chosen by telemetry state: with
    /// telemetry disabled (the default and the experiment configuration)
    /// the prefetcher is the enum-dispatched
    /// [`crate::AnyPrefetcher`], so the per-access path is static and
    /// inlinable; with telemetry enabled the prefetcher is boxed and
    /// wrapped in [`InstrumentedPrefetcher`], which needs the `dyn` path.
    /// Both paths produce identical records — dispatch affects time only.
    pub fn run<S: EventSource + ?Sized>(
        &self,
        workload: &str,
        memory_intensive: bool,
        trace: &S,
        kind: PrefetcherKind,
    ) -> RunRecord {
        if self.telemetry.is_enabled() {
            let mut prefetcher = kind.build(&self.cfg);
            prefetcher.attach_telemetry(&self.telemetry);
            let instrumented = InstrumentedPrefetcher::new(prefetcher, self.telemetry.clone());
            self.run_with(workload, memory_intensive, trace, kind, instrumented)
        } else {
            self.run_with(
                workload,
                memory_intensive,
                trace,
                kind,
                kind.build_any(&self.cfg),
            )
        }
    }

    /// The replay kernel shared by both dispatch paths, monomorphized per
    /// (trace representation, prefetcher type).
    fn run_with<S: EventSource + ?Sized, P: Prefetcher>(
        &self,
        workload: &str,
        memory_intensive: bool,
        trace: &S,
        kind: PrefetcherKind,
        prefetcher: P,
    ) -> RunRecord {
        let mut hierarchy = MemoryHierarchy::new(self.cfg.mem);
        hierarchy.set_telemetry(self.telemetry.clone());
        let mut mem = PrefetchedMemory::new(hierarchy, prefetcher);
        mem.set_telemetry(self.telemetry.clone());
        let mut core = Core::new(self.cfg.core);
        core.set_telemetry(self.telemetry.clone());
        let cpu = core.run(trace, &mut mem);
        let mem = mem.finish();
        let record = RunRecord {
            workload: workload.to_string(),
            memory_intensive,
            prefetcher: kind.name().to_string(),
            cpu,
            mem,
        };
        record.export_metrics(&self.telemetry);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_workloads::{by_name, Scale};

    #[test]
    fn storage_budgets_match_table3() {
        let cfg = SystemConfig::default();
        let kb = |bits: u64| bits as f64 / 8192.0;
        assert!((kb(PrefetcherKind::Stride.storage_bits(&cfg)) - 2.25).abs() < 0.01);
        assert!((kb(PrefetcherKind::GhbGDc.storage_bits(&cfg)) - 2.25).abs() < 0.01);
        assert!((kb(PrefetcherKind::GhbPcDc.storage_bits(&cfg)) - 3.75).abs() < 0.01);
        assert!((kb(PrefetcherKind::Sms.storage_bits(&cfg)) - 5.07).abs() < 0.05);
        assert!(
            kb(PrefetcherKind::Cbws.storage_bits(&cfg)) < 1.0,
            "CBWS must be under 1KB"
        );
        assert_eq!(PrefetcherKind::None.storage_bits(&cfg), 0);
    }

    #[test]
    fn all_kinds_run_a_tiny_workload() {
        let trace = by_name("sgemm-medium").unwrap().generate(Scale::Tiny);
        let sim = Simulator::default();
        for kind in PrefetcherKind::ALL {
            let r = sim.run("sgemm-medium", true, &trace, kind);
            assert!(r.cpu.instructions > 0, "{}", kind.name());
            assert!(r.mem.classification_is_partition(), "{}", kind.name());
            assert_eq!(r.prefetcher, kind.name());
        }
    }

    #[test]
    fn extended_kinds_run_and_account() {
        let trace = by_name("radix-simlarge").unwrap().generate(Scale::Tiny);
        let sim = Simulator::default();
        let cfg = SystemConfig::default();
        for kind in PrefetcherKind::EXTENDED {
            let r = sim.run("radix-simlarge", true, &trace, kind);
            assert!(r.cpu.instructions > 0, "{}", kind.name());
            assert!(r.mem.classification_is_partition(), "{}", kind.name());
            assert!(kind.storage_bits(&cfg) > 0, "{}", kind.name());
        }
    }

    #[test]
    fn identical_instruction_counts_across_kinds() {
        // Prefetching must never change committed work, only timing.
        let trace = by_name("nw").unwrap().generate(Scale::Tiny);
        let sim = Simulator::default();
        let counts: Vec<u64> = PrefetcherKind::ALL
            .iter()
            .map(|&k| sim.run("nw", true, &trace, k).cpu.instructions)
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
