//! Enum dispatch over the concrete prefetcher types — the devirtualized
//! replay path.
//!
//! [`crate::PrefetcherKind::build`] returns `Box<dyn Prefetcher>`, which
//! costs a vtable call per committed access and hides the prefetcher from
//! the inliner in the hottest loop of the whole simulator. [`AnyPrefetcher`]
//! carries the same twelve configurations as an enum, so
//! `PrefetchedMemory<AnyPrefetcher>` is a concrete type whose `on_access`
//! is a direct (inlinable) match. The `dyn` path still exists — the
//! telemetry-enabled runner wraps `Box<dyn Prefetcher>` in
//! `InstrumentedPrefetcher` — but results are identical either way:
//! dispatch strategy affects time, never simulation output.

use crate::runner::{PrefetcherKind, SystemConfig};
use cbws_core::{CbwsPrefetcher, CbwsSmsPrefetcher, MultiCbwsPrefetcher};
use cbws_prefetchers::{
    AmpmConfig, AmpmPrefetcher, FeedbackDirected, GhbConfig, GhbPrefetcher, MarkovConfig,
    MarkovPrefetcher, NullPrefetcher, PrefetchContext, Prefetcher, SmsPrefetcher, StemsConfig,
    StemsPrefetcher, StrideConfig, StridePrefetcher,
};
use cbws_telemetry::Telemetry;
use cbws_trace::{BlockId, LineAddr};

/// Every prefetcher configuration the harness can run, as one concrete
/// statically-dispatched type. Mirrors [`PrefetcherKind`] variant for
/// variant (both GHB kinds share [`GhbPrefetcher`], configured at build).
#[allow(clippy::large_enum_variant)] // one allocation per *run*, not per access
pub enum AnyPrefetcher {
    /// No prefetching.
    None(NullPrefetcher),
    /// PC-indexed stride.
    Stride(StridePrefetcher),
    /// GHB (PC/DC or G/DC, per its config).
    Ghb(GhbPrefetcher),
    /// Spatial memory streaming.
    Sms(SmsPrefetcher),
    /// Standalone CBWS.
    Cbws(CbwsPrefetcher),
    /// The integrated CBWS+SMS policy.
    CbwsSms(CbwsSmsPrefetcher),
    /// Access Map Pattern Matching.
    Ampm(AmpmPrefetcher),
    /// Feedback-directed throttling around SMS.
    FdpSms(FeedbackDirected<SmsPrefetcher>),
    /// CBWS with four tracking contexts.
    MultiCbws(MultiCbwsPrefetcher),
    /// STeMS-lite.
    Stems(StemsPrefetcher),
    /// Markov pair-correlation.
    Markov(MarkovPrefetcher),
}

impl PrefetcherKind {
    /// Builds the enum-dispatched equivalent of [`PrefetcherKind::build`],
    /// with the same Table II configuration.
    pub fn build_any(self, cfg: &SystemConfig) -> AnyPrefetcher {
        match self {
            PrefetcherKind::None => AnyPrefetcher::None(NullPrefetcher),
            PrefetcherKind::Stride => {
                AnyPrefetcher::Stride(StridePrefetcher::new(StrideConfig::default()))
            }
            PrefetcherKind::GhbPcDc => AnyPrefetcher::Ghb(GhbPrefetcher::new(GhbConfig::pcdc())),
            PrefetcherKind::GhbGDc => AnyPrefetcher::Ghb(GhbPrefetcher::new(GhbConfig::gdc())),
            PrefetcherKind::Sms => AnyPrefetcher::Sms(SmsPrefetcher::new(cfg.sms())),
            PrefetcherKind::Cbws => AnyPrefetcher::Cbws(CbwsPrefetcher::new(cfg.cbws())),
            PrefetcherKind::CbwsSms => {
                AnyPrefetcher::CbwsSms(CbwsSmsPrefetcher::new(cfg.cbws(), cfg.sms()))
            }
            PrefetcherKind::Ampm => AnyPrefetcher::Ampm(AmpmPrefetcher::new(AmpmConfig::default())),
            PrefetcherKind::FdpSms => {
                AnyPrefetcher::FdpSms(FeedbackDirected::new(SmsPrefetcher::new(cfg.sms())))
            }
            PrefetcherKind::MultiCbws => {
                AnyPrefetcher::MultiCbws(MultiCbwsPrefetcher::new(cfg.cbws(), 4))
            }
            PrefetcherKind::Stems => {
                AnyPrefetcher::Stems(StemsPrefetcher::new(StemsConfig::default()))
            }
            PrefetcherKind::Markov => {
                AnyPrefetcher::Markov(MarkovPrefetcher::new(MarkovConfig::default()))
            }
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPrefetcher::None($p) => $body,
            AnyPrefetcher::Stride($p) => $body,
            AnyPrefetcher::Ghb($p) => $body,
            AnyPrefetcher::Sms($p) => $body,
            AnyPrefetcher::Cbws($p) => $body,
            AnyPrefetcher::CbwsSms($p) => $body,
            AnyPrefetcher::Ampm($p) => $body,
            AnyPrefetcher::FdpSms($p) => $body,
            AnyPrefetcher::MultiCbws($p) => $body,
            AnyPrefetcher::Stems($p) => $body,
            AnyPrefetcher::Markov($p) => $body,
        }
    };
}

impl Prefetcher for AnyPrefetcher {
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    fn storage_bits(&self) -> u64 {
        dispatch!(self, p => p.storage_bits())
    }

    #[inline]
    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        dispatch!(self, p => p.on_access(ctx, out))
    }

    #[inline]
    fn on_block_begin(&mut self, id: BlockId) {
        dispatch!(self, p => p.on_block_begin(id))
    }

    #[inline]
    fn on_block_end(&mut self, id: BlockId, out: &mut Vec<LineAddr>) {
        dispatch!(self, p => p.on_block_end(id, out))
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        dispatch!(self, p => p.attach_telemetry(telemetry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [PrefetcherKind; 12] = [
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::GhbPcDc,
        PrefetcherKind::GhbGDc,
        PrefetcherKind::Sms,
        PrefetcherKind::Cbws,
        PrefetcherKind::CbwsSms,
        PrefetcherKind::Ampm,
        PrefetcherKind::FdpSms,
        PrefetcherKind::MultiCbws,
        PrefetcherKind::Stems,
        PrefetcherKind::Markov,
    ];

    #[test]
    fn enum_dispatch_agrees_with_boxed_build() {
        let cfg = SystemConfig::default();
        for kind in ALL {
            let boxed = kind.build(&cfg);
            let enumed = kind.build_any(&cfg);
            assert_eq!(boxed.name(), enumed.name(), "{kind:?}");
            assert_eq!(boxed.storage_bits(), enumed.storage_bits(), "{kind:?}");
        }
    }
}
