//! Property tests for the persistent result store, mirroring the trace
//! store's `trace_store_properties.rs`:
//!
//! * any single-bit corruption of a stored entry is caught (header checks
//!   or payload checksum), counted as an invalidation, and survived — the
//!   caller re-simulates and the regenerated entry round-trips;
//! * byte-budget eviction removes oldest-modified entries first and never
//!   the entry just written;
//! * a simulator-version or prefetcher-config hash change invalidates the
//!   stored entry instead of serving it.

use cbws_harness::result_store::{ResultKey, ResultStore};
use cbws_harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_stats::RunRecord;
use cbws_telemetry::Telemetry;
use cbws_workloads::{by_name, Scale, WorkloadSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "cbws-result-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn counter(t: &Telemetry, path: &str) -> u64 {
    t.with_metrics(|m| m.counter(path).unwrap_or(0)).unwrap()
}

/// The reference record, simulated once per process (each proptest case
/// only exercises the store, not the simulator).
fn reference(w: &'static WorkloadSpec, kind: PrefetcherKind) -> RunRecord {
    static RECORD: OnceLock<RunRecord> = OnceLock::new();
    RECORD
        .get_or_init(|| {
            let sim = Simulator::new(SystemConfig::default());
            let trace = cbws_workloads::trace_store::shared().get(w, Scale::Tiny);
            sim.run(w.name, true, &*trace, kind)
        })
        .clone()
}

proptest! {
    #[test]
    fn single_bit_flip_is_detected_and_survived(pos in any::<usize>(), bit in 0u8..8) {
        let dir = scratch_dir();
        let w = by_name("nw").unwrap();
        let kind = PrefetcherKind::Sms;
        let key = ResultKey::new(w, Scale::Tiny, kind, &SystemConfig::default());
        let pristine = reference(w, kind);

        // Seed the store file, then corrupt exactly one bit anywhere.
        let store = ResultStore::at(&dir);
        store.put(&key, &pristine);
        let path = store.path_for(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // A fresh store (= fresh process) must reject the file, count the
        // invalidation, remove it, and accept a regenerated entry.
        let telemetry = Telemetry::enabled_default();
        let fresh = ResultStore::at(&dir);
        fresh.set_telemetry(telemetry.clone());
        let served = fresh.get(&key);
        let invalidations = counter(&telemetry, "result_store.invalidate");
        let hits = counter(&telemetry, "result_store.hit");
        // Invalidate-and-regenerate: the caller re-simulates and persists.
        fresh.put(&key, &pristine);
        let recovered = fresh.get(&key);

        let _ = std::fs::remove_dir_all(&dir);

        prop_assert!(served.is_none(), "flip at byte {} bit {} served a corrupt entry", at, bit);
        prop_assert_eq!(invalidations, 1, "flip at byte {} bit {} not detected", at, bit);
        prop_assert_eq!(hits, 0);
        prop_assert!(!path.exists() || recovered.is_some());
        prop_assert_eq!(recovered, Some(pristine));
    }

    #[test]
    fn eviction_removes_oldest_first(keep in 1usize..4) {
        let dir = scratch_dir();
        let w = by_name("nw").unwrap();
        let record = reference(w, PrefetcherKind::Sms);
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::GhbPcDc,
            PrefetcherKind::Sms,
        ];
        let keys: Vec<ResultKey> = kinds
            .iter()
            .map(|&k| ResultKey::new(w, Scale::Tiny, k, &SystemConfig::default()))
            .collect();

        // Write all entries unbudgeted with mtimes backdated by write
        // order, so LRU age is deterministic.
        let seed = ResultStore::with_budget(&dir, None);
        let mut entry_len = 0u64;
        for (i, key) in keys.iter().enumerate() {
            seed.put(key, &record);
            let path = seed.path_for(key);
            entry_len = std::fs::metadata(&path).unwrap().len();
            let f = std::fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(i as u64 + 1))
                .unwrap();
        }

        // A budget of `keep` entries (+ slack below one entry) must evict
        // exactly the oldest `4 - keep`, keeping the newest ones.
        let telemetry = Telemetry::enabled_default();
        let budgeted = ResultStore::with_budget(&dir, Some(entry_len * keep as u64 + entry_len / 2));
        budgeted.set_telemetry(telemetry.clone());
        // Re-write the newest entry: its fresh mtime keeps it newest, and
        // the write triggers budget enforcement.
        budgeted.put(&keys[3], &record);
        let evictions = counter(&telemetry, "result_store.evict");
        let survivors: Vec<bool> = keys.iter().map(|k| budgeted.path_for(k).exists()).collect();

        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(evictions as usize, 4 - keep, "survivors: {:?}", survivors);
        for (i, alive) in survivors.iter().enumerate() {
            // Entries 0..4-keep are the oldest and must be gone; the rest
            // (including the just-rewritten newest) must survive.
            prop_assert_eq!(*alive, i >= 4 - keep, "entry {} (survivors {:?})", i, survivors);
        }
    }

    #[test]
    fn version_or_config_skew_invalidates(salt in 1u64..u64::MAX) {
        let dir = scratch_dir();
        let w = by_name("nw").unwrap();
        let kind = PrefetcherKind::Sms;
        let key = ResultKey::new(w, Scale::Tiny, kind, &SystemConfig::default());
        let record = reference(w, kind);
        ResultStore::at(&dir).put(&key, &record);

        // Simulator-version skew: any non-zero salt models a binary built
        // from different simulation sources. The entry must be rejected.
        let telemetry = Telemetry::enabled_default();
        let skewed = ResultStore::with_hash_salt(&dir, salt);
        skewed.set_telemetry(telemetry.clone());
        let served = skewed.get(&key);
        let invalidations = counter(&telemetry, "result_store.invalidate");

        // Prefetcher-config skew: same store and binary, different
        // SystemConfig — the key hash differs, so the (re-seeded) default
        // entry must not be served for the changed config.
        let reseeded = ResultStore::at(&dir);
        reseeded.put(&key, &record);
        let mut bigger = SystemConfig::default();
        bigger.mem.l2.size_bytes *= 2;
        let bigger_key = ResultKey::new(w, Scale::Tiny, kind, &bigger);
        let cross = reseeded.get(&bigger_key);

        let _ = std::fs::remove_dir_all(&dir);

        prop_assert!(served.is_none(), "version-skewed entry was served (salt {})", salt);
        prop_assert_eq!(invalidations, 1);
        prop_assert!(cross.is_none(), "config-skewed entry was served");
    }
}
