//! Guards the PR-3 deprecation: `sweep_parallel` must stay a deprecated
//! wrapper (so external callers keep compiling with a warning) until it is
//! removed outright, and the note must point at its replacement.

#[test]
fn sweep_parallel_keeps_its_deprecation_attribute() {
    let source =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/src/experiments.rs"))
            .expect("experiments.rs is readable");
    let fn_pos = source
        .find("pub fn sweep_parallel")
        .expect("sweep_parallel still exists; if it was removed, delete this guard");
    let preceding = &source[..fn_pos];
    let attr_pos = preceding
        .rfind("#[deprecated")
        .expect("sweep_parallel lost its #[deprecated] attribute");
    let attr = &preceding[attr_pos..];
    assert!(
        attr.contains("sweep_engine"),
        "the deprecation note must point callers at sweep_engine: {attr:?}"
    );
    // The attribute must belong to this function: no other item may begin
    // between the attribute and the function.
    assert!(
        !attr.contains("pub fn "),
        "#[deprecated] found, but attached to an earlier item"
    );
}
