//! Registry-level guarantees for the self-description layer: every
//! prefetcher the harness can build describes itself, and the descriptions
//! agree with the simulator's own accounting.

use cbws_describe::ComponentKind;
use cbws_harness::{component_registry, PrefetcherKind, SystemConfig};

#[test]
fn every_harness_prefetcher_describes_itself() {
    let cfg = SystemConfig::default();
    for kind in PrefetcherKind::ALL
        .into_iter()
        .chain(PrefetcherKind::EXTENDED)
    {
        let d = kind.description(&cfg);
        assert_eq!(
            d.name,
            kind.name(),
            "description name must match the legend name"
        );
        assert_eq!(d.kind, ComponentKind::Prefetcher);
        assert!(!d.summary.is_empty(), "{}: empty summary", kind.name());
        assert!(
            !d.metrics.is_empty(),
            "{}: every prefetcher emits at least the instrumented metrics",
            kind.name()
        );
        if kind != PrefetcherKind::None {
            assert!(
                !d.params.is_empty(),
                "{}: no parameters described",
                kind.name()
            );
        }
    }
}

#[test]
fn described_storage_matches_the_simulators_accounting() {
    let cfg = SystemConfig::default();
    for kind in PrefetcherKind::ALL
        .into_iter()
        .chain(PrefetcherKind::EXTENDED)
    {
        let d = kind.description(&cfg);
        assert_eq!(
            d.storage_bits,
            Some(kind.storage_bits(&cfg)),
            "{}: Describe and Prefetcher::storage_bits disagree",
            kind.name()
        );
    }
}

#[test]
fn cbws_budget_stays_under_the_papers_kilobyte() {
    let cfg = SystemConfig::default();
    let cbws = PrefetcherKind::Cbws.description(&cfg);
    let bits = cbws.storage_bits.expect("CBWS declares a budget");
    assert_eq!(bits, 8080, "Table III: 8,080 bits");
    assert!(cbws.storage_kb().unwrap() < 1.0, "the paper's < 1 KB claim");
}

#[test]
fn hybrid_budget_is_the_sum_of_its_parts() {
    let cfg = SystemConfig::default();
    let cbws = PrefetcherKind::Cbws.description(&cfg).storage_bits.unwrap();
    let sms = PrefetcherKind::Sms.description(&cfg).storage_bits.unwrap();
    let hybrid = PrefetcherKind::CbwsSms
        .description(&cfg)
        .storage_bits
        .unwrap();
    assert_eq!(hybrid, cbws + sms);
}

#[test]
fn registry_covers_prefetchers_and_both_timing_models() {
    let registry = component_registry(&SystemConfig::default());
    let prefetchers = registry
        .iter()
        .filter(|d| d.kind == ComponentKind::Prefetcher)
        .count();
    assert_eq!(
        prefetchers,
        PrefetcherKind::ALL.len() + PrefetcherKind::EXTENDED.len()
    );
    assert_eq!(
        registry
            .iter()
            .filter(|d| d.kind == ComponentKind::CpuModel)
            .count(),
        1
    );
    assert_eq!(
        registry
            .iter()
            .filter(|d| d.kind == ComponentKind::MemoryModel)
            .count(),
        1
    );
    // Names are unique — the generated book keys pages on them.
    let mut names: Vec<&str> = registry.iter().map(|d| d.name.as_str()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate component names");
}

#[test]
fn extensions_are_marked_and_paper_configs_are_not() {
    let cfg = SystemConfig::default();
    for kind in PrefetcherKind::ALL {
        assert!(
            !kind.description(&cfg).extension,
            "{}: §VII configuration wrongly marked extension",
            kind.name()
        );
    }
    for kind in PrefetcherKind::EXTENDED {
        assert!(
            kind.description(&cfg).extension,
            "{}: extension not marked",
            kind.name()
        );
    }
}

#[test]
fn dht_is_sixteen_entries_as_in_fig8() {
    let cfg = SystemConfig::default();
    let cbws = PrefetcherKind::Cbws.description(&cfg);
    let p = cbws
        .params
        .iter()
        .find(|p| p.name == "table_entries")
        .expect("CBWS describes its differential history table");
    assert_eq!(p.default, "16");
}
