//! Property tests for the shared trace cache's invariants (relied on by the
//! experiment engine, see DESIGN.md): any interleaving of `get` calls —
//! including concurrent ones — hands out pointer-equal `Arc`s per
//! `(workload, scale)` key, and cached traces are indistinguishable from
//! fresh generations.

use cbws_workloads::trace_cache::{TraceCache, DEFAULT_BUDGET_BYTES};
use cbws_workloads::{by_name, Scale, WorkloadSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// A small pool of cheap-to-generate workloads for key diversity.
const POOL: [&str; 4] = ["stencil-default", "histo-large", "nw", "mxm-linpack"];

fn key_strategy() -> impl Strategy<Value = (usize, Scale)> {
    // Tiny-only keeps the test fast; scale diversity is covered below.
    (0..POOL.len(), Just(Scale::Tiny))
}

fn spec(i: usize) -> &'static WorkloadSpec {
    by_name(POOL[i]).expect("pool workload is registered")
}

proptest! {
    /// For any access sequence, every `get` of the same key returns an
    /// `Arc` pointer-equal to the key's first result — the kernel ran once
    /// per key, never twice.
    #[test]
    fn gets_are_pointer_equal_per_key(accesses in proptest::collection::vec(key_strategy(), 1..24)) {
        let cache = TraceCache::with_budget(DEFAULT_BUDGET_BYTES);
        let mut first: Vec<Option<Arc<cbws_trace::Trace>>> = vec![None; POOL.len()];
        for (i, scale) in accesses {
            let got = cache.get(spec(i), scale);
            match &first[i] {
                Some(seen) => prop_assert!(Arc::ptr_eq(seen, &got), "key {} regenerated", POOL[i]),
                None => first[i] = Some(got),
            }
        }
    }

    /// Concurrent `get`s for the same key from many threads all observe one
    /// generation (single-generation invariant under contention).
    #[test]
    fn concurrent_gets_share_one_generation(which in 0..POOL.len(), threads in 2usize..6) {
        let cache = TraceCache::with_budget(DEFAULT_BUDGET_BYTES);
        let w = spec(which);
        let arcs: Vec<Arc<cbws_trace::Trace>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| s.spawn(|| cache.get(w, Scale::Tiny)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in arcs.windows(2) {
            prop_assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        prop_assert_eq!(cache.stats().0, 1);
    }

    /// A cached trace has exactly the events of a fresh generation, even
    /// after evictions forced by an adversarially small budget.
    #[test]
    fn cached_traces_match_fresh_even_under_eviction(
        accesses in proptest::collection::vec(key_strategy(), 1..12),
        budget in prop_oneof![Just(1u64), Just(DEFAULT_BUDGET_BYTES)],
    ) {
        let cache = TraceCache::with_budget(budget);
        for (i, scale) in accesses {
            let w = spec(i);
            let cached = cache.get(w, scale);
            let fresh = w.generate(scale);
            prop_assert_eq!(cached.events(), fresh.events());
        }
    }
}
