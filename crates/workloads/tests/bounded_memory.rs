//! Bounded-memory proof for the streaming trace path.
//!
//! The tentpole claim of store format v4 is that trace memory is O(1) in
//! trace length end to end: generation flushes completed frames to disk as
//! the kernel emits events, and replay adopts one double-buffered frame at
//! a time through the read-ahead cursor. This test asserts the claim with
//! a counting global allocator: generating **and** replaying a
//! `Scale::Huge` trace (~10⁷ events, tens of megabytes on disk) must never
//! hold more than a small constant amount of live heap above the baseline
//! — far below the materialized size of the trace.
//!
//! The probe lives in its own integration-test binary because a global
//! allocator is process-wide: unit tests running threads in parallel would
//! blur the peak attribution.

use cbws_trace::{EventCursor, EventSource};
use cbws_workloads::trace_store::TraceStore;
use cbws_workloads::{by_name, Scale};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live heap bytes right now.
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE`] since the last reset.
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// [`System`] with live/peak byte accounting. Layout sizes are exact (the
/// allocator sees every `Vec` growth and shrink), so the peak is a precise
/// upper bound on heap held by the traced code path.
struct CountingAlloc;

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak live-heap delta allowed over the whole generate + replay cycle.
/// A `Scale::Huge` histo trace is ~10⁷ events — materialized it would be
/// hundreds of megabytes of `TraceEvent`s and tens of megabytes packed.
/// With 8192-event frames the streaming path needs a few frame buffers
/// plus one decoded frame; 24 MiB leaves generous slack while still being
/// a constant ~10× below the materialized footprint.
const PEAK_DELTA_BUDGET: usize = 24 * 1024 * 1024;

#[test]
fn huge_trace_generates_and_replays_in_bounded_memory() {
    let dir = std::env::temp_dir().join(format!("cbws-bounded-mem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Small frames keep the per-frame buffers tiny and make the bound
    // independent of the default frame geometry.
    let store = TraceStore::at(&dir).with_frame_events(8192);
    let w = by_name("histo-large").expect("registered");

    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);

    // Generate to disk (streaming writer) and open the streamed handle:
    // threshold 0 forces the disk-backed path.
    let src = store.replay_source(w, Scale::Huge, 0);
    assert!(src.is_streamed(), "threshold 0 must stream");

    // Replay every event through the read-ahead cursor, the way the
    // simulator consumes it.
    let mut events = 0usize;
    let mut cursor = src.cursor();
    while let Some(batch) = cursor.next_batch() {
        events += batch.len();
    }
    drop(cursor);

    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);

    let file_len = std::fs::metadata(dir.join("histo-large-huge.cbwstrace"))
        .expect("store file written")
        .len();
    assert_eq!(events, src.event_count());
    assert!(
        events > 5_000_000,
        "huge scale must be huge, got {events} events"
    );
    assert!(
        peak_delta < PEAK_DELTA_BUDGET,
        "peak live-heap delta {peak_delta} bytes exceeds the {PEAK_DELTA_BUDGET}-byte bound \
         (trace: {events} events, {file_len} bytes on disk)"
    );
    // The bound is meaningful only if it undercuts the trace itself.
    assert!(
        (peak_delta as u64) < file_len,
        "peak delta {peak_delta} should stay below even the packed on-disk size {file_len}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
