//! Property test: any single-bit corruption of a stored trace file is
//! caught by the header checks or the per-column checksums, and the store
//! falls back to regeneration — same trace out, no panic.

use cbws_telemetry::Telemetry;
use cbws_workloads::trace_store::TraceStore;
use cbws_workloads::{by_name, Scale};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "cbws-store-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #[test]
    fn single_bit_flip_is_detected_and_survived(pos in any::<usize>(), bit in 0u8..8) {
        let dir = scratch_dir();
        let w = by_name("nw").unwrap();

        // Seed the store file.
        let store = TraceStore::at(&dir);
        let pristine = store.get(w, Scale::Tiny).to_trace();
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();

        // Corrupt exactly one bit anywhere in the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // A fresh store (= fresh process) must reject the file, count the
        // invalidation, and serve the regenerated trace.
        let telemetry = Telemetry::enabled_default();
        let fresh = TraceStore::at(&dir);
        fresh.set_telemetry(telemetry.clone());
        let recovered = fresh.get(w, Scale::Tiny).to_trace();
        let invalidations = telemetry
            .with_metrics(|m| m.counter("trace_store.invalidate").unwrap_or(0))
            .unwrap();
        let hits = telemetry
            .with_metrics(|m| m.counter("trace_store.hit").unwrap_or(0))
            .unwrap();

        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(invalidations, 1, "flip at byte {} bit {} not detected", at, bit);
        prop_assert_eq!(hits, 0);
        prop_assert_eq!(recovered, pristine);
    }
}
