//! A miniature loop-nest IR with an automated block-annotation pass.
//!
//! This module is the reproduction's stand-in for the paper's LLVM pass
//! (§IV-A): kernels are written as [`Program`]s of nested [`Stmt::Loop`]s,
//! and [`Program::annotate`] — the "compiler pass" — finds every *innermost*
//! loop and brackets its body with explicit [`Stmt::BlockBegin`] /
//! [`Stmt::BlockEnd`] marker instructions carrying fresh static block ids.
//!
//! Because the markers are ordinary statements inserted *before* loop
//! transformations, optimizations like [`Program::unroll_innermost`]
//! replicate them together with the body — exactly the property the paper
//! relies on ("it preserves the original loop semantics in the presence of
//! compiler optimizations such as loop unrolling", §IV-A): the CBWS
//! hardware still sees one `BLOCK_BEGIN`/`BLOCK_END` pair per *original*
//! iteration.
//!
//! [`Program::execute`] interprets the program into a committed-instruction
//! [`Trace`], emitting loop back-branches and `If` branches for the branch
//! predictor, and marking loads whose address was derived from loaded data
//! ([`Expr::Index`]) as [`Dependence::PrevLoad`] so the timing model
//! serializes them.

use cbws_trace::{Addr, BlockId, Dependence, MemAccess, MemKind, Pc, Trace, TraceBuilder};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A named integer variable (loop index or `let` binding).
pub type Var = &'static str;

/// Integer expressions over loop variables, constants, and table data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// A variable reference.
    Var(Var),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Remainder (Euclidean; divisor of zero evaluates to 0).
    Rem(Box<Expr>, Box<Expr>),
    /// Quotient (Euclidean; divisor of zero evaluates to 0).
    Div(Box<Expr>, Box<Expr>),
    /// `table[idx % len]`: a value loaded from a named data table. Using an
    /// `Index` in an address expression models data-dependent addressing
    /// (the paper's `histo` case, Fig. 16) and marks the access as
    /// load-dependent.
    Index {
        /// The table name (registered via [`Program::table`]).
        table: &'static str,
        /// The index expression (wrapped modulo the table length).
        idx: Box<Expr>,
    },
}

impl Expr {
    /// Convenience: `self + other`. Deliberately named like the operator
    /// for DSL readability; `Expr` does not implement `std::ops::Add`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// Convenience: `self * other`. See [`Expr::add`] on the naming.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// Whether the expression reads any data table (drives the
    /// load-dependence marking).
    fn is_data_dependent(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => false,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Rem(a, b)
            | Expr::Div(a, b) => a.is_data_dependent() || b.is_data_dependent(),
            Expr::Index { .. } => true,
        }
    }

    /// Substitutes `var` with `replacement` (used by unrolling).
    fn subst(&self, var: Var, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Var(v) => {
                if *v == var {
                    replacement.clone()
                } else {
                    Expr::Var(v)
                }
            }
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Expr::Rem(a, b) => Expr::Rem(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Expr::Index { table, idx } => Expr::Index {
                table,
                idx: Box::new(idx.subst(var, replacement)),
            },
        }
    }
}

/// Shorthand constructors used by kernel authors.
pub mod e {
    use super::Expr;

    /// Constant expression.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Variable reference.
    pub fn v(name: super::Var) -> Expr {
        Expr::Var(name)
    }

    /// Table read `table[idx % len]`.
    pub fn idx(table: &'static str, i: Expr) -> Expr {
        Expr::Index {
            table,
            idx: Box::new(i),
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// `a < b`.
    Lt(Expr, Expr),
    /// `a != 0`.
    NonZero(Expr),
}

impl Cond {
    fn subst(&self, var: Var, replacement: &Expr) -> Cond {
        match self {
            Cond::Lt(a, b) => Cond::Lt(a.subst(var, replacement), b.subst(var, replacement)),
            Cond::NonZero(a) => Cond::NonZero(a.subst(var, replacement)),
        }
    }

    fn is_data_dependent(&self) -> bool {
        match self {
            Cond::Lt(a, b) => a.is_data_dependent() || b.is_data_dependent(),
            Cond::NonZero(a) => a.is_data_dependent(),
        }
    }
}

/// Statements of the loop-nest IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `for var in 0..count { body }`. Emits a back-branch per iteration.
    Loop {
        /// Loop index variable, visible in `body`.
        var: Var,
        /// Trip count (evaluated once at loop entry; negative counts as 0).
        count: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A load from `addr` (byte address) by static PC `pc`.
    Load {
        /// Static PC of the load.
        pc: u64,
        /// Byte-address expression.
        addr: Expr,
    },
    /// A store to `addr` by static PC `pc`.
    Store {
        /// Static PC of the store.
        pc: u64,
        /// Byte-address expression.
        addr: Expr,
    },
    /// Binds `var` to the value of `value`.
    Let {
        /// Variable to bind.
        var: Var,
        /// Value expression.
        value: Expr,
    },
    /// `count` non-memory instructions at `pc`.
    Alu {
        /// Static PC.
        pc: u64,
        /// Instruction count.
        count: u32,
    },
    /// A conditional with an explicit branch at `pc`.
    If {
        /// Branch PC (for the predictor).
        pc: u64,
        /// Condition; `taken` in the trace means the condition held.
        cond: Cond,
        /// Statements executed when the condition holds.
        then: Vec<Stmt>,
        /// Statements executed otherwise.
        otherwise: Vec<Stmt>,
    },
    /// `BLOCK_BEGIN(id)` marker inserted by [`Program::annotate`].
    BlockBegin(BlockId),
    /// `BLOCK_END(id)` marker inserted by [`Program::annotate`].
    BlockEnd(BlockId),
}

impl Stmt {
    fn contains_loop(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Loop { .. } => true,
            Stmt::If {
                then, otherwise, ..
            } => Self::contains_loop(then) || Self::contains_loop(otherwise),
            _ => false,
        })
    }

    fn subst(&self, var: Var, replacement: &Expr) -> Stmt {
        match self {
            Stmt::Loop {
                var: lv,
                count,
                body,
            } => {
                if *lv == var {
                    // Shadowed: the inner loop's variable wins.
                    self.clone()
                } else {
                    Stmt::Loop {
                        var: lv,
                        count: count.subst(var, replacement),
                        body: body.iter().map(|s| s.subst(var, replacement)).collect(),
                    }
                }
            }
            Stmt::Load { pc, addr } => Stmt::Load {
                pc: *pc,
                addr: addr.subst(var, replacement),
            },
            Stmt::Store { pc, addr } => Stmt::Store {
                pc: *pc,
                addr: addr.subst(var, replacement),
            },
            Stmt::Let { var: lv, value } => Stmt::Let {
                var: lv,
                value: value.subst(var, replacement),
            },
            Stmt::Alu { .. } | Stmt::BlockBegin(_) | Stmt::BlockEnd(_) => self.clone(),
            Stmt::If {
                pc,
                cond,
                then,
                otherwise,
            } => Stmt::If {
                pc: *pc,
                cond: cond.subst(var, replacement),
                then: then.iter().map(|s| s.subst(var, replacement)).collect(),
                otherwise: otherwise
                    .iter()
                    .map(|s| s.subst(var, replacement))
                    .collect(),
            },
        }
    }
}

/// Errors raised by program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// A variable was read before being bound.
    UnboundVar(Var),
    /// An [`Expr::Index`] referenced a table never registered.
    UnknownTable(&'static str),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            DslError::UnknownTable(t) => write!(f, "unknown data table `{t}`"),
        }
    }
}

impl Error for DslError {}

/// A loop-nest program plus its data tables.
#[derive(Debug, Clone, Default)]
pub struct Program {
    body: Vec<Stmt>,
    tables: BTreeMap<&'static str, Vec<i64>>,
    next_block: u32,
    annotated: bool,
}

impl Program {
    /// Creates a program from its top-level statements.
    pub fn new(body: Vec<Stmt>) -> Self {
        Program {
            body,
            tables: BTreeMap::new(),
            next_block: 0,
            annotated: false,
        }
    }

    /// Registers a named data table readable via [`Expr::Index`]. Replaces
    /// any previous table of the same name; returns `self` for chaining.
    pub fn table(mut self, name: &'static str, data: Vec<i64>) -> Self {
        self.tables.insert(name, data);
        self
    }

    /// The top-level statements (inspection/tests).
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Whether [`Program::annotate`] has run.
    pub fn is_annotated(&self) -> bool {
        self.annotated
    }

    /// **The annotation pass**: brackets the body of every innermost loop
    /// with `BLOCK_BEGIN`/`BLOCK_END` markers carrying fresh static ids, in
    /// source order. Idempotent. Returns the number of loops annotated.
    pub fn annotate(&mut self) -> usize {
        if self.annotated {
            return 0;
        }
        self.annotated = true;
        let mut next = self.next_block;
        let mut body = std::mem::take(&mut self.body);
        let n = Self::annotate_stmts(&mut body, &mut next);
        self.body = body;
        self.next_block = next;
        n
    }

    fn annotate_stmts(stmts: &mut [Stmt], next: &mut u32) -> usize {
        let mut count = 0;
        for s in stmts {
            match s {
                Stmt::Loop { body, .. } => {
                    if Stmt::contains_loop(body) {
                        count += Self::annotate_stmts(body, next);
                    } else {
                        let id = BlockId(*next);
                        *next += 1;
                        body.insert(0, Stmt::BlockBegin(id));
                        body.push(Stmt::BlockEnd(id));
                        count += 1;
                    }
                }
                Stmt::If {
                    then, otherwise, ..
                } => {
                    count += Self::annotate_stmts(then, next);
                    count += Self::annotate_stmts(otherwise, next);
                }
                _ => {}
            }
        }
        count
    }

    /// Unrolls every innermost loop by `factor`, replicating the body with
    /// the loop variable rewritten to `var*factor + k`. Trip counts must be
    /// divisible by `factor` at run time for identical semantics (remaining
    /// iterations are dropped, as a real unroller's epilogue is omitted
    /// here). Annotation markers replicate with the body, preserving one
    /// block instance per original iteration.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn unroll_innermost(&mut self, factor: usize) {
        assert!(factor > 0, "unroll factor must be non-zero");
        let mut body = std::mem::take(&mut self.body);
        Self::unroll_stmts(&mut body, factor);
        self.body = body;
    }

    /// Splits every innermost loop's iteration range in two: the first loop
    /// runs iterations `0..count/2`, the second `count/2..count` (the other
    /// compiler transformation §IV-A names). Annotation markers replicate
    /// with the body, so each original iteration still commits exactly one
    /// `BLOCK_BEGIN`/`BLOCK_END` pair.
    pub fn split_innermost(&mut self) {
        let mut body = std::mem::take(&mut self.body);
        Self::split_stmts(&mut body);
        self.body = body;
    }

    fn split_stmts(stmts: &mut Vec<Stmt>) {
        let mut i = 0;
        while i < stmts.len() {
            let replace = match &mut stmts[i] {
                Stmt::Loop { var, count, body } => {
                    if Stmt::contains_loop(body) {
                        Self::split_stmts(body);
                        None
                    } else {
                        let var = *var;
                        let half = Expr::Div(Box::new(count.clone()), Box::new(Expr::Const(2)));
                        let rest = Expr::Sub(Box::new(count.clone()), Box::new(half.clone()));
                        let shifted: Vec<Stmt> = body
                            .iter()
                            .map(|s| s.subst(var, &Expr::Var(var).add(half.clone())))
                            .collect();
                        let first = Stmt::Loop {
                            var,
                            count: half,
                            body: std::mem::take(body),
                        };
                        let second = Stmt::Loop {
                            var,
                            count: rest,
                            body: shifted,
                        };
                        Some((first, second))
                    }
                }
                Stmt::If {
                    then, otherwise, ..
                } => {
                    Self::split_stmts(then);
                    Self::split_stmts(otherwise);
                    None
                }
                _ => None,
            };
            if let Some((first, second)) = replace {
                stmts[i] = first;
                stmts.insert(i + 1, second);
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    fn unroll_stmts(stmts: &mut Vec<Stmt>, factor: usize) {
        for s in stmts {
            match s {
                Stmt::Loop { var, count, body } => {
                    if Stmt::contains_loop(body) {
                        Self::unroll_stmts(body, factor);
                    } else {
                        let var = *var;
                        let mut new_body = Vec::with_capacity(body.len() * factor);
                        for k in 0..factor {
                            let rep = Expr::Var(var)
                                .mul(Expr::Const(factor as i64))
                                .add(Expr::Const(k as i64));
                            new_body.extend(body.iter().map(|st| st.subst(var, &rep)));
                        }
                        *body = new_body;
                        *count = Expr::Div(
                            Box::new(count.clone()),
                            Box::new(Expr::Const(factor as i64)),
                        );
                    }
                }
                Stmt::If {
                    then, otherwise, ..
                } => {
                    Self::unroll_stmts(then, factor);
                    Self::unroll_stmts(otherwise, factor);
                }
                _ => {}
            }
        }
    }

    /// Executes the program into a committed-instruction trace.
    ///
    /// # Errors
    ///
    /// Returns [`DslError`] on unbound variables or unknown tables.
    ///
    /// # Panics
    ///
    /// Panics if annotation markers are malformed (cannot happen for
    /// programs annotated by [`Program::annotate`]).
    pub fn execute(&self) -> Result<Trace, DslError> {
        let mut tb = TraceBuilder::new();
        self.execute_into(&mut tb)?;
        Ok(tb.finish())
    }

    /// Interprets the program into an existing builder — the streaming
    /// generation path: a [`TraceBuilder::streaming`] sink sees the same
    /// event sequence [`Program::execute`] would materialize, flushed in
    /// chunks.
    ///
    /// Returns [`DslError`] on unbound variables or unknown tables; the
    /// caller finishes (or stream-finishes) the builder.
    pub fn execute_into(&self, tb: &mut TraceBuilder) -> Result<(), DslError> {
        let mut env: BTreeMap<Var, i64> = BTreeMap::new();
        Self::exec_stmts(&self.body, &mut env, &self.tables, tb)
    }

    fn eval(
        expr: &Expr,
        env: &BTreeMap<Var, i64>,
        tables: &BTreeMap<&'static str, Vec<i64>>,
    ) -> Result<i64, DslError> {
        Ok(match expr {
            Expr::Const(c) => *c,
            Expr::Var(v) => *env.get(v).ok_or(DslError::UnboundVar(v))?,
            Expr::Add(a, b) => {
                Self::eval(a, env, tables)?.wrapping_add(Self::eval(b, env, tables)?)
            }
            Expr::Sub(a, b) => {
                Self::eval(a, env, tables)?.wrapping_sub(Self::eval(b, env, tables)?)
            }
            Expr::Mul(a, b) => {
                Self::eval(a, env, tables)?.wrapping_mul(Self::eval(b, env, tables)?)
            }
            Expr::Rem(a, b) => {
                let d = Self::eval(b, env, tables)?;
                if d == 0 {
                    0
                } else {
                    Self::eval(a, env, tables)?.rem_euclid(d)
                }
            }
            Expr::Div(a, b) => {
                let d = Self::eval(b, env, tables)?;
                if d == 0 {
                    0
                } else {
                    Self::eval(a, env, tables)?.div_euclid(d)
                }
            }
            Expr::Index { table, idx } => {
                let t = tables.get(table).ok_or(DslError::UnknownTable(table))?;
                if t.is_empty() {
                    0
                } else {
                    let i = Self::eval(idx, env, tables)?.rem_euclid(t.len() as i64) as usize;
                    t[i]
                }
            }
        })
    }

    fn cond(
        c: &Cond,
        env: &BTreeMap<Var, i64>,
        tables: &BTreeMap<&'static str, Vec<i64>>,
    ) -> Result<bool, DslError> {
        Ok(match c {
            Cond::Lt(a, b) => Self::eval(a, env, tables)? < Self::eval(b, env, tables)?,
            Cond::NonZero(a) => Self::eval(a, env, tables)? != 0,
        })
    }

    fn exec_stmts(
        stmts: &[Stmt],
        env: &mut BTreeMap<Var, i64>,
        tables: &BTreeMap<&'static str, Vec<i64>>,
        tb: &mut TraceBuilder,
    ) -> Result<(), DslError> {
        for s in stmts {
            match s {
                Stmt::Loop { var, count, body } => {
                    let n = Self::eval(count, env, tables)?.max(0);
                    // Synthesize a stable back-branch PC from the loop
                    // variable's address-independent identity.
                    let back_pc = Pc(0xB100_0000 | (fnv(var) & 0xFF_FFFF));
                    for i in 0..n {
                        env.insert(var, i);
                        Self::exec_stmts(body, env, tables, tb)?;
                        tb.branch(back_pc, i + 1 != n);
                    }
                }
                Stmt::Load { pc, addr } => {
                    let a = Self::eval(addr, env, tables)?.max(0) as u64;
                    let dep = if addr.is_data_dependent() {
                        Dependence::PrevLoad
                    } else {
                        Dependence::None
                    };
                    tb.mem(MemAccess {
                        pc: Pc(*pc),
                        addr: Addr(a),
                        kind: MemKind::Load,
                        dep,
                    });
                }
                Stmt::Store { pc, addr } => {
                    let a = Self::eval(addr, env, tables)?.max(0) as u64;
                    let dep = if addr.is_data_dependent() {
                        Dependence::PrevLoad
                    } else {
                        Dependence::None
                    };
                    tb.mem(MemAccess {
                        pc: Pc(*pc),
                        addr: Addr(a),
                        kind: MemKind::Store,
                        dep,
                    });
                }
                Stmt::Let { var, value } => {
                    let v = Self::eval(value, env, tables)?;
                    env.insert(var, v);
                }
                Stmt::Alu { pc, count } => tb.alu(Pc(*pc), *count),
                Stmt::If {
                    pc,
                    cond,
                    then,
                    otherwise,
                } => {
                    let taken = Self::cond(cond, env, tables)?;
                    // Data-dependent conditions consume the loaded value.
                    let _ = cond.is_data_dependent();
                    tb.branch(Pc(*pc), taken);
                    if taken {
                        Self::exec_stmts(then, env, tables, tb)?;
                    } else {
                        Self::exec_stmts(otherwise, env, tables, tb)?;
                    }
                }
                Stmt::BlockBegin(id) => tb.begin_block(*id),
                Stmt::BlockEnd(id) => tb.end_block(*id),
            }
        }
        Ok(())
    }
}

/// FNV-1a over a static string, for stable synthetic PCs.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::e::{c, idx, v};
    use super::*;
    use cbws_trace::TraceEvent;

    fn simple_nest() -> Program {
        // for i in 0..3 { for j in 0..4 { load A[i*4+j]; } }
        Program::new(vec![Stmt::Loop {
            var: "i",
            count: c(3),
            body: vec![Stmt::Loop {
                var: "j",
                count: c(4),
                body: vec![Stmt::Load {
                    pc: 0x10,
                    addr: v("i").mul(c(4 * 64)).add(v("j").mul(c(64))),
                }],
            }],
        }])
    }

    #[test]
    fn annotate_marks_innermost_only() {
        let mut p = simple_nest();
        assert_eq!(p.annotate(), 1);
        let trace = p.execute().unwrap();
        let s = trace.stats();
        assert_eq!(s.dynamic_blocks, 12); // 3 * 4 iterations
        assert_eq!(s.static_blocks, 1);
    }

    #[test]
    fn annotate_is_idempotent() {
        let mut p = simple_nest();
        assert_eq!(p.annotate(), 1);
        assert_eq!(p.annotate(), 0);
    }

    #[test]
    fn annotate_handles_sibling_loops_and_ifs() {
        let mut p = Program::new(vec![
            Stmt::Loop {
                var: "a",
                count: c(2),
                body: vec![Stmt::Alu { pc: 0, count: 1 }],
            },
            Stmt::If {
                pc: 0x99,
                cond: Cond::Lt(c(0), c(1)),
                then: vec![Stmt::Loop {
                    var: "b",
                    count: c(2),
                    body: vec![Stmt::Alu { pc: 0, count: 1 }],
                }],
                otherwise: vec![],
            },
        ]);
        assert_eq!(p.annotate(), 2);
        let trace = p.execute().unwrap();
        assert_eq!(trace.stats().static_blocks, 2);
    }

    #[test]
    fn execution_addresses_are_affine() {
        let mut p = simple_nest();
        p.annotate();
        let trace = p.execute().unwrap();
        let addrs: Vec<u64> = trace
            .iter()
            .filter_map(|e| e.mem().map(|m| m.addr.0))
            .collect();
        let expect: Vec<u64> = (0..3)
            .flat_map(|i| (0..4).map(move |j| (i * 4 + j) * 64))
            .collect();
        assert_eq!(addrs, expect);
    }

    #[test]
    fn unroll_preserves_per_iteration_blocks() {
        let mut p = simple_nest();
        p.annotate();
        let before = p.execute().unwrap();
        p.unroll_innermost(2);
        let after = p.execute().unwrap();
        // Same dynamic block count and same access sequence.
        assert_eq!(before.stats().dynamic_blocks, after.stats().dynamic_blocks);
        let a1: Vec<u64> = before
            .iter()
            .filter_map(|e| e.mem().map(|m| m.addr.0))
            .collect();
        let a2: Vec<u64> = after
            .iter()
            .filter_map(|e| e.mem().map(|m| m.addr.0))
            .collect();
        assert_eq!(a1, a2);
    }

    #[test]
    fn unroll_reduces_back_branches() {
        let mut p = simple_nest();
        p.annotate();
        let before = p.execute().unwrap().stats().branches;
        p.unroll_innermost(2);
        let after = p.execute().unwrap().stats().branches;
        assert!(after < before, "unrolling should halve inner back-branches");
    }

    #[test]
    fn split_preserves_access_stream_and_blocks() {
        let mut plain = simple_nest();
        plain.annotate();
        let before = plain.execute().unwrap();
        let mut split = simple_nest();
        split.annotate();
        split.split_innermost();
        let after = split.execute().unwrap();
        assert_eq!(before.stats().dynamic_blocks, after.stats().dynamic_blocks);
        let a1: Vec<u64> = before
            .iter()
            .filter_map(|e| e.mem().map(|m| m.addr.0))
            .collect();
        let a2: Vec<u64> = after
            .iter()
            .filter_map(|e| e.mem().map(|m| m.addr.0))
            .collect();
        assert_eq!(a1, a2, "splitting must not change the access stream");
    }

    #[test]
    fn split_handles_odd_trip_counts() {
        let mut p = Program::new(vec![Stmt::Loop {
            var: "i",
            count: c(7),
            body: vec![Stmt::Load {
                pc: 0x10,
                addr: v("i").mul(c(64)),
            }],
        }]);
        p.annotate();
        p.split_innermost();
        let trace = p.execute().unwrap();
        let addrs: Vec<u64> = trace
            .iter()
            .filter_map(|e| e.mem().map(|m| m.addr.0))
            .collect();
        let expect: Vec<u64> = (0..7).map(|i| i * 64).collect();
        assert_eq!(addrs, expect);
        assert_eq!(trace.stats().dynamic_blocks, 7);
    }

    #[test]
    fn split_then_unroll_composes() {
        let mut p = simple_nest();
        p.annotate();
        p.split_innermost();
        p.unroll_innermost(2);
        let trace = p.execute().unwrap();
        // 3 outer x (2 + 2) inner iterations survive both transforms.
        assert_eq!(trace.stats().dynamic_blocks, 12);
    }

    #[test]
    fn index_reads_table_and_marks_dependence() {
        let mut p = Program::new(vec![Stmt::Loop {
            var: "i",
            count: c(4),
            body: vec![
                Stmt::Load {
                    pc: 0x10,
                    addr: v("i").mul(c(64)),
                },
                Stmt::Load {
                    pc: 0x14,
                    addr: idx("t", v("i")).mul(c(64)),
                },
            ],
        }])
        .table("t", vec![7, 3, 9, 1]);
        p.annotate();
        let trace = p.execute().unwrap();
        let mems: Vec<&MemAccess> = trace.iter().filter_map(|e| e.mem()).collect();
        assert_eq!(mems[1].addr.0, 7 * 64);
        assert_eq!(mems[1].dep, Dependence::PrevLoad);
        assert_eq!(mems[0].dep, Dependence::None);
    }

    #[test]
    fn if_emits_branch_events() {
        let mut p = Program::new(vec![Stmt::Loop {
            var: "i",
            count: c(4),
            body: vec![Stmt::If {
                pc: 0x20,
                cond: Cond::Lt(Expr::Rem(Box::new(v("i")), Box::new(c(2))), c(1)),
                then: vec![Stmt::Store {
                    pc: 0x24,
                    addr: c(0),
                }],
                otherwise: vec![Stmt::Alu { pc: 0x28, count: 1 }],
            }],
        }]);
        p.annotate();
        let trace = p.execute().unwrap();
        let dirs: Vec<bool> = trace
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Branch(b) if b.pc == Pc(0x20) => Some(b.taken),
                _ => None,
            })
            .collect();
        assert_eq!(dirs, vec![true, false, true, false]);
        assert_eq!(trace.stats().stores, 2);
    }

    #[test]
    fn unbound_variable_errors() {
        let p = Program::new(vec![Stmt::Load {
            pc: 0,
            addr: v("nope"),
        }]);
        assert_eq!(p.execute().unwrap_err(), DslError::UnboundVar("nope"));
    }

    #[test]
    fn unknown_table_errors() {
        let p = Program::new(vec![Stmt::Load {
            pc: 0,
            addr: idx("ghost", c(0)),
        }]);
        assert_eq!(p.execute().unwrap_err(), DslError::UnknownTable("ghost"));
    }

    #[test]
    fn zero_and_negative_trip_counts() {
        let mut p = Program::new(vec![Stmt::Loop {
            var: "i",
            count: c(-5),
            body: vec![Stmt::Load { pc: 0, addr: c(0) }],
        }]);
        p.annotate();
        let trace = p.execute().unwrap();
        assert_eq!(trace.stats().mem_accesses, 0);
        assert_eq!(trace.stats().dynamic_blocks, 0);
    }

    #[test]
    fn cbws_sees_identical_working_sets_after_unroll() {
        // The paper's §IV-A claim, end to end: per-iteration CBWS vectors
        // are invariant under unrolling because the markers replicate.
        use cbws_core::analysis::collect_block_histories;
        let make = || {
            let mut p = Program::new(vec![Stmt::Loop {
                var: "i",
                count: c(8),
                body: vec![
                    Stmt::Load {
                        pc: 0x10,
                        addr: v("i").mul(c(4096)),
                    },
                    Stmt::Load {
                        pc: 0x14,
                        addr: v("i").mul(c(4096)).add(c(1 << 20)),
                    },
                ],
            }]);
            p.annotate();
            p
        };
        let plain = make().execute().unwrap();
        let mut unrolled_p = make();
        unrolled_p.unroll_innermost(4);
        let unrolled = unrolled_p.execute().unwrap();
        let h1 = collect_block_histories(&plain, 16);
        let h2 = collect_block_histories(&unrolled, 16);
        let v1: Vec<_> = h1[&BlockId(0)]
            .instances
            .iter()
            .map(|w| w.lines().to_vec())
            .collect();
        let v2: Vec<_> = h2[&BlockId(0)]
            .instances
            .iter()
            .map(|w| w.lines().to_vec())
            .collect();
        assert_eq!(v1, v2);
    }
}
