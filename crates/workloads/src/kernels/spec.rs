//! SPEC CPU2006 kernels: `mcf`, `soplex`, `libquantum`, `milc`, `bzip2`
//! (memory-intensive) and `sjeng`, `omnetpp` (low-MPKI).

use super::helpers::{base, rng};
use crate::dsl::{e, Program, Stmt};
use crate::Scale;
use cbws_trace::{Addr, BlockId, Pc, TraceBuilder};
use rand::Rng;

/// `401.bzip2-source`: the annotated inner loop of the file-buffer reader
/// copies an 8 KB chunk — 256 memory accesses across ~256 distinct lines —
/// per iteration. The CBWS vector (16 lines) overflows on every instance,
/// which is why the paper measures CBWS ~5% *behind* SMS here (§VII-C).
pub(crate) fn bzip2(scale: Scale, b: &mut TraceBuilder) {
    let chunks = scale.pick(6, 55, 2800);
    let src = base(0);
    let dst = base(1);
    let work = base(2);
    let mut r = rng(0x627A_0001);
    for i in 0..chunks {
        b.annotated_loop(BlockId(0), 1, |b, _| {
            let chunk = i * 8192;
            for l in 0..128u64 {
                b.load(Pc(0x100), Addr(src + chunk + l * 64));
                b.store(Pc(0x104), Addr(dst + chunk + l * 64));
                if l % 16 == 0 {
                    b.alu(Pc(0x108), 2);
                }
            }
        });
        // Block-sorting work between buffer reads — the non-loop half of
        // bzip2's profile (the paper's Fig. 1 shows bzip2 with the lowest
        // tight-loop fraction of the MI group). The suffix comparisons
        // chase pointers across a multi-MB work area, so this phase has
        // real memory stalls, not just ALU work.
        for k in 0..8u64 {
            b.load(Pc(0x10c), Addr(work + r.gen_range(0..65536u64) * 64));
            b.load_dep(Pc(0x110), Addr(work + r.gen_range(0..65536u64) * 64));
            b.alu(Pc(0x114 + k * 4), 28);
            b.branch(Pc(0x140), r.gen_bool(0.6));
        }
    }
}

/// `429.mcf-ref`: network-simplex arc scanning. The arc array streams at a
/// fixed 80-byte stride while each arc dereferences its tail node — a
/// pointer chase into a 16 MB node pool. The regular arc backbone is
/// predictable; the node dereferences are not, so the hybrid scheme wins.
pub(crate) fn mcf(scale: Scale, b: &mut TraceBuilder) {
    let arcs = scale.pick(90, 2200, 72000);
    let arc_base = base(0);
    let node_base = base(1);
    let mut r = rng(0x6D63_6601);
    let node_of: Vec<u64> = (0..8192).map(|_| r.gen_range(0..65536u64)).collect();
    let take: Vec<bool> = (0..8192).map(|_| r.gen_bool(0.7)).collect();

    b.annotated_loop(BlockId(0), arcs, |b, i| {
        let arc = arc_base + i * 80;
        b.load(Pc(0x200), Addr(arc));
        b.load(Pc(0x204), Addr(arc + 40));
        let node = node_base + node_of[(i % 8192) as usize] * 256;
        b.load_dep(Pc(0x208), Addr(node));
        b.load_dep(Pc(0x20c), Addr(node + 16));
        b.alu(Pc(0x210), 3);
        let taken = take[(i % 8192) as usize];
        b.branch(Pc(0x214), taken);
        if taken {
            b.store(Pc(0x218), Addr(node + 32));
        }
    });
}

/// `462.libquantum-ref`: a quantum-gate sweep over the state-vector array —
/// one long unit-stride stream (16 B records) with a data-dependent
/// conditional amplitude flip (~50% taken, poorly predictable).
pub(crate) fn libquantum(scale: Scale, b: &mut TraceBuilder) {
    let n = scale.pick(180, 5500, 190000);
    let reg = base(0);
    let mut r = rng(0x6C71_0001);

    b.annotated_loop(BlockId(0), n, |b, i| {
        let addr = reg + i * 16;
        b.load(Pc(0x300), Addr(addr));
        b.alu(Pc(0x304), 1);
        let taken = r.gen_bool(0.5);
        b.branch(Pc(0x308), taken);
        if taken {
            b.store(Pc(0x30c), Addr(addr + 8));
        }
    });
}

/// `450.soplex-ref`: sparse column updates during simplex pricing. The
/// per-nonzero iteration loads an index (unit stride), gathers `y[idx]`
/// from a 4 MB vector whose deltas come from a *small but shuffled*
/// alphabet (the Fig. 5 skew), and diverges on a data-dependent branch that
/// changes the iteration's working-set size — the §VII-A explanation for
/// why skew alone does not make soplex predictable.
pub(crate) fn soplex(scale: Scale, b: &mut TraceBuilder) {
    let columns = scale.pick(14, 380, 8800);
    let idx_base = base(0);
    let y_base = base(1);
    let aux_base = base(2);
    let mut r = rng(0x736F_7001);
    // Gather deltas drawn from a small alphabet, applied in random order.
    const DELTAS: [i64; 5] = [1, 2, 16, -8, 128];

    let mut p: u64 = 0; // nonzero cursor (unit index stream)
    let mut y_row: i64 = 1 << 14; // wandering row index into y
    for _col in 0..columns {
        let nnz = 8 + r.gen_range(0..16u64);
        b.annotated_loop(BlockId(0), nnz, |b, _| {
            b.load(Pc(0x400), Addr(idx_base + p * 4));
            p += 1;
            y_row = (y_row + DELTAS[r.gen_range(0..DELTAS.len())]).rem_euclid(1 << 20);
            b.load_dep(Pc(0x404), Addr(y_base + y_row as u64 * 4));
            b.alu(Pc(0x408), 2);
            let taken = r.gen_bool(0.5);
            b.branch(Pc(0x40c), taken);
            if taken {
                // Divergent path: extra gather grows the working set.
                b.store(Pc(0x410), Addr(y_base + y_row as u64 * 4));
                b.load(Pc(0x414), Addr(aux_base + (y_row as u64 % 4096) * 64));
            }
        });
        // Pricing and ratio-test work between column updates (soplex's
        // non-loop share in Fig. 1).
        b.load(Pc(0x418), Addr(aux_base + (p % 2048) * 64));
        b.alu(Pc(0x41c), 26);
        b.branch(Pc(0x420), r.gen_bool(0.5));
    }
}

/// `433.milc-su3imp`: SU(3) gauge-field loops. Each site multiplies 3x3
/// complex matrices from the link and source fields into the destination —
/// three 128-byte-record streams (two lines each) advancing in lock-step,
/// with a heavy FMA tail. A showcase for multi-stream lock-step prefetch.
pub(crate) fn milc(scale: Scale, tb: &mut TraceBuilder) {
    let sites = scale.pick(130, 3200, 30000);
    let link = base(0) as i64;
    let src = base(1) as i64;
    let dst = base(2) as i64;
    let mut p = Program::new(vec![Stmt::Loop {
        var: "s",
        count: e::c(sites as i64),
        body: vec![
            Stmt::Load {
                pc: 0x500,
                addr: e::v("s").mul(e::c(128)).add(e::c(link)),
            },
            Stmt::Load {
                pc: 0x504,
                addr: e::v("s").mul(e::c(128)).add(e::c(link + 64)),
            },
            Stmt::Load {
                pc: 0x508,
                addr: e::v("s").mul(e::c(128)).add(e::c(src)),
            },
            Stmt::Load {
                pc: 0x50c,
                addr: e::v("s").mul(e::c(128)).add(e::c(src + 64)),
            },
            Stmt::Alu {
                pc: 0x510,
                count: 18,
            },
            Stmt::Store {
                pc: 0x514,
                addr: e::v("s").mul(e::c(128)).add(e::c(dst)),
            },
            Stmt::Store {
                pc: 0x518,
                addr: e::v("s").mul(e::c(128)).add(e::c(dst + 64)),
            },
        ],
    }]);
    p.annotate();
    p.execute_into(tb).expect("milc program is closed")
}

/// `458.sjeng-ref`: transposition-table probes. Random lookups into a
/// 512 KB hash table (L2-resident after warm-up) plus noisy search
/// branches: high L1 miss rate, low L2 MPKI.
pub(crate) fn sjeng(scale: Scale, b: &mut TraceBuilder) {
    let probes = scale.pick(110, 2800, 58000);
    let hash = base(0);
    let mut r = rng(0x736A_0001);

    b.annotated_loop(BlockId(0), probes, |b, _| {
        // 64 KB hot table: warm after a few thousand probes, so the run is
        // genuinely low-MPKI like the paper's sjeng.
        let slot = r.gen_range(0..1024u64);
        b.load(Pc(0x600), Addr(hash + slot * 64));
        b.alu(Pc(0x604), 6);
        let hit = r.gen_bool(0.85);
        b.branch(Pc(0x608), hit);
        if !hit {
            b.store(Pc(0x60c), Addr(hash + slot * 64 + 8));
        }
    });
}

/// `471.omnetpp-omnetpp`: event-queue sift. Each operation follows a short
/// dependent chain through a ~1 MB binary heap and rewrites one node.
pub(crate) fn omnetpp(scale: Scale, b: &mut TraceBuilder) {
    let ops = scale.pick(70, 1700, 33000);
    let heap = base(0);
    let mut r = rng(0x6F6D_0001);

    b.annotated_loop(BlockId(0), ops, |b, _| {
        // Sift from a random leaf towards the root: parent chain within a
        // 64 KB heap (hot after warm-up).
        let mut node = r.gen_range(512..1024u64);
        b.load(Pc(0x700), Addr(heap + node * 64));
        for d in 0..3u64 {
            node /= 2;
            b.load_dep(Pc(0x704 + d * 4), Addr(heap + node * 64));
            b.alu(Pc(0x710), 2);
        }
        let swap = r.gen_bool(0.7);
        b.branch(Pc(0x714), swap);
        if swap {
            b.store(Pc(0x718), Addr(heap + node * 64));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::super::helpers::collect;
    use super::*;
    use cbws_core::analysis::collect_block_histories;

    #[test]
    fn bzip2_blocks_overflow_16_lines() {
        let t = collect(bzip2, Scale::Tiny);
        // Every dynamic block touches ~256 lines: none fit in 16.
        assert_eq!(t.stats().block_ws_within(16), 0.0);
    }

    #[test]
    fn mcf_mixes_streaming_and_chasing() {
        let t = collect(mcf, Scale::Tiny);
        let deps = t
            .iter()
            .filter_map(|e| e.mem())
            .filter(|m| m.dep == cbws_trace::Dependence::PrevLoad)
            .count();
        assert!(deps > 0, "mcf must pointer-chase");
        assert!(t.stats().block_ws_within(16) > 0.99, "mcf blocks are small");
    }

    #[test]
    fn libquantum_is_single_stream() {
        let t = collect(libquantum, Scale::Tiny);
        let s = t.stats();
        // ~50% of iterations store (conditional flip).
        assert!(s.stores * 3 > s.loads && s.stores < s.loads);
    }

    #[test]
    fn soplex_blocks_vary_in_size() {
        let t = collect(soplex, Scale::Small);
        let h = collect_block_histories(&t, 64);
        let sizes: std::collections::BTreeSet<usize> =
            h[&BlockId(0)].instances.iter().map(|w| w.len()).collect();
        assert!(
            sizes.len() > 1,
            "branch divergence must vary the working set"
        );
    }

    #[test]
    fn milc_differentials_are_constant_two_lines() {
        let t = collect(milc, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let diffs = h.values().next().unwrap().consecutive_differentials();
        assert!(diffs.iter().all(|d| d.strides().iter().all(|&s| s == 2)));
    }

    #[test]
    fn sjeng_and_omnetpp_footprints_are_resident() {
        for t in [collect(sjeng, Scale::Tiny), collect(omnetpp, Scale::Tiny)] {
            let max_line = t
                .iter()
                .filter_map(|e| e.mem())
                .map(|m| m.addr.line().0)
                .max()
                .unwrap();
            let min_line = t
                .iter()
                .filter_map(|e| e.mem())
                .map(|m| m.addr.line().0)
                .min()
                .unwrap();
            assert!((max_line - min_line) * 64 <= 2 * 1024 * 1024);
        }
    }
}
