//! Shared utilities for the kernel generators.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deterministic per-kernel RNG.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Base byte address of the `i`-th array of a kernel. Arrays are spaced
/// 64 MB apart so streams never alias.
pub(crate) const fn base(i: u64) -> u64 {
    0x4000_0000 + (i << 26)
}

/// Runs an emitter-style kernel into a fresh in-memory builder — the
/// test-side stand-in for `WorkloadSpec::generate`.
#[cfg(test)]
pub(crate) fn collect(
    emit: fn(crate::Scale, &mut cbws_trace::TraceBuilder),
    scale: crate::Scale,
) -> cbws_trace::Trace {
    let mut tb = cbws_trace::TraceBuilder::new();
    emit(scale, &mut tb);
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let a: u64 = rng(42).gen();
        let b: u64 = rng(42).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn bases_do_not_alias_within_64mb() {
        assert_eq!(base(1) - base(0), 64 << 20);
        assert!(base(0) > 0);
    }
}
