//! SPLASH-2 kernels: `fft`, `radix`, `lu_ncb` (memory-intensive) and
//! `cholesky`, `ocean_cp`, `water_spatial` (low-MPKI).

use super::helpers::{base, rng};
use crate::dsl::{e, Program, Stmt};
use crate::Scale;
use cbws_trace::{Addr, BlockId, Pc, TraceBuilder};
use rand::Rng;

/// `fft-simlarge`: radix-2 butterflies over a 4 MB complex array. Each
/// stage uses a different pair distance (2^s), so the differential alphabet
/// grows with the stage count, and the bit-reversal pass scatters — the
/// combination that thrashes the 16-entry CBWS history table (§VII-A).
pub(crate) fn fft(scale: Scale, b: &mut TraceBuilder) {
    let (rev, stages, butterflies) = match scale {
        Scale::Tiny => (64, 3, 40),
        Scale::Small => (1500, 8, 1200),
        Scale::Full => (8000, 16, 4000),
        Scale::Huge => (96000, 16, 48000),
    };
    let data = base(0);
    let twiddle = base(1);
    const N_LOG: u32 = 18;

    // Phase 1: bit-reversal permutation (annotated tight loop, scattered).
    b.annotated_loop(BlockId(0), rev, |b, i| {
        b.load(Pc(0xF00), Addr(data + i * 16));
        let r = (i as u32).reverse_bits() >> (32 - N_LOG);
        b.store(Pc(0xF04), Addr(data + u64::from(r) * 16));
        b.alu(Pc(0xF08), 2);
    });
    // Phase 2: butterfly stages with per-stage distances.
    for s in 0..stages {
        let dist = 16u64 << (s % 16); // byte distance between pair elements
        b.annotated_loop(BlockId(1), butterflies, |b, j| {
            let base_addr = data + (j * 32) % (1 << 22);
            b.load(Pc(0xF10), Addr(base_addr));
            b.load(Pc(0xF14), Addr(base_addr + dist));
            b.load(Pc(0xF18), Addr(twiddle + (j % 1024) * 16));
            b.alu(Pc(0xF1C), 6);
            b.store(Pc(0xF20), Addr(base_addr));
            b.store(Pc(0xF24), Addr(base_addr + dist));
        });
        // Twiddle-table setup and transpose bookkeeping between stages
        // (fft's non-loop share in Fig. 1).
        for k in 0..butterflies / 6 {
            b.load(Pc(0xF28), Addr(twiddle + (k % 1024) * 16));
            b.alu(Pc(0xF2C), 9);
        }
    }
}

/// `radix-simlarge`: per-digit passes over fresh key arrays — a digit
/// histogram (small, resident counters) followed by a rank-and-permute
/// whose output streams advance smoothly because the keys arrive
/// nearly-sorted by digit, the block-structured behaviour that lets CBWS
/// all but eliminate misses (§VII-A).
pub(crate) fn radix(scale: Scale, b: &mut TraceBuilder) {
    let keys = scale.pick(120, 3400, 48000);
    let counts = base(6);
    let mut r = rng(0x7261_0001);

    for pass in 0..2u64 {
        let key_arr = base(pass * 2);
        let out_arr = base(pass * 2 + 1);
        // Histogram pass.
        b.annotated_loop(BlockId(pass as u32 * 2), keys, |b, i| {
            b.load(Pc(0x1000), Addr(key_arr + i * 4));
            let digit = ((i / 512) + r.gen_range(0..3u64)) % 256;
            b.load_dep(Pc(0x1004), Addr(counts + digit * 4));
            b.store(Pc(0x1008), Addr(counts + digit * 4));
            b.alu(Pc(0x100C), 2);
        });
        // Permute pass: nearly-sorted digits make output advance smoothly.
        let mut out_pos = 0u64;
        b.annotated_loop(BlockId(pass as u32 * 2 + 1), keys, |b, i| {
            b.load(Pc(0x1010), Addr(key_arr + i * 4));
            out_pos += 1 + r.gen_range(0..2u64) / 2;
            b.store(Pc(0x1014), Addr(out_arr + out_pos * 4));
            b.alu(Pc(0x1018), 2);
        });
    }
}

/// `lu-ncb-simlarge`: LU with *non-contiguous* blocks. In-block daxpy rows
/// stride 8 KB (128 lines) — constant differentials CBWS locks onto —
/// while block base addresses jump pseudo-randomly across a 32 MB factor,
/// defeating region-based (SMS) tracking.
pub(crate) fn lu_ncb(scale: Scale, b: &mut TraceBuilder) {
    let blocks = scale.pick(5, 130, 4100);
    let factor = base(0);
    let mut r = rng(0x6C75_0001);

    for _ in 0..blocks {
        let dst_block = factor + r.gen_range(0..2048u64) * 16384;
        let piv_block = factor + r.gen_range(0..2048u64) * 16384;
        b.annotated_loop(BlockId(0), 16, |b, row| {
            let piv = piv_block + row * 8192;
            let dst = dst_block + row * 8192;
            b.load(Pc(0x1100), Addr(piv));
            b.load(Pc(0x1104), Addr(piv + 64));
            b.load(Pc(0x1108), Addr(dst));
            b.load(Pc(0x110C), Addr(dst + 64));
            b.alu(Pc(0x1110), 6);
            b.store(Pc(0x1114), Addr(dst));
            b.store(Pc(0x1118), Addr(dst + 64));
        });
        b.alu(Pc(0x111C), 4);
    }
}

/// `cholesky-tk29`: supernodal panel updates inside a ~768 KB resident
/// factor: medium-stride column sweeps against a pivot panel.
pub(crate) fn cholesky(scale: Scale, b: &mut TraceBuilder) {
    let panels = scale.pick(10, 260, 3900);
    let factor = base(0);
    let mut r = rng(0x6368_0001);

    for _ in 0..panels {
        let panel = factor + r.gen_range(0..96u64) * 8192;
        let pivot = factor + r.gen_range(0..96u64) * 8192;
        b.annotated_loop(BlockId(0), 16, |b, row| {
            b.load(Pc(0x1200), Addr(pivot + row * 96));
            b.load(Pc(0x1204), Addr(panel + row * 96));
            b.alu(Pc(0x1208), 4);
            b.store(Pc(0x120C), Addr(panel + row * 96));
        });
    }
}

/// `ocean-cp-simlarge`: red-black 5-point relaxation on a 128x128 f64 grid
/// (two ~128 KB arrays, hot after the first sweep).
pub(crate) fn ocean_cp(scale: Scale, tb: &mut TraceBuilder) {
    let (sweeps, rows, cols) = match scale {
        Scale::Tiny => (1, 2, 64),
        Scale::Small => (2, 24, 126),
        Scale::Full => (5, 126, 126),
        Scale::Huge => (60, 126, 126),
    };
    let src = base(0) as i64;
    let dst = base(1) as i64;
    let at = |r: crate::dsl::Expr, c: crate::dsl::Expr, arr: i64| {
        r.mul(e::c(128)).add(c).mul(e::c(8)).add(e::c(arr))
    };
    let rr = || e::v("r").add(e::c(1));
    let cc = || e::v("c").add(e::c(1));
    let mut p = Program::new(vec![Stmt::Loop {
        var: "s",
        count: e::c(sweeps),
        body: vec![Stmt::Loop {
            var: "r",
            count: e::c(rows),
            body: vec![Stmt::Loop {
                var: "c",
                count: e::c(cols),
                body: vec![
                    Stmt::Load {
                        pc: 0x1300,
                        addr: at(rr(), cc(), src),
                    },
                    Stmt::Load {
                        pc: 0x1304,
                        addr: at(rr().add(e::c(1)), cc(), src),
                    },
                    Stmt::Load {
                        pc: 0x1308,
                        addr: at(rr().add(e::c(-1)), cc(), src),
                    },
                    Stmt::Load {
                        pc: 0x130c,
                        addr: at(rr(), cc().add(e::c(1)), src),
                    },
                    Stmt::Load {
                        pc: 0x1310,
                        addr: at(rr(), cc().add(e::c(-1)), src),
                    },
                    Stmt::Alu {
                        pc: 0x1314,
                        count: 5,
                    },
                    Stmt::Store {
                        pc: 0x1318,
                        addr: at(rr(), cc(), dst),
                    },
                ],
            }],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("ocean program is closed")
}

/// `water-spatial-native`: cell-list molecular dynamics — per-molecule
/// gathers from own and neighbouring cells of a hot box, compute-heavy.
pub(crate) fn water_spatial(scale: Scale, b: &mut TraceBuilder) {
    let mols = scale.pick(45, 1100, 33000);
    let box_arr = base(0);
    let mut r = rng(0x7761_0001);

    b.annotated_loop(BlockId(0), mols, |b, i| {
        // ~128 KB hot box of 1024 cells.
        let cell = (i * 7) % 1024;
        b.load(Pc(0x1400), Addr(box_arr + cell * 128));
        b.load(Pc(0x1404), Addr(box_arr + cell * 128 + 64));
        for n in 0..4u64 {
            let neigh = (cell as i64 + r.gen_range(-32..32i64)).rem_euclid(1024) as u64;
            b.load(Pc(0x1408 + n * 4), Addr(box_arr + neigh * 128));
        }
        b.alu(Pc(0x1418), 12);
        b.store(Pc(0x141C), Addr(box_arr + cell * 128));
    });
}

#[cfg(test)]
mod tests {
    use super::super::helpers::collect;
    use super::*;
    use cbws_core::analysis::{collect_block_histories, DifferentialSkew};

    #[test]
    fn fft_has_many_distinct_differentials() {
        let t = collect(fft, Scale::Small);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        // Stage alphabet + scatter: far more vectors than stencil's one.
        assert!(
            skew.distinct() > 16,
            "fft must overflow the history table: {}",
            skew.distinct()
        );
    }

    #[test]
    fn lu_ncb_in_block_differentials_constant() {
        let t = collect(lu_ncb, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let diffs = h.values().next().unwrap().consecutive_differentials();
        let constant = diffs
            .iter()
            .filter(|d| d.strides().iter().all(|&s| s == 128))
            .count();
        // 15 of every 16 differentials are in-block (constant); block
        // junctions are jumps.
        assert!(
            constant * 10 >= diffs.len() * 8,
            "{constant}/{}",
            diffs.len()
        );
    }

    #[test]
    fn radix_output_advances_smoothly() {
        let t = collect(radix, Scale::Tiny);
        let s = t.stats();
        assert!(s.dynamic_blocks > 0);
        assert!(s.stores > 0);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert!(
            skew.coverage_at(0.2) > 0.6,
            "radix should be mostly predictable"
        );
    }

    #[test]
    fn ocean_and_cholesky_are_resident() {
        // Each array's touched footprint stays well under the 2 MB L2
        // (arrays themselves are spaced 64 MB apart).
        for t in [
            collect(ocean_cp, Scale::Tiny),
            collect(cholesky, Scale::Tiny),
        ] {
            for m in t.iter().filter_map(|e| e.mem()) {
                let off = (m.addr.0 - base(0)) % (64 << 20);
                assert!(off < 1024 * 1024, "offset {off} exceeds residency budget");
            }
        }
    }

    #[test]
    fn water_gathers_stay_semi_local() {
        let t = collect(water_spatial, Scale::Tiny);
        assert!(t.stats().block_ws_within(16) > 0.99);
    }
}
