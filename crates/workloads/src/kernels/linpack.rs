//! The `*-linpack` micro-kernels of Fig. 14: `md`, `mvx`, `mxm`
//! (all low-MPKI).

use super::helpers::{base, rng};
use crate::dsl::{e, Program, Stmt};
use crate::Scale;
use cbws_trace::{Addr, BlockId, Pc, TraceBuilder};
use rand::Rng;

/// `md-linpack`: Lennard-Jones force loops — per-particle gathers from a
/// spatially local neighbour list inside a hot position array.
pub(crate) fn md(scale: Scale, b: &mut TraceBuilder) {
    let particles = scale.pick(25, 620, 12000);
    let pos = base(0);
    let mut r = rng(0x6D64_0001);

    for p in 0..particles {
        // 64 KB hot position array: 2048 particles cycled.
        let me = p % 2048;
        b.annotated_loop(BlockId(0), 8, |b, n| {
            if n == 0 {
                b.load(Pc(0x1C00), Addr(pos + me * 32));
            }
            let neigh = (me as i64 + r.gen_range(-64..64i64)).rem_euclid(2048) as u64;
            b.load(Pc(0x1C04), Addr(pos + neigh * 32));
            b.alu(Pc(0x1C08), 4);
        });
        b.store(Pc(0x1C0C), Addr(pos + me * 32));
    }
}

/// `mvx-linpack`: dense matrix-vector product — unit-stride row sweeps of a
/// ~128 KB matrix against a resident vector, repeated until hot.
pub(crate) fn mvx(scale: Scale, tb: &mut TraceBuilder) {
    let (epochs, rows) = match scale {
        Scale::Tiny => (1, 4),
        Scale::Small => (3, 32),
        Scale::Full => (24, 32),
        Scale::Huge => (288, 32),
    };
    let a = base(0) as i64;
    let x = base(1) as i64;
    let y = base(2) as i64;
    // One row = 4 KB = 64 lines; the inner loop walks it line by line.
    let mut p = Program::new(vec![Stmt::Loop {
        var: "e",
        count: e::c(epochs),
        body: vec![Stmt::Loop {
            var: "r",
            count: e::c(rows),
            body: vec![
                Stmt::Loop {
                    var: "l",
                    count: e::c(64),
                    body: vec![
                        Stmt::Load {
                            pc: 0x1D00,
                            addr: e::v("r")
                                .mul(e::c(4096))
                                .add(e::v("l").mul(e::c(64)))
                                .add(e::c(a)),
                        },
                        Stmt::Load {
                            pc: 0x1D04,
                            addr: e::v("l").mul(e::c(64)).add(e::c(x)),
                        },
                        Stmt::Alu {
                            pc: 0x1D08,
                            count: 2,
                        },
                    ],
                },
                Stmt::Store {
                    pc: 0x1D0C,
                    addr: e::v("r").mul(e::c(8)).add(e::c(y)),
                },
            ],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("mvx program is closed")
}

/// `mxm-linpack`: small matrix-matrix multiply on 192x192 floats —
/// everything stays L2-resident.
pub(crate) fn mxm(scale: Scale, tb: &mut TraceBuilder) {
    let (ni, nj) = match scale {
        Scale::Tiny => (2, 8),
        Scale::Small => (14, 24),
        Scale::Full => (40, 96),
        Scale::Huge => (480, 96),
    };
    let a = base(0) as i64;
    let b = base(1) as i64;
    let c = base(2) as i64;
    let mut p = Program::new(vec![Stmt::Loop {
        var: "i",
        count: e::c(ni),
        body: vec![Stmt::Loop {
            var: "j",
            count: e::c(nj),
            body: vec![
                Stmt::Loop {
                    var: "k",
                    count: e::c(12), // 192 elements = 12 lines
                    body: vec![
                        Stmt::Load {
                            pc: 0x1E00,
                            addr: e::v("i")
                                .mul(e::c(768))
                                .add(e::v("k").mul(e::c(64)))
                                .add(e::c(a)),
                        },
                        Stmt::Load {
                            pc: 0x1E04,
                            addr: e::v("k")
                                .mul(e::c(768 * 16))
                                .add(e::v("j").mul(e::c(4)))
                                .add(e::c(b)),
                        },
                        Stmt::Alu {
                            pc: 0x1E08,
                            count: 3,
                        },
                    ],
                },
                Stmt::Store {
                    pc: 0x1E0C,
                    addr: e::v("i")
                        .mul(e::c(768))
                        .add(e::v("j").mul(e::c(4)))
                        .add(e::c(c)),
                },
            ],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("mxm program is closed")
}

#[cfg(test)]
mod tests {
    use super::super::helpers::collect;
    use super::*;

    #[test]
    fn md_stays_local() {
        let t = collect(md, Scale::Tiny);
        let max = t
            .iter()
            .filter_map(|e| e.mem())
            .map(|m| m.addr.0)
            .max()
            .unwrap();
        assert!(max - base(0) < 512 * 1024);
        assert!(t.stats().block_ws_within(16) > 0.99);
    }

    #[test]
    fn mvx_rows_are_unit_stride() {
        use cbws_core::analysis::{collect_block_histories, DifferentialSkew};
        let t = collect(mvx, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert!(skew.coverage_at(0.2) > 0.8);
    }

    #[test]
    fn mxm_fits_in_l2() {
        let t = collect(mxm, Scale::Tiny);
        for m in t.iter().filter_map(|e| e.mem()) {
            let arr = (m.addr.0 - base(0)) / (64 << 20);
            let off = m.addr.0 - base(arr);
            assert!(
                off < 192 * 192 * 16 * 4,
                "offset {off} out of matrix bounds"
            );
        }
    }
}
