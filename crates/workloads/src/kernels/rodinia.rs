//! Rodinia kernels: `nw` (memory-intensive) and `bfs`, `backprop`,
//! `srad_v1` (low-MPKI).

use super::helpers::{base, rng};
use crate::dsl::{e, Program, Stmt};
use crate::Scale;
use cbws_trace::{Addr, BlockId, Pc, TraceBuilder};
use rand::Rng;

/// `nw` (Needleman-Wunsch): *anti-diagonal wavefront* dynamic programming,
/// as Rodinia parallelizes it. The innermost loop walks one diagonal —
/// consecutive cells are `(i+1, j-1)` apart, a constant ~1 KB stride — so
/// each iteration's four-stream working set (three DP neighbours + the
/// reference matrix) shifts by a constant large differential: CBWS's best
/// case, and hostile to 2 KB-region SMS tracking. The paper finds CBWS
/// best on `nw` across every metric.
pub(crate) fn nw(scale: Scale, tb: &mut TraceBuilder) {
    let (diags, dlen) = match scale {
        Scale::Tiny => (4, 48),
        Scale::Small => (24, 420),
        Scale::Full => (110, 850),
        Scale::Huge => (1320, 850),
    };
    const COLS: i64 = 1024;
    let m = base(0) as i64;
    let reff = base(1) as i64;
    // Cell (i, j) on diagonal d at position t: i = t + 1, j = d - t + dlen.
    // (offset so indices stay positive).
    let at = |di: i64, dj: i64, arr: i64| {
        // addr = ((t + 1 + di) * COLS + (d - t + dlen + dj)) * 4 + arr
        e::v("t")
            .add(e::c(1 + di))
            .mul(e::c(COLS))
            .add(
                e::v("d")
                    .add(e::c(dlen))
                    .add(e::v("t").mul(e::c(-1)))
                    .add(e::c(dj)),
            )
            .mul(e::c(4))
            .add(e::c(arr))
    };
    let mut p = Program::new(vec![Stmt::Loop {
        var: "d",
        count: e::c(diags),
        body: vec![Stmt::Loop {
            var: "t",
            count: e::c(dlen),
            body: vec![
                Stmt::Load {
                    pc: 0x1800,
                    addr: at(-1, -1, m),
                },
                Stmt::Load {
                    pc: 0x1804,
                    addr: at(-1, 0, m),
                },
                Stmt::Load {
                    pc: 0x1808,
                    addr: at(0, -1, m),
                },
                Stmt::Load {
                    pc: 0x180c,
                    addr: at(0, 0, reff),
                },
                Stmt::Alu {
                    pc: 0x1810,
                    count: 4,
                },
                Stmt::Store {
                    pc: 0x1814,
                    addr: at(0, 0, m),
                },
            ],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("nw program is closed")
}

/// `bfs-1m`: level-synchronous breadth-first search — a unit-stride
/// frontier queue, a dependent adjacency fetch, and visited-flag probes
/// scattered over a ~1.5 MB bitmap.
pub(crate) fn bfs(scale: Scale, b: &mut TraceBuilder) {
    let frontier = scale.pick(55, 1300, 26000);
    let queue = base(0);
    let adj = base(1);
    let visited = base(2);
    let mut r = rng(0x6266_0001);

    b.annotated_loop(BlockId(0), frontier, |b, i| {
        // The frontier queue is recycled memory (wraps at 32 KB), and the
        // graph metadata stays hot: bfs-1m sits in the paper's low-MPKI
        // group.
        b.load(Pc(0x1900), Addr(queue + (i % 8192) * 4));
        let node = r.gen_range(0..1024u64);
        b.load_dep(Pc(0x1904), Addr(adj + node * 16));
        for n in 0..4u64 {
            let neigh = r.gen_range(0..65536u64);
            b.load_dep(Pc(0x1908 + n * 4), Addr(visited + neigh));
            let fresh = r.gen_bool(0.3);
            b.branch(Pc(0x1918), fresh);
            if fresh {
                b.store(Pc(0x191c), Addr(visited + neigh));
            }
        }
        b.alu(Pc(0x1920), 3);
    });
}

/// `backprop`: feed-forward weight sweeps — a 128 KB weight matrix swept
/// repeatedly against resident activations; after the first epoch the
/// weights are L2-hot.
pub(crate) fn backprop(scale: Scale, tb: &mut TraceBuilder) {
    let (epochs, per_epoch) = match scale {
        Scale::Tiny => (2, 64),
        Scale::Small => (3, 1000),
        Scale::Full => (8, 8192),
        Scale::Huge => (96, 8192),
    };
    let weights = base(0) as i64;
    let input = base(1) as i64;
    let mut p = Program::new(vec![Stmt::Loop {
        var: "e",
        count: e::c(epochs),
        body: vec![Stmt::Loop {
            var: "w",
            count: e::c(per_epoch as i64),
            body: vec![
                Stmt::Load {
                    pc: 0x1A00,
                    addr: e::v("w").mul(e::c(16)).add(e::c(weights)),
                },
                Stmt::Load {
                    pc: 0x1A04,
                    addr: Expr4(e::v("w")).rem256().mul(e::c(4)).add(e::c(input)),
                },
                Stmt::Alu {
                    pc: 0x1A08,
                    count: 2,
                },
            ],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("backprop program is closed")
}

/// Tiny helper for a readable `w % 256` in the backprop kernel.
struct Expr4(crate::dsl::Expr);
impl Expr4 {
    fn rem256(self) -> crate::dsl::Expr {
        crate::dsl::Expr::Rem(Box::new(self.0), Box::new(e::c(256)))
    }
}

/// `srad-v1`: speckle-reducing anisotropic diffusion — repeated 4-neighbour
/// stencil sweeps over a ~144 KB f32 image (hot after the first sweep).
pub(crate) fn srad_v1(scale: Scale, tb: &mut TraceBuilder) {
    let (sweeps, rows, cols) = match scale {
        Scale::Tiny => (1, 2, 64),
        Scale::Small => (2, 16, 190),
        Scale::Full => (4, 94, 190),
        Scale::Huge => (48, 94, 190),
    };
    let img = base(0) as i64;
    let out = base(1) as i64;
    let at = |r: crate::dsl::Expr, c: crate::dsl::Expr, arr: i64| {
        r.mul(e::c(192)).add(c).mul(e::c(4)).add(e::c(arr))
    };
    let rr = || e::v("r").add(e::c(1));
    let cc = || e::v("c").add(e::c(1));
    let mut p = Program::new(vec![Stmt::Loop {
        var: "s",
        count: e::c(sweeps),
        body: vec![Stmt::Loop {
            var: "r",
            count: e::c(rows),
            body: vec![Stmt::Loop {
                var: "c",
                count: e::c(cols),
                body: vec![
                    Stmt::Load {
                        pc: 0x1B00,
                        addr: at(rr(), cc(), img),
                    },
                    Stmt::Load {
                        pc: 0x1B04,
                        addr: at(rr().add(e::c(1)), cc(), img),
                    },
                    Stmt::Load {
                        pc: 0x1B08,
                        addr: at(rr().add(e::c(-1)), cc(), img),
                    },
                    Stmt::Load {
                        pc: 0x1B0C,
                        addr: at(rr(), cc().add(e::c(1)), img),
                    },
                    Stmt::Alu {
                        pc: 0x1B10,
                        count: 5,
                    },
                    Stmt::Store {
                        pc: 0x1B14,
                        addr: at(rr(), cc(), out),
                    },
                ],
            }],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("srad program is closed")
}

#[cfg(test)]
mod tests {
    use super::super::helpers::collect;
    use super::*;
    use cbws_core::analysis::{collect_block_histories, DifferentialSkew};

    #[test]
    fn nw_differentials_dominated_by_lockstep_vector() {
        let t = collect(nw, Scale::Small);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        // A tiny alphabet dominated by the lock-step vectors.
        assert!(
            skew.distinct() < 10,
            "alphabet too large: {}",
            skew.distinct()
        );
        assert!(
            skew.coverage_at(0.75) > 0.99,
            "nw must be highly predictable"
        );
    }

    #[test]
    fn bfs_probes_are_dependent_and_scattered() {
        let t = collect(bfs, Scale::Tiny);
        let deps = t
            .iter()
            .filter_map(|e| e.mem())
            .filter(|m| m.dep == cbws_trace::Dependence::PrevLoad)
            .count();
        assert!(deps > 0);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert!(skew.coverage_at(0.05) < 0.6);
    }

    #[test]
    fn backprop_second_epoch_repeats_addresses() {
        let t = collect(backprop, Scale::Tiny);
        let addrs: Vec<u64> = t.iter().filter_map(|e| e.mem()).map(|m| m.addr.0).collect();
        let half = addrs.len() / 2;
        assert_eq!(
            &addrs[..half],
            &addrs[half..],
            "epochs must replay the same sweep"
        );
    }

    #[test]
    fn srad_is_resident_stencil() {
        let t = collect(srad_v1, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert!(skew.coverage_at(0.2) > 0.8);
    }
}
