//! The 30 benchmark kernels, grouped by suite of origin.
//!
//! Each kernel function takes a [`crate::Scale`] and returns an annotated
//! [`cbws_trace::Trace`]. Regular, affine kernels are written in the
//! [`crate::dsl`] loop-nest IR and annotated by the compiler pass; kernels
//! whose addressing is driven by runtime data (pointer chasing, histograms,
//! queues) are written directly against
//! [`cbws_trace::TraceBuilder::annotated_loop`], modelling pre-annotated
//! sources.

pub(crate) mod helpers;
pub(crate) mod linpack;
pub(crate) mod parboil;
pub(crate) mod parsec;
pub(crate) mod rodinia;
pub(crate) mod spec;
pub(crate) mod splash;
