//! The 30 benchmark kernels, grouped by suite of origin.
//!
//! Each kernel function is an *emitter*: it takes a [`crate::Scale`] and a
//! [`cbws_trace::TraceBuilder`] and writes annotated events into it. The
//! builder may be a plain in-memory one (`WorkloadSpec::generate`) or a
//! streaming sink that flushes fixed-size chunks to the framed trace store
//! as they complete — which is how `Scale::Huge` traces are generated
//! without the kernel ever holding its full event stream. Regular, affine
//! kernels are written in the [`crate::dsl`] loop-nest IR and annotated by
//! the compiler pass; kernels whose addressing is driven by runtime data
//! (pointer chasing, histograms, queues) are written directly against
//! [`cbws_trace::TraceBuilder::annotated_loop`], modelling pre-annotated
//! sources.

pub(crate) mod helpers;
pub(crate) mod linpack;
pub(crate) mod parboil;
pub(crate) mod parsec;
pub(crate) mod rodinia;
pub(crate) mod spec;
pub(crate) mod splash;
