//! PARSEC kernels: `streamcluster` (memory-intensive) and `canneal`,
//! `freqmine` (low-MPKI).

use super::helpers::{base, rng};
use crate::Scale;
use cbws_trace::{Addr, BlockId, Pc, TraceBuilder};
use rand::Rng;

/// `streamcluster-simlarge`: vectorized point-to-centre distance loops.
/// Within one pair the inner loop walks both 512-byte points at unit line
/// stride, but pairs arrive in (clustering-driven) arbitrary order, so
/// block-boundary differentials are drawn from a huge alphabet — the second
/// §VII-A case where the 16-entry history table cannot hold a meaningful
/// history and standalone CBWS loses to SMS.
pub(crate) fn streamcluster(scale: Scale, b: &mut TraceBuilder) {
    let pairs = scale.pick(20, 450, 13500);
    let points = base(0);
    let centers = base(1);
    let mut r = rng(0x7363_0001);

    for _ in 0..pairs {
        let p = r.gen_range(0..8192u64);
        let c = r.gen_range(0..64u64);
        // 128-dim f32 point = 512 bytes = 8 lines.
        b.annotated_loop(BlockId(0), 8, |b, l| {
            b.load(Pc(0x1500), Addr(points + p * 512 + l * 64));
            b.load(Pc(0x1504), Addr(centers + c * 512 + l * 64));
            b.alu(Pc(0x1508), 3);
        });
        // Assignment/cost bookkeeping between pairs (streamcluster spends a
        // sizeable share of its runtime outside the distance loop, Fig. 1).
        b.load(Pc(0x150c), Addr(centers + c * 512 + 448));
        b.alu(Pc(0x1510), 22);
        b.branch(Pc(0x1514), r.gen_bool(0.4));
    }
}

/// `canneal-simlarge`: simulated-annealing element swaps — two random
/// touches of a hot netlist per move, with a rejection branch.
pub(crate) fn canneal(scale: Scale, b: &mut TraceBuilder) {
    let moves = scale.pick(70, 1700, 38000);
    let netlist = base(0);
    let mut r = rng(0x636E_0001);

    b.annotated_loop(BlockId(0), moves, |b, _| {
        // ~96 KB hot netlist: random but cache-resident, hence low-MPKI.
        let x = r.gen_range(0..1536u64);
        let y = r.gen_range(0..1536u64);
        b.load(Pc(0x1600), Addr(netlist + x * 64));
        b.load(Pc(0x1604), Addr(netlist + y * 64));
        b.alu(Pc(0x1608), 6);
        let accept = r.gen_bool(0.5);
        b.branch(Pc(0x160c), accept);
        if accept {
            b.store(Pc(0x1610), Addr(netlist + x * 64));
            b.store(Pc(0x1614), Addr(netlist + y * 64));
        }
    });
}

/// `freqmine-simlarge`: FP-growth tree walks — short parent-pointer chains
/// through a hot tree followed by a support-counter update.
pub(crate) fn freqmine(scale: Scale, b: &mut TraceBuilder) {
    let walks = scale.pick(55, 1300, 28000);
    let tree = base(0);
    let mut r = rng(0x6672_0001);

    b.annotated_loop(BlockId(0), walks, |b, _| {
        // 64 KB hot tree (upper levels are touched constantly).
        let mut node = r.gen_range(0..1024u64);
        b.load(Pc(0x1700), Addr(tree + node * 64));
        for d in 0..4u64 {
            node = (node / 3).max(1);
            b.load_dep(Pc(0x1704 + d * 4), Addr(tree + node * 64));
            b.alu(Pc(0x1714), 2);
        }
        b.store(Pc(0x1718), Addr(tree + node * 64));
    });
}

#[cfg(test)]
mod tests {
    use super::super::helpers::collect;
    use super::*;
    use cbws_core::analysis::{collect_block_histories, DifferentialSkew};

    #[test]
    fn streamcluster_junctions_inflate_alphabet() {
        let t = collect(streamcluster, Scale::Small);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert!(
            skew.distinct() > 50,
            "pair order must scatter: {}",
            skew.distinct()
        );
        // ...yet within-pair unit strides keep a skewed head.
        assert!(skew.coverage_at(0.05) > 0.4);
    }

    #[test]
    fn canneal_is_random_but_resident() {
        let t = collect(canneal, Scale::Tiny);
        let max = t
            .iter()
            .filter_map(|e| e.mem())
            .map(|m| m.addr.0)
            .max()
            .unwrap();
        assert!(max - base(0) < 2 * 1024 * 1024);
        let s = t.stats();
        assert!(s.branches >= s.dynamic_blocks);
    }

    #[test]
    fn freqmine_chains_are_dependent() {
        let t = collect(freqmine, Scale::Tiny);
        let deps = t
            .iter()
            .filter_map(|e| e.mem())
            .filter(|m| m.dep == cbws_trace::Dependence::PrevLoad)
            .count();
        assert!(deps as u64 >= 4 * t.stats().dynamic_blocks);
    }
}
