//! Parboil kernels: `stencil`, `sgemm`, `mri-q`, `histo`, `lbm`
//! (memory-intensive) and `sad`, `spmv` (low-MPKI).

use super::helpers::{base, rng};
use crate::dsl::{e, Program, Stmt};
use crate::Scale;
use cbws_trace::{Addr, BlockId, Pc, TraceBuilder};
use rand::Rng;

/// `stencil-default`: the paper's running example (Fig. 2-4). A 7-point
/// Jacobi stencil over a 128x128xNZ float grid with the `z` index innermost:
/// `IDX(x,y,z) = x + nx*(y + ny*z)`, so every access strides
/// `nx*ny*4 = 64 KB = 1024 lines` per innermost iteration — the constant
/// differential vector of Fig. 4, spanning far more than any SMS region.
pub(crate) fn stencil(scale: Scale, tb: &mut TraceBuilder) {
    let (ni, nj, nz) = match scale {
        Scale::Tiny => (1, 4, 18),
        Scale::Small => (2, 40, 34),
        Scale::Full => (8, 126, 34),
        Scale::Huge => (96, 126, 34),
    };
    let a0 = base(0) as i64;
    let a = base(1) as i64;
    // addr(x,y,z) = base + 4*(x + 128*y + 16384*z)
    let idx = |x: crate::dsl::Expr, y: crate::dsl::Expr, z: crate::dsl::Expr| {
        x.add(y.mul(e::c(128))).add(z.mul(e::c(16384))).mul(e::c(4))
    };
    let x = || e::v("i").add(e::c(1));
    let y = || e::v("j").add(e::c(1));
    let z = || e::v("k").add(e::c(1));

    let mut p = Program::new(vec![Stmt::Loop {
        var: "i",
        count: e::c(ni),
        body: vec![Stmt::Loop {
            var: "j",
            count: e::c(nj),
            body: vec![Stmt::Loop {
                var: "k",
                count: e::c(nz - 2),
                body: vec![
                    Stmt::Load {
                        pc: 0x800,
                        addr: idx(x(), y(), z().add(e::c(1))).add(e::c(a0)),
                    },
                    Stmt::Load {
                        pc: 0x804,
                        addr: idx(x(), y(), z().add(e::c(-1))).add(e::c(a0)),
                    },
                    Stmt::Load {
                        pc: 0x808,
                        addr: idx(x(), y().add(e::c(1)), z()).add(e::c(a0)),
                    },
                    Stmt::Load {
                        pc: 0x80C,
                        addr: idx(x(), y().add(e::c(-1)), z()).add(e::c(a0)),
                    },
                    Stmt::Load {
                        pc: 0x810,
                        addr: idx(x().add(e::c(1)), y(), z()).add(e::c(a0)),
                    },
                    Stmt::Load {
                        pc: 0x814,
                        addr: idx(x().add(e::c(-1)), y(), z()).add(e::c(a0)),
                    },
                    Stmt::Load {
                        pc: 0x818,
                        addr: idx(x(), y(), z()).add(e::c(a0)),
                    },
                    Stmt::Alu {
                        pc: 0x81C,
                        count: 8,
                    },
                    Stmt::Store {
                        pc: 0x820,
                        addr: idx(x(), y(), z()).add(e::c(a)),
                    },
                ],
            }],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("stencil program is closed")
}

/// `sgemm-medium`: triple-loop GEMM on 1024x1024 floats. The innermost `k`
/// iteration streams `A[i][k]` at unit stride and walks `B[k][j]` down a
/// column at a 4 KB (64-line) row stride — two interleaved streams whose
/// CBWS differential alternates between just two vectors.
pub(crate) fn sgemm(scale: Scale, tb: &mut TraceBuilder) {
    let (ni, nj, nk) = match scale {
        Scale::Tiny => (1, 2, 128),
        Scale::Small => (2, 10, 768),
        Scale::Full => (4, 24, 1024),
        Scale::Huge => (48, 24, 1024),
    };
    let a = base(0) as i64;
    let b = base(1) as i64;
    let c = base(2) as i64;
    let mut p = Program::new(vec![Stmt::Loop {
        var: "i",
        count: e::c(ni),
        body: vec![Stmt::Loop {
            var: "j",
            count: e::c(nj),
            body: vec![
                Stmt::Loop {
                    var: "k",
                    count: e::c(nk),
                    body: vec![
                        Stmt::Load {
                            pc: 0x900,
                            addr: e::v("i")
                                .mul(e::c(1024))
                                .add(e::v("k"))
                                .mul(e::c(4))
                                .add(e::c(a)),
                        },
                        Stmt::Load {
                            pc: 0x904,
                            addr: e::v("k")
                                .mul(e::c(1024))
                                .add(e::v("j"))
                                .mul(e::c(4))
                                .add(e::c(b)),
                        },
                        Stmt::Alu {
                            pc: 0x908,
                            count: 3,
                        },
                    ],
                },
                Stmt::Load {
                    pc: 0x90C,
                    addr: e::v("i")
                        .mul(e::c(1024))
                        .add(e::v("j"))
                        .mul(e::c(4))
                        .add(e::c(c)),
                },
                Stmt::Store {
                    pc: 0x910,
                    addr: e::v("i")
                        .mul(e::c(1024))
                        .add(e::v("j"))
                        .mul(e::c(4))
                        .add(e::c(c)),
                },
            ],
        }],
    }]);
    p.annotate();
    p.execute_into(tb).expect("sgemm program is closed")
}

/// `mri-q-large`: the Q-matrix accumulation — five unit-stride sample
/// streams (`kx`, `ky`, `kz`, `phiR`, `phiI`) consumed by a trigonometric
/// FMA tail, repeated per voxel.
pub(crate) fn mri_q(scale: Scale, tb: &mut TraceBuilder) {
    let (voxels, samples) = match scale {
        Scale::Tiny => (2, 72),
        Scale::Small => (3, 2048),
        Scale::Full => (2, 24576),
        Scale::Huge => (24, 24576),
    };
    let streams: Vec<i64> = (0..5).map(|s| base(s) as i64).collect();
    let body: Vec<Stmt> = streams
        .iter()
        .enumerate()
        .map(|(n, &s)| Stmt::Load {
            pc: 0xA00 + n as u64 * 4,
            addr: e::v("k").mul(e::c(4)).add(e::c(s)),
        })
        .chain([Stmt::Alu {
            pc: 0xA20,
            count: 10,
        }])
        .collect();
    let mut p = Program::new(vec![Stmt::Loop {
        var: "v",
        count: e::c(voxels),
        body: vec![
            Stmt::Loop {
                var: "k",
                count: e::c(samples),
                body,
            },
            Stmt::Store {
                pc: 0xA24,
                addr: e::v("v").mul(e::c(8)).add(e::c(base(6) as i64)),
            },
        ],
    }]);
    p.annotate();
    p.execute_into(tb).expect("mri-q program is closed")
}

/// `histo-large`: the paper's Fig. 16 loop verbatim — a unit-stride image
/// scan whose *stores* scatter into a 4 MB histogram indexed by the loaded
/// pixel value. The access pattern is input data, not induction arithmetic,
/// so no differential scheme can capture it.
pub(crate) fn histo(scale: Scale, b: &mut TraceBuilder) {
    let pixels = scale.pick(160, 4200, 108000);
    let img = base(0);
    let hist = base(1);
    let mut r = rng(0x6869_0001);

    b.annotated_loop(BlockId(0), pixels, |b, i| {
        b.load(Pc(0xB00), Addr(img + i * 4));
        let value = r.gen_range(0..1_048_576u64);
        b.alu(Pc(0xB04), 1);
        // `if (histo[value] < UINT8_MAX)` — data-dependent but ~always true.
        b.load_dep(Pc(0xB08), Addr(hist + value * 4));
        let taken = r.gen_bool(0.97);
        b.branch(Pc(0xB0C), taken);
        if taken {
            b.store(Pc(0xB10), Addr(hist + value * 4));
        }
    });
}

/// `lbm-long`: lattice-Boltzmann propagation over 160-byte AoS cells.
/// Free cells stream their distributions to eight neighbour offsets; cells
/// under a (random) obstacle bounce back locally instead — data-dependent
/// control that flips the iteration's store pattern and working-set size,
/// which is what defeats differential prediction here (§VII-C).
pub(crate) fn lbm(scale: Scale, b: &mut TraceBuilder) {
    let cells = scale.pick(70, 1800, 30000);
    let src = base(0);
    let dst = base(1);
    let mut r = rng(0x6C62_0001);
    let nx: i64 = 64;
    // Neighbour offsets in cells (a D3Q8 subset of D3Q19).
    let offs: [i64; 8] = [1, -1, nx, -nx, nx * nx, -nx * nx, nx + 1, -nx - 1];

    b.annotated_loop(BlockId(0), cells, |b, i| {
        let cell = i as i64;
        let cbase = src + i * 160;
        b.load(Pc(0xC00), Addr(cbase));
        b.load(Pc(0xC04), Addr(cbase + 64));
        b.load(Pc(0xC08), Addr(cbase + 128));
        b.alu(Pc(0xC0C), 10);
        let obstacle = r.gen_bool(0.3);
        b.branch(Pc(0xC10), obstacle);
        if obstacle {
            // Bounce-back: rewrite the local cell only.
            b.store(Pc(0xC14), Addr(cbase));
            b.store(Pc(0xC18), Addr(cbase + 64));
        } else {
            for (d, &o) in offs.iter().enumerate() {
                let tgt = (cell + o).max(0) as u64;
                b.store(Pc(0xC20 + d as u64 * 4), Addr(dst + tgt * 160));
            }
        }
    });
    // Boundary-condition sweep outside the propagation loop (~a quarter of
    // lbm's runtime is outside the tight loop in Fig. 1).
    for k in 0..cells / 4 {
        b.load(Pc(0xC60), Addr(src + (k % 512) * 160));
        b.alu(Pc(0xC64), 24);
    }
}

/// `sad-base-large`: H.264 sum-of-absolute-differences block matching. Each
/// macroblock row loads one line of the current frame and one of the
/// (offset) reference frame; both frames stay L2-resident.
pub(crate) fn sad(scale: Scale, b: &mut TraceBuilder) {
    let blocks = scale.pick(32, 760, 7800);
    let cur = base(0);
    let reff = base(1);
    let mut r = rng(0x7361_0001);
    const FRAME_W: u64 = 256; // bytes per pel row in a 256x256 frame

    for _ in 0..blocks {
        // 256x256 frames (64 KB each): resident block matching.
        let mbx = r.gen_range(0..15u64) * 16;
        let mby = r.gen_range(0..15u64) * 16;
        let dx = r.gen_range(0..8u64);
        b.annotated_loop(BlockId(0), 16, |b, row| {
            let y = mby + row;
            b.load(Pc(0xD00), Addr(cur + y * FRAME_W + mbx));
            b.load(Pc(0xD04), Addr(reff + y * FRAME_W + mbx + dx));
            b.alu(Pc(0xD08), 4);
        });
        b.alu(Pc(0xD0C), 3);
    }
}

/// `spmv-large`: CSR sparse matrix-vector product, re-multiplied over
/// several iterations as solvers do: the ~128 KB matrix and the `x` vector
/// are hot after the first pass.
pub(crate) fn spmv(scale: Scale, b: &mut TraceBuilder) {
    let (epochs, rows) = match scale {
        Scale::Tiny => (1, 20),
        Scale::Small => (3, 460),
        Scale::Full => (6, 1365),
        Scale::Huge => (72, 1365),
    };
    let cols = base(0);
    let vals = base(1);
    let xvec = base(2);
    let yvec = base(3);
    let mut r = rng(0x7370_0001);
    let gathers: Vec<u64> = (0..rows * 8).map(|_| r.gen_range(0..8192u64)).collect();

    for _ in 0..epochs {
        let mut p: u64 = 0;
        for row in 0..rows {
            b.annotated_loop(BlockId(0), 8, |b, _| {
                b.load(Pc(0xE00), Addr(cols + p * 4));
                b.load(Pc(0xE04), Addr(vals + p * 8));
                let c = gathers[p as usize];
                p += 1;
                b.load_dep(Pc(0xE08), Addr(xvec + c * 8));
                b.alu(Pc(0xE0C), 2);
            });
            b.store(Pc(0xE10), Addr(yvec + row * 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::helpers::collect;
    use super::*;
    use cbws_core::analysis::{collect_block_histories, DifferentialSkew};

    #[test]
    fn stencil_differentials_match_fig4() {
        let t = collect(stencil, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let bh = h.values().next().unwrap();
        // Steady-state consecutive differentials are all-1024 vectors
        // (column boundaries excepted).
        let diffs = bh.consecutive_differentials();
        let steady = diffs
            .iter()
            .filter(|d| d.strides().iter().all(|&s| s == 1024))
            .count();
        assert!(
            steady * 10 >= diffs.len() * 8,
            "most stencil differentials must be the Fig. 4 vector: {steady}/{}",
            diffs.len()
        );
        // Seven loads plus a store, but the x±1 neighbours share the centre
        // line (the paper notes "some of the memory instructions access the
        // same cache lines"): 6-8 distinct lines.
        assert!((6..=8).contains(&bh.instances[0].len()));
    }

    #[test]
    fn stencil_skew_is_extreme() {
        let t = collect(stencil, Scale::Small);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert!(skew.coverage_at(0.05) > 0.8, "one vector dominates stencil");
    }

    #[test]
    fn sgemm_has_two_dominant_differentials() {
        let t = collect(sgemm, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        // (0,64) and (1,64) dominate.
        assert!(skew.coverage_at(0.4) > 0.9);
    }

    #[test]
    fn histo_differentials_are_unskewed() {
        let t = collect(histo, Scale::Small);
        let h = collect_block_histories(&t, 16);
        let skew = DifferentialSkew::from_histories(h.values());
        // Data-dependent scatter: the top 5% of vectors cover little.
        assert!(
            skew.coverage_at(0.05) < 0.5,
            "histo must not be predictable"
        );
    }

    #[test]
    fn lbm_working_set_size_diverges() {
        let t = collect(lbm, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let sizes: std::collections::BTreeSet<usize> = h
            .values()
            .next()
            .unwrap()
            .instances
            .iter()
            .map(|w| w.len())
            .collect();
        assert!(sizes.len() >= 2, "obstacle divergence must vary the WS");
    }

    #[test]
    fn mri_q_streams_are_unit_stride() {
        let t = collect(mri_q, Scale::Tiny);
        let h = collect_block_histories(&t, 16);
        let diffs = h.values().next().unwrap().consecutive_differentials();
        // Samples advance 4 bytes per iteration: line deltas in {0, 1}.
        let ok = diffs
            .iter()
            .filter(|d| d.strides().iter().all(|&s| s == 0 || s == 1))
            .count();
        assert!(ok * 10 >= diffs.len() * 9);
    }

    #[test]
    fn spmv_and_sad_fit_modest_footprints() {
        for (t, limit_mb) in [
            (collect(spmv, Scale::Tiny), 70),
            (collect(sad, Scale::Tiny), 70),
        ] {
            let max = t
                .iter()
                .filter_map(|e| e.mem())
                .map(|m| m.addr.0)
                .max()
                .unwrap();
            assert!(max < base(0) + limit_mb * (64 << 20));
        }
    }
}
