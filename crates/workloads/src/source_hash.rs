//! Per-workload source hashing for trace-store invalidation.
//!
//! A stored trace must be regenerated exactly when the sources that decide
//! its *contents* change. Version 2 of the store hashed the DSL core plus
//! the workload's whole suite file, so editing one kernel regenerated every
//! trace of that suite. This module refines that to true per-workload
//! granularity: the suite file is split into the **kernel `fn` spans** the
//! suite's workloads name (via `WorkloadSpec::kernel_fn`) and the
//! **residual** (everything else — shared helpers, imports, tests). A
//! workload's hash folds
//!
//! 1. the common sources every trace depends on (`lib.rs`, `dsl.rs`, the
//!    kernel plumbing),
//! 2. the suite file's residual,
//! 3. the workload's own kernel `fn` span, and
//! 4. the workload name.
//!
//! Editing kernel `a`'s body therefore invalidates only the workloads that
//! emit through `a`; editing a shared helper in the same file (residual)
//! still invalidates the whole suite, as it must. Span extraction is a
//! deliberately small lexer ([`kernel_span`]); when it cannot find a
//! workload's `fn`, that workload falls back to hashing the whole suite
//! file — coarser, never wrong, and a unit test pins that every committed
//! kernel is actually found.

use crate::{Suite, WorkloadSpec};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::OnceLock;

/// Sources every workload's trace depends on: the DSL core and the kernel
/// plumbing shared by all suites.
const COMMON_SOURCES: &[(&str, &str)] = &[
    ("lib.rs", include_str!("lib.rs")),
    ("dsl.rs", include_str!("dsl.rs")),
    ("kernels/mod.rs", include_str!("kernels/mod.rs")),
    ("kernels/helpers.rs", include_str!("kernels/helpers.rs")),
];

/// The source file holding `suite`'s kernel definitions.
fn suite_source(suite: Suite) -> (&'static str, &'static str) {
    match suite {
        Suite::Spec2006 => ("kernels/spec.rs", include_str!("kernels/spec.rs")),
        Suite::Parboil => ("kernels/parboil.rs", include_str!("kernels/parboil.rs")),
        Suite::Splash => ("kernels/splash.rs", include_str!("kernels/splash.rs")),
        Suite::Parsec => ("kernels/parsec.rs", include_str!("kernels/parsec.rs")),
        Suite::Rodinia => ("kernels/rodinia.rs", include_str!("kernels/rodinia.rs")),
        Suite::Linpack => ("kernels/linpack.rs", include_str!("kernels/linpack.rs")),
    }
}

/// FNV-1a offset basis — the empty-input hash state.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one named blob into an FNV-1a state. The blob is framed with its
/// name (NUL-separated) so content moving between blobs still changes the
/// hash.
pub(crate) fn fnv_fold(h: u64, name: &str, body: &str) -> u64 {
    fold_bytes(
        fold_bytes(fold_bytes(h, name.as_bytes()), &[0]),
        body.as_bytes(),
    )
}

/// Folds a named source file while *skipping* the byte ranges in `skip`
/// (sorted, non-overlapping). Used to hash a suite file's residual with its
/// kernel spans carved out.
fn fnv_fold_skipping(h: u64, name: &str, src: &str, skip: &[Range<usize>]) -> u64 {
    let mut h = fold_bytes(fold_bytes(h, name.as_bytes()), &[0]);
    let mut pos = 0usize;
    for r in skip {
        let start = r.start.max(pos);
        h = fold_bytes(h, &src.as_bytes()[pos..start]);
        pos = pos.max(r.end);
    }
    fold_bytes(h, &src.as_bytes()[pos..])
}

/// Byte range of `fn <fn_name>(...) { ... }` within `src`, from the `fn`
/// keyword through the matching closing brace of the body.
///
/// This is a deliberately small scanner, not a parser: it skips string and
/// char literals, lifetimes, and `//`/`/* */` comments while counting
/// braces, which is enough for the kernel sources it hashes. Returns `None`
/// when the function is not found or the braces never balance — callers
/// fall back to whole-file hashing, which is coarser but never wrong.
pub fn kernel_span(src: &str, fn_name: &str) -> Option<Range<usize>> {
    let needle = format!("fn {fn_name}(");
    let bytes = src.as_bytes();
    let mut from = 0usize;
    loop {
        let start = from + src[from..].find(&needle)?;
        // `fn` must start a token: reject matches like `xfn name(`.
        let boundary = start == 0 || {
            let c = bytes[start - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if !boundary {
            from = start + 1;
            continue;
        }
        return body_end(src, start).map(|end| start..end);
    }
}

/// Scans forward from `from` (at a `fn` keyword) to one past the `}` that
/// closes the function body, skipping literals and comments.
fn body_end(src: &str, from: usize) -> Option<usize> {
    let b = src.as_bytes();
    let mut i = from;
    let mut depth = 0usize;
    let mut entered = false;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i += 2;
            }
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    i += if b[i] == b'\\' { 2 } else { 1 };
                }
                i += 1;
            }
            b'\'' => {
                // Char literal ('x', '\n') or a lifetime ('a). Lifetimes
                // have no closing quote; skip just the opening one.
                if b.get(i + 1) == Some(&b'\\') {
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            b'{' => {
                depth += 1;
                entered = true;
                i += 1;
            }
            b'}' => {
                depth = depth.checked_sub(1)?;
                i += 1;
                if entered && depth == 0 {
                    return Some(i);
                }
            }
            _ => i += 1,
        }
    }
    None
}

/// Hashes one workload's trace-deciding sources from explicit inputs — the
/// same algorithm [`workload_hash`] applies to the compiled-in sources,
/// exposed so the per-workload invalidation granularity can be unit-tested
/// against synthetic suite files.
///
/// `kernel_fns` names every kernel `fn` defined in `src` (their spans are
/// carved out of the residual); `own_fn` is the one this workload emits
/// through. `common` is the FNV state accumulated over the shared sources
/// (use [`common_state`] for the real ones, or any constant for synthetic
/// tests).
pub fn hash_kernel_sources(
    common: u64,
    file_name: &str,
    src: &str,
    kernel_fns: &[&str],
    own_fn: &str,
    workload_name: &str,
) -> u64 {
    let mut spans: Vec<Range<usize>> = kernel_fns
        .iter()
        .filter_map(|f| kernel_span(src, f))
        .collect();
    spans.sort_by_key(|r| r.start);
    spans.dedup();
    let own = kernel_span(src, own_fn);
    let base = match own {
        Some(ref r) => {
            let residual = fnv_fold_skipping(common, file_name, src, &spans);
            fnv_fold(residual, "kernel_fn", &src[r.clone()])
        }
        // Span not found: fall back to the whole file, as version 2 did.
        None => fnv_fold(common, file_name, src),
    };
    fnv_fold(base, "workload", workload_name)
}

/// FNV state over the common sources every workload depends on.
pub fn common_state() -> u64 {
    static STATE: OnceLock<u64> = OnceLock::new();
    *STATE.get_or_init(|| {
        let mut h = FNV_BASIS;
        for (name, body) in COMMON_SOURCES {
            h = fnv_fold(h, name, body);
        }
        h
    })
}

/// Per-suite precomputed hash states: the residual state (common + suite
/// file minus kernel spans), the whole-file fallback state, and one state
/// per found kernel `fn`.
struct SuiteState {
    whole: u64,
    fns: BTreeMap<&'static str, u64>,
}

fn suite_state(suite: Suite) -> &'static SuiteState {
    const SUITES: [Suite; 6] = [
        Suite::Spec2006,
        Suite::Parboil,
        Suite::Splash,
        Suite::Parsec,
        Suite::Rodinia,
        Suite::Linpack,
    ];
    static STATES: OnceLock<[SuiteState; 6]> = OnceLock::new();
    let states = STATES.get_or_init(|| {
        let common = common_state();
        SUITES.map(|s| {
            let (file_name, src) = suite_source(s);
            let mut found: BTreeMap<&'static str, Range<usize>> = BTreeMap::new();
            for w in crate::ALL.iter().filter(|w| w.suite == s) {
                let f = w.kernel_fn();
                if let Some(r) = kernel_span(src, f) {
                    found.insert(f, r);
                }
            }
            let mut spans: Vec<Range<usize>> = found.values().cloned().collect();
            spans.sort_by_key(|r| r.start);
            let residual = fnv_fold_skipping(common, file_name, src, &spans);
            SuiteState {
                whole: fnv_fold(common, file_name, src),
                fns: found
                    .into_iter()
                    .map(|(f, r)| (f, fnv_fold(residual, "kernel_fn", &src[r])))
                    .collect(),
            }
        })
    });
    let idx = SUITES
        .iter()
        .position(|&s| s == suite)
        .expect("every suite is enumerated");
    &states[idx]
}

/// Hash of the sources `workload`'s trace depends on, embedded at compile
/// time: the shared DSL core, the residual of the workload's suite source
/// file, the workload's own kernel `fn` span, and the workload name. Stored
/// traces carry this hash and are invalidated when it changes — so editing
/// one kernel's body regenerates only the workloads emitting through it,
/// while the rest of the suite (and every other suite) keeps hitting. The
/// per-suite states are folded once per process and cached.
pub fn workload_hash(workload: &WorkloadSpec) -> u64 {
    let state = suite_state(workload.suite);
    let base = state
        .fns
        .get(workload.kernel_fn())
        .copied()
        .unwrap_or(state.whole);
    fnv_fold(base, "workload", workload.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    const SYNTH_A: &str = r#"
//! Synthetic suite file.
use crate::helpers;

const SHARED: u64 = 7;

/// Kernel a.
pub(crate) fn alpha(scale: Scale, b: &mut TraceBuilder) {
    let s = "a string with braces { } and a quote \" inside";
    let c = '{';
    for _ in 0..SHARED { touch(s, c); }
}

pub(crate) fn beta(scale: Scale, b: &mut TraceBuilder) {
    // a comment with a brace }
    helpers::go(1);
}
"#;

    #[test]
    fn kernel_span_survives_literals_and_comments() {
        let a = kernel_span(SYNTH_A, "alpha").expect("alpha found");
        let b = kernel_span(SYNTH_A, "beta").expect("beta found");
        assert!(SYNTH_A[a.clone()].starts_with("fn alpha("));
        assert!(SYNTH_A[a.clone()].ends_with('}'));
        assert!(SYNTH_A[b.clone()].starts_with("fn beta("));
        assert!(a.end <= b.start, "spans must not overlap");
        assert!(kernel_span(SYNTH_A, "gamma").is_none());
    }

    #[test]
    fn editing_one_kernel_changes_only_its_workloads() {
        let fns = ["alpha", "beta"];
        let h = |src: &str, own: &str| hash_kernel_sources(1, "synth.rs", src, &fns, own, "w");
        let edited_alpha = SYNTH_A.replace("0..SHARED", "0..SHARED + 1");
        assert_ne!(h(SYNTH_A, "alpha"), h(&edited_alpha, "alpha"));
        assert_eq!(h(SYNTH_A, "beta"), h(&edited_alpha, "beta"));
        // Editing shared (residual) text invalidates every workload.
        let edited_shared = SYNTH_A.replace("SHARED: u64 = 7", "SHARED: u64 = 8");
        assert_ne!(h(SYNTH_A, "alpha"), h(&edited_shared, "alpha"));
        assert_ne!(h(SYNTH_A, "beta"), h(&edited_shared, "beta"));
    }

    #[test]
    fn unknown_fn_falls_back_to_whole_file() {
        let fns = ["alpha", "beta"];
        let before = hash_kernel_sources(1, "s.rs", SYNTH_A, &fns, "missing", "w");
        let edited = SYNTH_A.replace("0..SHARED", "0..SHARED + 1");
        let after = hash_kernel_sources(1, "s.rs", &edited, &fns, "missing", "w");
        // Whole-file fallback: any edit anywhere invalidates.
        assert_ne!(before, after);
    }

    #[test]
    fn every_committed_kernel_fn_is_found() {
        for w in crate::ALL {
            let (_, src) = suite_source(w.suite);
            assert!(
                kernel_span(src, w.kernel_fn()).is_some(),
                "kernel fn `{}` of workload `{}` not found by the span scanner",
                w.kernel_fn(),
                w.name
            );
        }
    }

    #[test]
    fn workload_hash_matches_from_scratch_computation() {
        let w = by_name("stencil-default").unwrap();
        let (file_name, src) = suite_source(w.suite);
        let fns: Vec<&str> = crate::ALL
            .iter()
            .filter(|x| x.suite == w.suite)
            .map(|x| x.kernel_fn())
            .collect();
        let scratch =
            hash_kernel_sources(common_state(), file_name, src, &fns, w.kernel_fn(), w.name);
        assert_eq!(workload_hash(w), scratch);
    }

    #[test]
    fn workload_hash_is_stable_and_distinct() {
        let a = by_name("stencil-default").unwrap();
        let b = by_name("nw").unwrap();
        let c = by_name("histo-large").unwrap();
        assert_eq!(workload_hash(a), workload_hash(a));
        assert_ne!(workload_hash(a), 0);
        // Different suites hash apart, and so do different workloads of the
        // same suite (the name is folded in).
        assert_ne!(workload_hash(a), workload_hash(b));
        assert_eq!(a.suite, c.suite);
        assert_ne!(workload_hash(a), workload_hash(c));
    }

    #[test]
    fn same_suite_workloads_share_residual_but_not_hash() {
        // Two workloads of one suite with different kernels: hashes differ.
        let a = by_name("histo-default").unwrap_or_else(|| by_name("stencil-default").unwrap());
        let peers: Vec<_> = crate::ALL
            .iter()
            .filter(|w| w.suite == a.suite && w.name != a.name)
            .collect();
        for p in peers {
            assert_ne!(workload_hash(a), workload_hash(p));
        }
    }
}
