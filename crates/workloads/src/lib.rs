#![warn(missing_docs)]

//! Synthetic benchmark kernels reproducing the memory behaviour of the 30
//! workloads evaluated by the CBWS paper (SPEC CPU2006, PARSEC, SPLASH,
//! Rodinia, Parboil; Table IV and Fig. 14).
//!
//! We do not ship the benchmark binaries or their inputs. Instead, each
//! kernel re-implements the *access-pattern class* of the benchmark's
//! dominant inner loops — the property the paper's per-benchmark results
//! hinge on (see DESIGN.md §2 for the substitution argument):
//!
//! * affine multi-stream loops (stencil, sgemm, milc, mri-q, nw, lu_ncb) →
//!   CBWS differentials are constant and prediction succeeds;
//! * data-dependent indexing (histo, mcf, soplex, lbm) → differentials are
//!   unpredictable and CBWS must stay silent / fall back;
//! * per-iteration working sets larger than 16 lines (bzip2) → the CBWS
//!   vector overflows;
//! * large differential alphabets (fft, streamcluster) → the 16-entry
//!   history table thrashes.
//!
//! Kernels are deterministic (fixed RNG seeds) and are generated at three
//! [`Scale`]s so tests, benches, and the full experiments can share them.
//!
//! # Example
//!
//! ```
//! use cbws_workloads::{by_name, Scale};
//!
//! let spec = by_name("stencil-default").expect("registered");
//! let trace = spec.generate(Scale::Tiny);
//! assert!(trace.stats().dynamic_blocks > 0);
//! ```

pub mod dsl;
mod kernels;
pub mod source_hash;
pub mod trace_cache;
pub mod trace_store;

use cbws_trace::{Trace, TraceBuilder};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Trace size knob shared by every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// A few thousand instructions — unit tests.
    Tiny,
    /// Around 10⁵ instructions — benches and integration tests.
    Small,
    /// Around 10⁶ instructions — the paper-reproduction experiments
    /// (a scaled-down stand-in for the paper's 10⁹-instruction windows).
    Full,
    /// Roughly 12× [`Scale::Full`] (~10⁷ instructions) — streaming-replay
    /// territory. Traces at this scale are generated frame by frame
    /// through [`WorkloadSpec::emit`] and replayed from disk; nothing
    /// should ever materialize one as a full in-memory `Trace`.
    Huge,
}

impl Scale {
    /// Picks the per-scale value of a size parameter. `Huge` derives from
    /// the `Full` value so every pick-style kernel scales up uniformly.
    pub(crate) fn pick(self, tiny: u64, small: u64, full: u64) -> u64 {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Full => full,
            Scale::Huge => full.saturating_mul(12),
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Tiny => f.write_str("tiny"),
            Scale::Small => f.write_str("small"),
            Scale::Full => f.write_str("full"),
            Scale::Huge => f.write_str("huge"),
        }
    }
}

/// Benchmark suite of origin (for reporting only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// Parboil.
    Parboil,
    /// PARSEC-hosted SPLASH-2.
    Splash,
    /// PARSEC.
    Parsec,
    /// Rodinia.
    Rodinia,
    /// The `*-linpack` micro-suite of Fig. 14.
    Linpack,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Spec2006 => f.write_str("SPEC2006"),
            Suite::Parboil => f.write_str("Parboil"),
            Suite::Splash => f.write_str("SPLASH"),
            Suite::Parsec => f.write_str("PARSEC"),
            Suite::Rodinia => f.write_str("Rodinia"),
            Suite::Linpack => f.write_str("Linpack"),
        }
    }
}

/// The paper's MPKI-based partition of the 30 benchmarks (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Group {
    /// The 15 highest-MPKI benchmarks (Table IV).
    MemoryIntensive,
    /// The 15 low-MPKI benchmarks.
    LowMpki,
}

/// A registered workload kernel.
#[derive(Clone, Copy)]
pub struct WorkloadSpec {
    /// Name, matching the paper's figure labels (e.g. `"429.mcf-ref"`).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// MPKI group.
    pub group: Group,
    /// One-line description of the modelled access pattern.
    pub pattern: &'static str,
    emit: fn(Scale, &mut TraceBuilder),
    kernel_fn: &'static str,
}

impl WorkloadSpec {
    /// Emits the kernel's events at the given scale into `builder`.
    ///
    /// This is the primitive generation interface: the builder may be a
    /// plain in-memory one (then [`generate`](WorkloadSpec::generate) is
    /// the convenience wrapper) or a [`TraceBuilder::streaming`] sink that
    /// flushes fixed-size chunks to disk as they complete, which is how
    /// [`Scale::Huge`] traces are written without ever being resident.
    pub fn emit(&self, scale: Scale, builder: &mut TraceBuilder) {
        (self.emit)(scale, builder)
    }

    /// Generates the kernel's trace at the given scale, fully in memory.
    pub fn generate(&self, scale: Scale) -> Trace {
        let mut builder = TraceBuilder::new();
        (self.emit)(scale, &mut builder);
        builder.finish()
    }

    /// The bare name of the kernel function implementing this workload
    /// (e.g. `"bzip2"`), used by the trace store to hash only the kernel
    /// source a workload actually depends on.
    pub fn kernel_fn(&self) -> &'static str {
        self.kernel_fn
            .rsplit(':')
            .next()
            .map_or(self.kernel_fn, str::trim)
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("group", &self.group)
            .field("pattern", &self.pattern)
            .finish()
    }
}

macro_rules! spec {
    ($name:literal, $suite:ident, $group:ident, $pattern:literal, $f:path) => {
        WorkloadSpec {
            name: $name,
            suite: Suite::$suite,
            group: Group::$group,
            pattern: $pattern,
            emit: $f,
            kernel_fn: stringify!($f),
        }
    };
}

/// Every registered workload, memory-intensive group first, in the order of
/// the paper's Fig. 14.
pub const ALL: &[WorkloadSpec] = &[
    // --- Memory-intensive group (Table IV) ---
    spec!(
        "401.bzip2-source",
        Spec2006,
        MemoryIntensive,
        "large per-iteration buffer copies (hundreds of lines, overflows the 16-line CBWS)",
        kernels::spec::bzip2
    ),
    spec!(
        "histo-large",
        Parboil,
        MemoryIntensive,
        "data-dependent histogram increments over a multi-MB table (Fig. 16)",
        kernels::parboil::histo
    ),
    spec!(
        "429.mcf-ref",
        Spec2006,
        MemoryIntensive,
        "arc-array streaming with pointer-chased node dereferences",
        kernels::spec::mcf
    ),
    spec!(
        "lbm-long",
        Parboil,
        MemoryIntensive,
        "lattice propagation with obstacle-dependent store divergence",
        kernels::parboil::lbm
    ),
    spec!(
        "mri-q-large",
        Parboil,
        MemoryIntensive,
        "five parallel unit-stride FMA streams over k-space samples",
        kernels::parboil::mri_q
    ),
    spec!(
        "stencil-default",
        Parboil,
        MemoryIntensive,
        "3-D Jacobi: seven 1024-line-strided streams per innermost iteration (Fig. 2-4)",
        kernels::parboil::stencil
    ),
    spec!(
        "fft-simlarge",
        Splash,
        MemoryIntensive,
        "butterfly stages with per-stage stride alphabets plus bit-reversal scatter",
        kernels::splash::fft
    ),
    spec!(
        "nw",
        Rodinia,
        MemoryIntensive,
        "wavefront DP over a 2-D score matrix (three-neighbour reads, one write)",
        kernels::rodinia::nw
    ),
    spec!(
        "462.libquantum-ref",
        Spec2006,
        MemoryIntensive,
        "single long unit-stride gate sweep with data-dependent conditional flips",
        kernels::spec::libquantum
    ),
    spec!(
        "450.soplex-ref",
        Spec2006,
        MemoryIntensive,
        "sparse column updates with branch-divergent iteration bodies",
        kernels::spec::soplex
    ),
    spec!(
        "lu-ncb-simlarge",
        Splash,
        MemoryIntensive,
        "blocked LU over non-contiguous blocks: constant in-block strides, jumpy bases",
        kernels::splash::lu_ncb
    ),
    spec!(
        "radix-simlarge",
        Splash,
        MemoryIntensive,
        "digit histogram + permutation passes over large key arrays",
        kernels::splash::radix
    ),
    spec!(
        "433.milc-su3imp",
        Spec2006,
        MemoryIntensive,
        "SU(3) field loops: three 2-line-strided matrix streams per site",
        kernels::spec::milc
    ),
    spec!(
        "streamcluster-simlarge",
        Parsec,
        MemoryIntensive,
        "vectorized distance loops over randomly-ordered point pairs",
        kernels::parsec::streamcluster
    ),
    spec!(
        "sgemm-medium",
        Parboil,
        MemoryIntensive,
        "triple-loop GEMM: unit-stride A with 64-line-strided B column walks",
        kernels::parboil::sgemm
    ),
    // --- Low-MPKI group (Fig. 14, bottom panel) ---
    spec!(
        "458.sjeng-ref",
        Spec2006,
        LowMpki,
        "random probes of a cache-resident transposition table with noisy branches",
        kernels::spec::sjeng
    ),
    spec!(
        "471.omnetpp-omnetpp",
        Spec2006,
        LowMpki,
        "event-heap sift: short pointer-chased chains in a ~1 MB heap",
        kernels::spec::omnetpp
    ),
    spec!(
        "bfs-1m",
        Rodinia,
        LowMpki,
        "frontier traversal with data-dependent visited-flag probes",
        kernels::rodinia::bfs
    ),
    spec!(
        "canneal-simlarge",
        Parsec,
        LowMpki,
        "random element swaps in a mostly-L2-resident netlist",
        kernels::parsec::canneal
    ),
    spec!(
        "cholesky-tk29",
        Splash,
        LowMpki,
        "supernodal panel updates with medium strides in a resident factor",
        kernels::splash::cholesky
    ),
    spec!(
        "freqmine-simlarge",
        Parsec,
        LowMpki,
        "FP-tree walks: short dependent chains plus counter updates",
        kernels::parsec::freqmine
    ),
    spec!(
        "md-linpack",
        Linpack,
        LowMpki,
        "neighbour-list gathers around each particle (spatially local)",
        kernels::linpack::md
    ),
    spec!(
        "mvx-linpack",
        Linpack,
        LowMpki,
        "matrix-vector product: streaming rows against a resident vector",
        kernels::linpack::mvx
    ),
    spec!(
        "mxm-linpack",
        Linpack,
        LowMpki,
        "small cache-resident matrix multiply",
        kernels::linpack::mxm
    ),
    spec!(
        "ocean-cp-simlarge",
        Splash,
        LowMpki,
        "5-point stencil relaxation on a resident grid",
        kernels::splash::ocean_cp
    ),
    spec!(
        "sad-base-large",
        Parboil,
        LowMpki,
        "16x16 block matching between two resident frames",
        kernels::parboil::sad
    ),
    spec!(
        "spmv-large",
        Parboil,
        LowMpki,
        "CSR SpMV: unit-stride rows with gathered x[col[p]] accesses",
        kernels::parboil::spmv
    ),
    spec!(
        "water-spatial-native",
        Splash,
        LowMpki,
        "cell-list molecular interactions with semi-local gathers",
        kernels::splash::water_spatial
    ),
    spec!(
        "backprop",
        Rodinia,
        LowMpki,
        "layer weight sweeps against resident activations",
        kernels::rodinia::backprop
    ),
    spec!(
        "srad-v1",
        Rodinia,
        LowMpki,
        "4-neighbour image stencil over a ~1 MB image",
        kernels::rodinia::srad_v1
    ),
];

/// The 15 memory-intensive workloads (Table IV), in Fig. 12/14 order.
pub fn mi_suite() -> Vec<&'static WorkloadSpec> {
    ALL.iter()
        .filter(|w| w.group == Group::MemoryIntensive)
        .collect()
}

/// The 15 low-MPKI workloads, in Fig. 14 order.
pub fn low_mpki_suite() -> Vec<&'static WorkloadSpec> {
    ALL.iter().filter(|w| w.group == Group::LowMpki).collect()
}

/// Looks up a workload by its figure label.
pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
    ALL.iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_30_workloads_in_two_groups_of_15() {
        assert_eq!(ALL.len(), 30);
        assert_eq!(mi_suite().len(), 15);
        assert_eq!(low_mpki_suite().len(), 15);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn by_name_finds_table4_entries() {
        for n in [
            "429.mcf-ref",
            "stencil-default",
            "sgemm-medium",
            "nw",
            "radix-simlarge",
        ] {
            assert!(by_name(n).is_some(), "{n} missing");
        }
        assert!(by_name("not-a-benchmark").is_none());
    }

    #[test]
    fn every_workload_generates_annotated_tiny_traces() {
        for w in ALL {
            let t = w.generate(Scale::Tiny);
            let s = t.stats();
            assert!(
                s.instructions > 500,
                "{}: too few instructions ({})",
                w.name,
                s.instructions
            );
            assert!(s.dynamic_blocks > 0, "{}: no annotated blocks", w.name);
            assert!(s.mem_accesses > 0, "{}: no memory accesses", w.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for w in ALL.iter().take(6) {
            let a = w.generate(Scale::Tiny);
            let b = w.generate(Scale::Tiny);
            assert_eq!(a, b, "{} not deterministic", w.name);
        }
    }

    #[test]
    fn scales_are_ordered() {
        for name in ["429.mcf-ref", "stencil-default", "spmv-large"] {
            let w = by_name(name).unwrap();
            let t = w.generate(Scale::Tiny).stats().instructions;
            let s = w.generate(Scale::Small).stats().instructions;
            let f = w.generate(Scale::Full).stats().instructions;
            assert!(
                t < s && s < f,
                "{name}: scales not increasing ({t}, {s}, {f})"
            );
        }
    }

    #[test]
    fn huge_scale_extends_the_ladder() {
        assert_eq!(Scale::Huge.pick(1, 2, 3), 36);
        assert_eq!(Scale::Huge.to_string(), "huge");
        assert_eq!(Scale::Huge.pick(0, 0, u64::MAX), u64::MAX);
    }

    #[test]
    fn kernel_fn_names_are_bare_identifiers() {
        for w in ALL {
            let f = w.kernel_fn();
            assert!(
                !f.is_empty() && f.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{}: kernel_fn {f:?} is not a bare identifier",
                w.name
            );
        }
    }

    #[test]
    fn streamed_emission_matches_in_memory_generation() {
        use cbws_trace::TraceBuilder;
        // The streaming writer path (chunked sink) must observe exactly
        // the event sequence the in-memory path materializes.
        for w in ALL.iter().take(4) {
            let whole = w.generate(Scale::Tiny);
            let streamed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let sink = std::sync::Arc::clone(&streamed);
            let mut tb = TraceBuilder::streaming(
                1000,
                Box::new(move |chunk| sink.lock().unwrap().extend_from_slice(chunk)),
            );
            w.emit(Scale::Tiny, &mut tb);
            let total = tb.try_finish_stream().unwrap();
            assert_eq!(total as usize, whole.len(), "{}", w.name);
            assert_eq!(
                streamed.lock().unwrap().as_slice(),
                whole.events(),
                "{} streamed emission diverged",
                w.name
            );
        }
    }

    #[test]
    fn mi_group_spends_most_instructions_in_blocks() {
        // The trace-level analogue of Fig. 1: tight loops dominate.
        for w in mi_suite() {
            let frac = w
                .generate(Scale::Small)
                .stats()
                .block_instruction_fraction();
            assert!(frac > 0.4, "{}: block fraction too low ({frac:.2})", w.name);
        }
    }
}
