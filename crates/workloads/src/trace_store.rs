//! Persistent on-disk trace store with framed payloads and streamed replay.
//!
//! The in-process [`crate::trace_cache`] amortizes trace generation *within*
//! one binary; every new process still regenerates all 30 kernels from the
//! DSL before it can simulate anything. This module persists each generated
//! trace — as a sequence of independently decodable
//! [`cbws_trace::PackedTrace`] **frames** — to a versioned, checksummed file
//! under `CBWS_TRACE_STORE_DIR` (default: `target/trace-store/` of the
//! workspace), so repeated sweeps, figure regenerations, and CI runs skip
//! DSL generation entirely.
//!
//! Framing is what makes trace memory O(1) in trace length end to end:
//!
//! * **Writing** streams. [`TraceStore::get`] misses feed the kernel's
//!   emitter into a [`cbws_trace::TraceBuilder`] in streaming mode; every
//!   completed chunk of `frame_events` events is packed and flushed to disk
//!   immediately, so generating a `Scale::Huge` trace never holds more than
//!   one frame of events in memory.
//! * **Replaying** can stream too. [`TraceStore::replay_source`] serves
//!   files larger than a caller-chosen byte threshold as a
//!   [`cbws_trace::StreamedTrace`] whose cursor reads frames through a
//!   double-buffered read-ahead thread, instead of mapping the whole file.
//!   Smaller files load zero-copy through a memory map as before.
//!
//! # File format (version 4, little-endian)
//!
//! | section | field | size | contents |
//! |---|---|---|---|
//! | header | magic | 8 | `b"CBWSTRCE"` |
//! | | format version | 4 | `u32`, currently 4 |
//! | | workload hash | 8 | FNV-1a over the sources this workload's trace depends on ([`workload_hash`]) |
//! | | scale | 1 | 0 = tiny, 1 = small, 2 = full, 3 = huge |
//! | | name length | 2 | `u16` |
//! | | name | var | workload name, UTF-8 |
//! | | frame events | 4 | `u32`, events per frame the writer used (informational) |
//! | frames | payloads | var | N concatenated [`PackedTrace::payload`] blobs, each decodable on its own (delta predictors reset per frame) |
//! | footer | per frame | N × 24 | `len: u64`, `events: u64`, FNV-1a checksum of the frame payload |
//! | trailer | total events | 8 | `u64` |
//! | | frame count | 8 | `u64` |
//! | | footer checksum | 8 | FNV-1a of the footer bytes |
//!
//! The fixed-size trailer at EOF locates the footer, so the writer never
//! needs to know the frame count up front and readers find every frame
//! with three bounded reads (header, trailer, footer).
//!
//! # Invalidation and fallback
//!
//! A file is only served when the magic, version, key (workload + scale),
//! workload hash, footer checksum, **and every frame checksum** match.
//! The workload hash has per-workload granularity ([`workload_hash`]):
//! editing one kernel's `fn` body invalidates only the workloads emitting
//! through it — the rest of the store stays warm. Any mismatch —
//! corruption, version skew, hash skew — is counted as
//! `trace_store.invalidate`, reported with a `warn!`, and falls back to
//! regeneration (which rewrites the file); it never panics and never
//! changes simulation results. Streamed opens run a bounded sequential
//! validation pass (one frame resident at a time) before handing out a
//! cursor, so a corrupt frame is caught at open — not mid-replay — and
//! triggers the same regeneration path.
//!
//! # Telemetry
//!
//! `trace_store.hit` / `.miss` / `.write` / `.invalidate` counters, plus
//! `trace_store.load_us` (time to adopt a stored trace) and
//! `trace_store.generate_us` (time to stream-generate on a miss). Each
//! drained streamed cursor reports `trace.stream.replays` / `.frames` /
//! `.bytes` / `.stalls` / `.stall_us` counters and a `trace.stream` span
//! carrying the same numbers as attributes. With a span collector attached
//! ([`TraceStore::set_spans`]), store accesses additionally emit
//! `trace.load` / `trace.validate` / `trace.generate` / `trace.write`
//! spans on the calling thread's timeline lane.

use crate::{Scale, WorkloadSpec};
use cbws_telemetry::{warn, Spans, Telemetry};
use cbws_trace::{
    FrameEntry, FramedTrace, PackedTrace, ReplaySource, StreamObserver, StreamedTrace, Trace,
    TraceBuilder, TraceEvent,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub use crate::source_hash::workload_hash;
pub use cbws_trace::fnv1a;

/// Magic bytes opening every trace-store file.
pub const MAGIC: &[u8; 8] = b"CBWSTRCE";

/// Current file-format version. Version 4 replaced the single monolithic
/// payload (+ per-column checksums) with framed payloads, a frame footer,
/// and a fixed trailer, enabling streamed writes and streamed replay; v3
/// files no longer parse and are regenerated.
pub const FORMAT_VERSION: u32 = 4;

/// Environment variable selecting the store directory.
pub const DIR_ENV: &str = "CBWS_TRACE_STORE_DIR";

/// Environment variable overriding the events-per-frame the writer uses.
pub const FRAME_EVENTS_ENV: &str = "CBWS_TRACE_FRAME_EVENTS";

/// Default events per frame. At the packed format's ~6 bytes/event this
/// keeps frames in the hundreds of kilobytes: big enough to amortize
/// per-frame decode setup, small enough that one in-flight frame plus one
/// being replayed bound streamed memory to a few megabytes.
pub const DEFAULT_FRAME_EVENTS: usize = 65_536;

/// Bytes per footer entry (`len`, `events`, `checksum`).
const FOOTER_ENTRY_LEN: u64 = 24;

/// Bytes in the fixed EOF trailer (`total_events`, `frame_count`,
/// `footer_checksum`).
const TRAILER_LEN: u64 = 24;

fn scale_code(scale: Scale) -> u8 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
        Scale::Huge => 3,
    }
}

/// Read-only memory map of a whole file (unix). Falls back to
/// [`std::fs::read`] when mapping fails or on other platforms.
#[cfg(unix)]
mod mmap {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned read-only mapping; unmapped on drop.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable (PROT_READ, MAP_PRIVATE) for its lifetime.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only; `None` on failure (caller
        /// falls back to reading the file).
        pub fn map(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                None
            } else {
                Some(Mmap { ptr, len })
            }
        }
    }

    impl AsRef<[u8]> for Mmap {
        fn as_ref(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Reads a store file as a shared buffer: memory-mapped where possible,
/// otherwise copied to the heap.
fn read_file_shared(path: &Path) -> std::io::Result<Arc<dyn AsRef<[u8]> + Send + Sync>> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    let len = usize::try_from(len)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
    #[cfg(unix)]
    if let Some(map) = mmap::Mmap::map(&file, len) {
        return Ok(Arc::new(map));
    }
    drop(file);
    Ok(Arc::new(std::fs::read(path)?))
}

/// Why a stored file could not be served.
enum LoadError {
    /// No file yet — a plain miss.
    Missing,
    /// The file exists but is invalid for this binary (corruption, version
    /// skew, workload-hash skew, wrong key). The reason is human-readable.
    Invalid(String),
}

fn invalid<T>(reason: impl Into<String>) -> Result<T, LoadError> {
    Err(LoadError::Invalid(reason.into()))
}

/// Everything the header, footer, and trailer say about a store file,
/// gathered with three bounded reads — no frame data touched.
struct FileMeta {
    /// Absolute byte offset of the first frame.
    header_len: u64,
    /// Frame table with absolute file offsets.
    entries: Vec<FrameEntry>,
    /// Events across all frames.
    total_events: usize,
    /// Whole-file size the metadata was validated against.
    file_len: u64,
}

/// Parses and verifies a store file's header, footer, and trailer against
/// the expected key. Frame payloads are *not* read — callers verify them
/// while adopting the frames ([`load_memory`]) or in the streamed
/// validation pass ([`validate_frames`]).
fn read_meta(
    path: &Path,
    want_hash: u64,
    want_name: &str,
    want_scale: Scale,
) -> Result<FileMeta, LoadError> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LoadError::Missing),
        Err(e) => return invalid(format!("unreadable: {e}")),
    };
    let file_len = match f.metadata() {
        Ok(m) => m.len(),
        Err(e) => return invalid(format!("unreadable: {e}")),
    };
    let mut fixed = [0u8; 23];
    if f.read_exact(&mut fixed).is_err() {
        return invalid("truncated header");
    }
    if &fixed[0..8] != MAGIC {
        return invalid("bad magic");
    }
    let version = u32::from_le_bytes(fixed[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return invalid(format!(
            "format version {version}, this binary writes {FORMAT_VERSION}"
        ));
    }
    let file_hash = u64::from_le_bytes(fixed[12..20].try_into().unwrap());
    if file_hash != want_hash {
        return invalid(format!(
            "workload hash {file_hash:#018x} does not match this binary's {want_hash:#018x} \
             (this workload's sources changed)"
        ));
    }
    let scale = fixed[20];
    let name_len = usize::from(u16::from_le_bytes(fixed[21..23].try_into().unwrap()));
    let mut name = vec![0u8; name_len];
    if f.read_exact(&mut name).is_err() {
        return invalid("truncated header (name)");
    }
    if scale != scale_code(want_scale) || name != want_name.as_bytes() {
        return invalid("file key does not match its path");
    }
    let mut frame_events = [0u8; 4];
    if f.read_exact(&mut frame_events).is_err() {
        return invalid("truncated header (frame events)");
    }
    let header_len = 23 + name_len as u64 + 4;

    // Trailer at EOF locates the footer.
    if file_len < header_len + TRAILER_LEN {
        return invalid("truncated: no room for trailer");
    }
    let mut trailer = [0u8; TRAILER_LEN as usize];
    if f.seek(SeekFrom::End(-(TRAILER_LEN as i64))).is_err() || f.read_exact(&mut trailer).is_err()
    {
        return invalid("unreadable trailer");
    }
    let total_events = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    let frame_count = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    let footer_fnv = u64::from_le_bytes(trailer[16..24].try_into().unwrap());
    let footer_len = match frame_count.checked_mul(FOOTER_ENTRY_LEN) {
        Some(n) if n + TRAILER_LEN <= file_len - header_len => n,
        _ => {
            return invalid(format!(
                "frame count {frame_count} disagrees with file size"
            ))
        }
    };
    let footer_start = file_len - TRAILER_LEN - footer_len;

    let mut footer = vec![0u8; footer_len as usize];
    if f.seek(SeekFrom::Start(footer_start)).is_err() || f.read_exact(&mut footer).is_err() {
        return invalid("unreadable footer");
    }
    if fnv1a(&footer) != footer_fnv {
        return invalid("footer checksum mismatch");
    }
    let mut entries = Vec::with_capacity(frame_count as usize);
    let mut offset = header_len;
    let mut events_sum: u64 = 0;
    for (i, chunk) in footer.chunks_exact(FOOTER_ENTRY_LEN as usize).enumerate() {
        let len = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let events = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
        let checksum = u64::from_le_bytes(chunk[16..24].try_into().unwrap());
        let end = match offset.checked_add(len) {
            Some(e) if e <= footer_start => e,
            _ => return invalid(format!("frame {i} overruns the footer")),
        };
        entries.push(FrameEntry {
            offset,
            len,
            events,
            checksum,
        });
        offset = end;
        events_sum = events_sum.saturating_add(events);
    }
    if offset != footer_start {
        return invalid("frame lengths disagree with file size");
    }
    if events_sum != total_events {
        return invalid("frame event counts disagree with the trailer total");
    }
    let total_events = match usize::try_from(total_events) {
        Ok(n) => n,
        Err(_) => return invalid("event count too large for this platform"),
    };
    Ok(FileMeta {
        header_len,
        entries,
        total_events,
        file_len,
    })
}

/// Fully loads and verifies a store file into memory, returning the framed
/// trace backed by the (usually memory-mapped) file bytes.
fn load_memory(
    path: &Path,
    want_hash: u64,
    want_name: &str,
    want_scale: Scale,
    spans: &Spans,
) -> Result<FramedTrace, LoadError> {
    let meta = read_meta(path, want_hash, want_name, want_scale)?;
    let data = match read_file_shared(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LoadError::Missing),
        Err(e) => return invalid(format!("unreadable: {e}")),
    };
    if (*data).as_ref().len() as u64 != meta.file_len {
        return invalid("file changed while loading");
    }
    let _validate = spans.begin("trace.validate");
    let mut frames = Vec::with_capacity(meta.entries.len());
    for (i, e) in meta.entries.iter().enumerate() {
        let (off, len) = (e.offset as usize, e.len as usize);
        let payload = &(*data).as_ref()[off..off + len];
        let got = fnv1a(payload);
        if got != e.checksum {
            return invalid(format!(
                "frame {i} checksum {got:#018x} != stored {:#018x}",
                e.checksum
            ));
        }
        let packed = match PackedTrace::from_shared_payload(data.clone(), off, len) {
            Ok(p) => p,
            Err(err) => return invalid(format!("frame {i} rejected: {err}")),
        };
        if packed.event_count() as u64 != e.events {
            return invalid(format!("frame {i} event count disagrees with the footer"));
        }
        frames.push(packed);
    }
    let framed = FramedTrace::from_frames(frames);
    debug_assert_eq!(framed.event_count(), meta.total_events);
    Ok(framed)
}

/// The bounded sequential validation pass a streamed open runs before
/// handing out cursors: one frame resident at a time, checksum + full
/// parse + event-count check. `Err` carries a human-readable reason.
fn validate_frames(path: &Path, meta: &FileMeta) -> Result<(), String> {
    let mut f = File::open(path).map_err(|e| format!("unreadable: {e}"))?;
    let len = f.metadata().map_err(|e| format!("unreadable: {e}"))?.len();
    if len != meta.file_len {
        return Err("file changed while validating".into());
    }
    f.seek(SeekFrom::Start(meta.header_len))
        .map_err(|e| format!("unseekable: {e}"))?;
    for (i, e) in meta.entries.iter().enumerate() {
        let mut buf = vec![0u8; e.len as usize];
        f.read_exact(&mut buf)
            .map_err(|err| format!("frame {i} unreadable: {err}"))?;
        let got = fnv1a(&buf);
        if got != e.checksum {
            return Err(format!(
                "frame {i} checksum {got:#018x} != stored {:#018x}",
                e.checksum
            ));
        }
        let packed = PackedTrace::from_payload(buf.into_boxed_slice())
            .map_err(|err| format!("frame {i} rejected: {err}"))?;
        if packed.event_count() as u64 != e.events {
            return Err(format!("frame {i} event count disagrees with the footer"));
        }
    }
    Ok(())
}

/// Packs one chunk of generator output as a standalone frame.
fn pack_frame(chunk: &[TraceEvent]) -> PackedTrace {
    PackedTrace::from_trace(&Trace::from_events(chunk.to_vec()))
}

/// Streaming-write state shared with the builder's chunk sink: frames are
/// packed and flushed as they complete, and only their footer entries are
/// retained in memory.
struct FrameSink {
    file: File,
    entries: Vec<FrameEntry>,
    offset: u64,
    error: Option<std::io::Error>,
}

impl FrameSink {
    fn push_frame(&mut self, chunk: &[TraceEvent]) {
        if self.error.is_some() || chunk.is_empty() {
            return;
        }
        let packed = pack_frame(chunk);
        let payload = packed.payload();
        if let Err(e) = self.file.write_all(payload) {
            self.error = Some(e);
            return;
        }
        self.entries.push(FrameEntry {
            offset: self.offset,
            len: payload.len() as u64,
            events: packed.event_count() as u64,
            checksum: fnv1a(payload),
        });
        self.offset += payload.len() as u64;
    }
}

/// Generates frames in memory through the same streaming chunker the
/// on-disk writer uses — the fallback when the store directory is not
/// writable, so `get` still serves a framed trace without persistence.
fn generate_frames_in_memory(
    workload: &WorkloadSpec,
    scale: Scale,
    frame_events: usize,
) -> FramedTrace {
    let frames: Arc<Mutex<Vec<PackedTrace>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&frames);
    let mut tb = TraceBuilder::streaming(
        frame_events,
        Box::new(move |chunk| {
            if !chunk.is_empty() {
                sink.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(pack_frame(chunk));
            }
        }),
    );
    workload.emit(scale, &mut tb);
    tb.try_finish_stream()
        .expect("kernel emitters produce well-formed traces");
    let frames = Arc::try_unwrap(frames)
        .expect("builder dropped its sink")
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    FramedTrace::from_frames(frames)
}

type Slot = Arc<OnceLock<Arc<FramedTrace>>>;

/// A memoized streamed-open decision: `Some` holds the shared streamed
/// handle, `None` means the in-memory path serves this key.
type StreamDecision = Option<Arc<StreamedTrace>>;

/// A persistent, keyed store of framed packed traces. See the module docs.
///
/// One instance fronts one directory. Within the process it also memoizes
/// loaded traces per `(workload, scale)` (packed traces are ~4× smaller
/// than the `Vec<TraceEvent>` they replace, and memory-mapped files are
/// reclaimable clean pages, so no eviction budget is needed), and memoizes
/// the streamed-or-resident decision [`TraceStore::replay_source`] makes.
pub struct TraceStore {
    dir: PathBuf,
    /// XORed into every [`workload_hash`]; always 0 outside tests, which
    /// use it to simulate a binary built from different sources.
    hash_salt: u64,
    /// Events per frame the writer flushes; from [`FRAME_EVENTS_ENV`] or
    /// [`DEFAULT_FRAME_EVENTS`], overridable per store for tests.
    frame_events: usize,
    telemetry: Arc<Mutex<Telemetry>>,
    spans: Arc<Mutex<Spans>>,
    map: Mutex<HashMap<(&'static str, Scale), Slot>>,
    /// Memoized streamed-open decisions: `Some` holds the shared streamed
    /// handle, `None` records that the file was below the caller's
    /// threshold (or streaming failed) and the in-memory path serves it.
    streamed: Mutex<HashMap<(&'static str, Scale), StreamDecision>>,
    /// Serializes streamed opens so concurrent workers validate or
    /// regenerate a file once, mirroring what the `OnceLock` slots do for
    /// in-memory loads.
    stream_gate: Mutex<()>,
}

impl TraceStore {
    /// A store over `dir` keyed by this binary's per-workload
    /// [`workload_hash`]. Frame size comes from [`FRAME_EVENTS_ENV`] when
    /// set (and positive), else [`DEFAULT_FRAME_EVENTS`].
    pub fn at(dir: impl Into<PathBuf>) -> TraceStore {
        let frame_events = std::env::var(FRAME_EVENTS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_FRAME_EVENTS);
        TraceStore {
            dir: dir.into(),
            hash_salt: 0,
            frame_events,
            telemetry: Arc::new(Mutex::new(Telemetry::disabled())),
            spans: Arc::new(Mutex::new(Spans::disabled())),
            map: Mutex::new(HashMap::new()),
            streamed: Mutex::new(HashMap::new()),
            stream_gate: Mutex::new(()),
        }
    }

    /// Overrides the events-per-frame the writer flushes (must be > 0).
    /// Tests use tiny frames to exercise multi-frame files at `Scale::Tiny`
    /// without env-var races.
    pub fn with_frame_events(mut self, frame_events: usize) -> TraceStore {
        assert!(frame_events > 0, "frame_events must be positive");
        self.frame_events = frame_events;
        self
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Events per frame newly written files will use.
    pub fn frame_events(&self) -> usize {
        self.frame_events
    }

    /// Routes the store's counters (`trace_store.*`, `trace.stream.*`) to
    /// `telemetry`. Streamed cursors created before this call report to the
    /// new sink too — the observer reads the current handle at drop time.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock().unwrap_or_else(|e| e.into_inner()) = telemetry;
    }

    /// Routes the store's `trace.*` spans to `spans` (they appear on the
    /// calling thread's lane, nested inside whatever span is open there).
    pub fn set_spans(&self, spans: Spans) {
        *self.spans.lock().unwrap_or_else(|e| e.into_inner()) = spans;
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn spans(&self) -> Spans {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn path_for(&self, name: &str, scale: Scale) -> PathBuf {
        self.dir.join(format!("{name}-{scale}.cbwstrace"))
    }

    /// The in-memory framed trace for `(workload, scale)`: from process
    /// memory, else from a verified store file, else stream-generated to
    /// disk and adopted. Concurrent callers for one key block on a single
    /// load/generation.
    pub fn get(&self, workload: &'static WorkloadSpec, scale: Scale) -> Arc<FramedTrace> {
        let slot = {
            let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            map.entry((workload.name, scale))
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        slot.get_or_init(|| Arc::new(self.load_or_generate(workload, scale)))
            .clone()
    }

    /// Picks how `(workload, scale)` should be replayed: resident in memory
    /// (small traces, or already loaded) or streamed from disk through a
    /// read-ahead cursor (store files larger than `stream_threshold_bytes`).
    ///
    /// The streamed path never materializes the trace: a missing or invalid
    /// file is stream-regenerated frame by frame, an existing file passes a
    /// bounded validation pass, and the returned
    /// [`cbws_trace::StreamedTrace`] reads one frame at a time during
    /// replay. Either way the replayed events are identical to the
    /// in-memory path. The decision is memoized per key for the life of the
    /// process (first caller's threshold wins).
    pub fn replay_source(
        &self,
        workload: &'static WorkloadSpec,
        scale: Scale,
        stream_threshold_bytes: u64,
    ) -> ReplaySource {
        // Already resident: replaying from memory is free.
        if let Some(t) = self.memoized(workload.name, scale) {
            return ReplaySource::Memory(t);
        }
        if let Some(decision) = self.streamed_decision(workload.name, scale) {
            return self.decided(workload, scale, decision);
        }
        let gate = self.stream_gate.lock().unwrap_or_else(|e| e.into_inner());
        // Double-check: another worker may have decided while we waited.
        if let Some(decision) = self.streamed_decision(workload.name, scale) {
            drop(gate);
            return self.decided(workload, scale, decision);
        }
        let decision = self.open_streamed_or_generate(workload, scale, stream_threshold_bytes);
        self.streamed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((workload.name, scale), decision.clone());
        drop(gate);
        self.decided(workload, scale, decision)
    }

    fn decided(
        &self,
        workload: &'static WorkloadSpec,
        scale: Scale,
        decision: Option<Arc<StreamedTrace>>,
    ) -> ReplaySource {
        match decision {
            Some(s) => ReplaySource::Streamed(s),
            None => ReplaySource::Memory(self.get(workload, scale)),
        }
    }

    fn memoized(&self, name: &'static str, scale: Scale) -> Option<Arc<FramedTrace>> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&(name, scale)).and_then(|s| s.get().cloned())
    }

    fn streamed_decision(
        &self,
        name: &'static str,
        scale: Scale,
    ) -> Option<Option<Arc<StreamedTrace>>> {
        self.streamed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(name, scale))
            .cloned()
    }

    /// Drops the in-process memoization (files stay). Subsequent `get`s
    /// reload from disk — used by benches to measure warm-disk loads and by
    /// tests to simulate a fresh process.
    pub fn drop_memory(&self) {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.streamed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    fn load_or_generate(&self, workload: &'static WorkloadSpec, scale: Scale) -> FramedTrace {
        let telemetry = self.telemetry();
        let spans = self.spans();
        let hash = workload_hash(workload) ^ self.hash_salt;
        let path = self.path_for(workload.name, scale);
        let started = Instant::now();
        let loaded = {
            let load_span = spans.begin("trace.load");
            load_span.attr("workload", workload.name);
            load_memory(&path, hash, workload.name, scale, &spans)
        };
        match loaded {
            Ok(framed) => {
                telemetry.count("trace_store.hit", 1);
                telemetry.count("trace_store.load_us", started.elapsed().as_micros() as u64);
                return framed;
            }
            Err(LoadError::Missing) => {
                telemetry.count("trace_store.miss", 1);
            }
            Err(LoadError::Invalid(reason)) => {
                telemetry.count("trace_store.invalidate", 1);
                warn!(
                    "[trace-store] discarding {}: {reason}; regenerating",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
            }
        }
        match self.generate_file(workload, scale, hash, &path) {
            Ok(_) => {
                let adopted = {
                    let load_span = spans.begin("trace.load");
                    load_span.attr("workload", workload.name);
                    load_memory(&path, hash, workload.name, scale, &spans)
                };
                match adopted {
                    Ok(framed) => framed,
                    Err(_) => {
                        warn!(
                            "[trace-store] just-written {} failed to load back; \
                             serving from memory",
                            path.display()
                        );
                        generate_frames_in_memory(workload, scale, self.frame_events)
                    }
                }
            }
            Err(e) => {
                warn!(
                    "[trace-store] cannot write {}: {e}; continuing without persistence",
                    path.display()
                );
                generate_frames_in_memory(workload, scale, self.frame_events)
            }
        }
    }

    /// Stream-generates `(workload, scale)` straight to its store file:
    /// header first, frames flushed as the kernel emits them, footer +
    /// trailer on completion, then an atomic rename into place. Peak memory
    /// is one frame regardless of trace length.
    fn generate_file(
        &self,
        workload: &'static WorkloadSpec,
        scale: Scale,
        hash: u64,
        path: &Path,
    ) -> std::io::Result<FileMeta> {
        let telemetry = self.telemetry();
        let spans = self.spans();
        std::fs::create_dir_all(&self.dir)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let started = Instant::now();
        let result = (|| -> std::io::Result<FileMeta> {
            let mut header = Vec::with_capacity(32 + workload.name.len());
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&hash.to_le_bytes());
            header.push(scale_code(scale));
            header.extend_from_slice(&(workload.name.len() as u16).to_le_bytes());
            header.extend_from_slice(workload.name.as_bytes());
            header.extend_from_slice(&(self.frame_events as u32).to_le_bytes());
            let header_len = header.len() as u64;

            let mut file = File::create(&tmp)?;
            file.write_all(&header)?;
            let sink = Arc::new(Mutex::new(FrameSink {
                file,
                entries: Vec::new(),
                offset: header_len,
                error: None,
            }));

            let gen_span = spans.begin("trace.generate");
            gen_span.attr("workload", workload.name);
            let chunk_sink = Arc::clone(&sink);
            let mut tb = TraceBuilder::streaming(
                self.frame_events,
                Box::new(move |chunk| {
                    chunk_sink
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push_frame(chunk);
                }),
            );
            workload.emit(scale, &mut tb);
            let total = tb.try_finish_stream().map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("kernel emitted a malformed trace: {e}"),
                )
            })?;
            drop(gen_span);
            telemetry.count(
                "trace_store.generate_us",
                started.elapsed().as_micros() as u64,
            );

            let sink = match Arc::try_unwrap(sink) {
                Ok(s) => s.into_inner().unwrap_or_else(|e| e.into_inner()),
                Err(_) => unreachable!("builder dropped its sink"),
            };
            if let Some(e) = sink.error {
                return Err(e);
            }
            debug_assert_eq!(
                sink.entries.iter().map(|e| e.events).sum::<u64>(),
                total,
                "flushed frames must account for every emitted event"
            );

            let write_span = spans.begin("trace.write");
            let mut tail = Vec::with_capacity(sink.entries.len() * FOOTER_ENTRY_LEN as usize + 24);
            for e in &sink.entries {
                tail.extend_from_slice(&e.len.to_le_bytes());
                tail.extend_from_slice(&e.events.to_le_bytes());
                tail.extend_from_slice(&e.checksum.to_le_bytes());
            }
            let footer_fnv = fnv1a(&tail);
            tail.extend_from_slice(&total.to_le_bytes());
            tail.extend_from_slice(&(sink.entries.len() as u64).to_le_bytes());
            tail.extend_from_slice(&footer_fnv.to_le_bytes());
            let mut file = sink.file;
            file.write_all(&tail)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)?;
            drop(write_span);
            telemetry.count("trace_store.write", 1);

            Ok(FileMeta {
                header_len,
                entries: sink.entries,
                total_events: total as usize,
                file_len: sink.offset + tail.len() as u64,
            })
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// The slow path of [`TraceStore::replay_source`]: ensure a valid store
    /// file exists (stream-generating if needed), then decide by size.
    /// `Some` is a validated streamed handle; `None` means "serve from
    /// memory" (below threshold, or streaming infrastructure failed).
    fn open_streamed_or_generate(
        &self,
        workload: &'static WorkloadSpec,
        scale: Scale,
        stream_threshold_bytes: u64,
    ) -> Option<Arc<StreamedTrace>> {
        let telemetry = self.telemetry();
        let spans = self.spans();
        let hash = workload_hash(workload) ^ self.hash_salt;
        let path = self.path_for(workload.name, scale);
        let started = Instant::now();
        let generate = |why: Option<&str>| -> Option<FileMeta> {
            if let Some(reason) = why {
                telemetry.count("trace_store.invalidate", 1);
                warn!(
                    "[trace-store] discarding {}: {reason}; regenerating",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
            }
            match self.generate_file(workload, scale, hash, &path) {
                Ok(meta) => Some(meta),
                Err(e) => {
                    warn!(
                        "[trace-store] cannot write {}: {e}; replaying from memory",
                        path.display()
                    );
                    None
                }
            }
        };
        let (meta, fresh) = match read_meta(&path, hash, workload.name, scale) {
            Ok(m) => (m, false),
            Err(LoadError::Missing) => {
                telemetry.count("trace_store.miss", 1);
                (generate(None)?, true)
            }
            Err(LoadError::Invalid(reason)) => (generate(Some(&reason))?, true),
        };
        if meta.file_len <= stream_threshold_bytes {
            return None;
        }
        let meta = if fresh {
            // Just written by this process: the footer entries came from
            // the writer itself, no re-read needed.
            meta
        } else {
            let verdict = {
                let vspan = spans.begin("trace.validate");
                vspan.attr("workload", workload.name);
                validate_frames(&path, &meta)
            };
            match verdict {
                Ok(()) => {
                    telemetry.count("trace_store.hit", 1);
                    telemetry.count("trace_store.load_us", started.elapsed().as_micros() as u64);
                    meta
                }
                Err(reason) => {
                    let meta = generate(Some(&reason))?;
                    if meta.file_len <= stream_threshold_bytes {
                        return None;
                    }
                    meta
                }
            }
        };
        Some(Arc::new(
            StreamedTrace::new(path, meta.entries, meta.total_events)
                .with_observer(self.stream_observer(workload.name)),
        ))
    }

    /// The per-cursor-drop reporter wired into streamed traces: forwards
    /// [`cbws_trace::StreamStats`] to the store's *current* telemetry and
    /// span sinks as `trace.stream.*` counters and a `trace.stream` span.
    fn stream_observer(&self, workload: &'static str) -> StreamObserver {
        let telemetry = Arc::clone(&self.telemetry);
        let spans = Arc::clone(&self.spans);
        Arc::new(move |stats| {
            let t = telemetry.lock().unwrap_or_else(|e| e.into_inner()).clone();
            t.count("trace.stream.replays", 1);
            t.count("trace.stream.frames", stats.frames);
            t.count("trace.stream.bytes", stats.bytes);
            t.count("trace.stream.stalls", stats.stalls);
            t.count("trace.stream.stall_us", stats.stall_micros);
            let s = spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
            let span = s.begin("trace.stream");
            span.attr("workload", workload)
                .attr("frames", stats.frames)
                .attr("bytes", stats.bytes)
                .attr("stalls", stats.stalls)
                .attr("stall_us", stats.stall_micros);
        })
    }
}

/// The process-wide store. Directory comes from `CBWS_TRACE_STORE_DIR`;
/// unset falls back to the workspace's `target/trace-store/`.
pub fn shared() -> &'static TraceStore {
    static SHARED: OnceLock<TraceStore> = OnceLock::new();
    SHARED.get_or_init(|| {
        let dir = std::env::var_os(DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/trace-store")
            });
        TraceStore::at(dir)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;
    use cbws_trace::{EventCursor, EventRef, EventSource};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique per-test scratch directory (no tempfile dependency).
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cbws-trace-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn counter(t: &Telemetry, path: &str) -> u64 {
        t.with_metrics(|m| m.counter(path).unwrap_or(0)).unwrap()
    }

    fn drain<S: EventSource + ?Sized>(src: &S) -> Vec<EventRef> {
        let mut cursor = src.cursor();
        let mut out = Vec::new();
        while let Some(batch) = cursor.next_batch() {
            out.extend_from_slice(batch);
        }
        out
    }

    #[test]
    fn miss_then_hit_round_trips() {
        let dir = scratch_dir("hit");
        let w = by_name("stencil-default").unwrap();
        let telemetry = Telemetry::enabled_default();

        let store = TraceStore::at(&dir);
        store.set_telemetry(telemetry.clone());
        let first = store.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.miss"), 1);
        assert_eq!(counter(&telemetry, "trace_store.write"), 1);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 0);

        // Same store instance: memoized, no extra disk traffic.
        let again = store.get(w, Scale::Tiny);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(counter(&telemetry, "trace_store.miss"), 1);

        // Fresh instance over the same directory = a new process: must hit.
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        let loaded = store2.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(loaded.to_trace(), w.generate(Scale::Tiny));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_memory_reloads_from_disk() {
        let dir = scratch_dir("dropmem");
        let w = by_name("nw").unwrap();
        let telemetry = Telemetry::enabled_default();
        let store = TraceStore::at(&dir);
        store.set_telemetry(telemetry.clone());
        let first = store.get(w, Scale::Tiny);
        store.drop_memory();
        let second = store.get(w, Scale::Tiny);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(first.to_trace(), second.to_trace());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_hash_mismatch_invalidates() {
        let dir = scratch_dir("wlhash");
        let w = by_name("histo-large").unwrap();
        {
            let store = TraceStore::at(&dir);
            store.get(w, Scale::Tiny);
        }
        // A binary with different kernel sources would carry a different
        // hash; simulate one.
        let telemetry = Telemetry::enabled_default();
        let mut skewed = TraceStore::at(&dir);
        skewed.hash_salt = 1;
        skewed.set_telemetry(telemetry.clone());
        let t = skewed.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(counter(&telemetry, "trace_store.write"), 1);
        assert_eq!(t.to_trace(), w.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidation_is_per_workload() {
        let dir = scratch_dir("perworkload");
        let a = by_name("stencil-default").unwrap();
        let b = by_name("nw").unwrap();
        assert_ne!(a.suite, b.suite, "test needs workloads from two suites");
        let store = TraceStore::at(&dir);
        store.get(a, Scale::Tiny);
        store.get(b, Scale::Tiny);

        // Corrupt only B's stored hash (bytes 12..20: after magic+version),
        // simulating an edit to B's kernel sources.
        let path = store.path_for(b.name, Scale::Tiny);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len() + 4] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let telemetry = Telemetry::enabled_default();
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        store2.get(a, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 0);
        let t = store2.get(b, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(t.to_trace(), b.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_invalidates() {
        let dir = scratch_dir("version");
        let w = by_name("nw").unwrap();
        let store = TraceStore::at(&dir);
        store.get(w, Scale::Tiny);
        let path = store.path_for(w.name, Scale::Tiny);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len()] ^= 0xFF; // format version field
        std::fs::write(&path, &bytes).unwrap();

        let telemetry = Telemetry::enabled_default();
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        let t = store2.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(t.to_trace(), w.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_invalidates() {
        let dir = scratch_dir("truncate");
        let w = by_name("nw").unwrap();
        let store = TraceStore::at(&dir);
        store.get(w, Scale::Tiny);
        let path = store.path_for(w.name, Scale::Tiny);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let telemetry = Telemetry::enabled_default();
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        let t = store2.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(t.to_trace(), w.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scales_store_separately() {
        let dir = scratch_dir("scales");
        let w = by_name("stencil-default").unwrap();
        let store = TraceStore::at(&dir);
        let tiny = store.get(w, Scale::Tiny);
        let small = store.get(w, Scale::Small);
        assert!(tiny.event_count() < small.event_count());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_frames_split_and_round_trip() {
        let dir = scratch_dir("frames");
        let w = by_name("stencil-default").unwrap();
        let store = TraceStore::at(&dir).with_frame_events(64);
        let framed = store.get(w, Scale::Tiny);
        assert!(
            framed.frames().len() > 1,
            "a tiny trace over 64-event frames must span multiple frames"
        );
        assert_eq!(framed.to_trace(), w.generate(Scale::Tiny));

        // The frame table in the file agrees with what was served.
        let meta = read_meta(
            &store.path_for(w.name, Scale::Tiny),
            workload_hash(w),
            w.name,
            Scale::Tiny,
        )
        .unwrap_or_else(|_| panic!("fresh file must parse"));
        assert_eq!(meta.entries.len(), framed.frames().len());
        assert_eq!(meta.total_events, framed.event_count());

        // A store with a different frame size still serves the same file:
        // frame geometry is not part of the key.
        let telemetry = Telemetry::enabled_default();
        let other = TraceStore::at(&dir);
        other.set_telemetry(telemetry.clone());
        let reloaded = other.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(reloaded.to_trace(), w.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_source_streams_above_threshold() {
        let dir = scratch_dir("stream");
        let w = by_name("stencil-default").unwrap();
        let telemetry = Telemetry::enabled_default();
        let store = TraceStore::at(&dir).with_frame_events(64);
        store.set_telemetry(telemetry.clone());

        let source = store.replay_source(w, Scale::Tiny, 0);
        assert!(source.is_streamed(), "threshold 0 must stream");
        let streamed = drain(&source);
        assert_eq!(source.event_count(), streamed.len());

        // The drained cursor reported its stats.
        assert_eq!(counter(&telemetry, "trace.stream.replays"), 1);
        assert!(counter(&telemetry, "trace.stream.frames") > 1);
        assert!(counter(&telemetry, "trace.stream.bytes") > 0);

        // The decision is memoized: same handle next time.
        let again = store.replay_source(w, Scale::Tiny, 0);
        assert!(again.is_streamed());

        // Identical event stream vs the in-memory path — which, once
        // resident, wins over streaming on later calls.
        let memory = store.get(w, Scale::Tiny);
        assert_eq!(streamed, drain(&*memory));
        assert!(!store.replay_source(w, Scale::Tiny, 0).is_streamed());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_source_prefers_memory_below_threshold() {
        let dir = scratch_dir("nostream");
        let w = by_name("nw").unwrap();
        let store = TraceStore::at(&dir);
        let source = store.replay_source(w, Scale::Tiny, u64::MAX);
        assert!(!source.is_streamed());
        assert_eq!(
            drain(&source),
            drain(&*store.get(w, Scale::Tiny)),
            "memory replay source must match the stored trace"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_is_caught_at_streamed_open_and_regenerated() {
        let dir = scratch_dir("streamcorrupt");
        let w = by_name("nw").unwrap();
        let expect = {
            let store = TraceStore::at(&dir).with_frame_events(64);
            store.get(w, Scale::Tiny);
            let path = store.path_for(w.name, Scale::Tiny);
            // Flip one bit in the middle of the frame region: header,
            // footer, and trailer all still parse, so only the streamed
            // validation pass (or an in-memory load) can catch it.
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            w.generate(Scale::Tiny)
        };

        let telemetry = Telemetry::enabled_default();
        let store2 = TraceStore::at(&dir).with_frame_events(64);
        store2.set_telemetry(telemetry.clone());
        let source = store2.replay_source(w, Scale::Tiny, 0);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(counter(&telemetry, "trace_store.write"), 1);
        assert!(source.is_streamed(), "regenerated file streams again");
        let drained = drain(&source);
        let reference = PackedTrace::from_trace(&expect);
        assert_eq!(drained, drain(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_accesses_emit_spans() {
        let dir = scratch_dir("spans");
        let w = by_name("nw").unwrap();
        let spans = Spans::enabled();
        let store = TraceStore::at(&dir);
        store.set_spans(spans.clone());
        store.get(w, Scale::Tiny); // miss: load attempt, generate, write, adopt
        store.drop_memory();
        store.get(w, Scale::Tiny); // hit: load + validate
        let records = spans.records();
        let count = |name: &str| records.iter().filter(|r| r.name == name).count();
        // Miss: failed load, generate, write, adopt-load (with validate).
        // Hit: one load with validate.
        assert_eq!(count("trace.load"), 3);
        assert_eq!(count("trace.generate"), 1);
        assert_eq!(count("trace.write"), 1);
        assert_eq!(count("trace.validate"), 2);
        // Validate spans nest inside their load span on the same lane.
        let validate = records.iter().find(|r| r.name == "trace.validate").unwrap();
        assert_eq!(validate.depth, 1);
        assert!(records.iter().all(|r| r.dur_us.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
