//! Persistent on-disk trace store.
//!
//! The in-process [`crate::trace_cache`] amortizes trace generation *within*
//! one binary; every new process still regenerates all 30 kernels from the
//! DSL before it can simulate anything. This module persists each generated
//! trace — in the packed columnar layout of [`cbws_trace::PackedTrace`] — to
//! a versioned, checksummed file under `CBWS_TRACE_STORE_DIR` (default:
//! `target/trace-store/` of the workspace), so repeated sweeps, figure
//! regenerations, and CI runs skip DSL generation entirely and replay the
//! file zero-copy through a memory map.
//!
//! # File format (version 3, little-endian)
//!
//! | field | size | contents |
//! |---|---|---|
//! | magic | 8 | `b"CBWSTRCE"` |
//! | format version | 4 | `u32`, currently 3 |
//! | workload hash | 8 | FNV-1a over the sources this workload's trace depends on ([`workload_hash`]) |
//! | scale | 1 | 0 = tiny, 1 = small, 2 = full |
//! | name length | 2 | `u16` |
//! | name | var | workload name, UTF-8 |
//! | column checksums | 6 × 8 | FNV-1a of each payload column (`counts`, `tags`, `pcs`, `addr_deltas`, `alu_counts`, `block_ids`) |
//! | payload length | 8 | `u64` |
//! | payload | var | the exact [`PackedTrace::payload`] bytes |
//!
//! # Invalidation and fallback
//!
//! A file is only served when the magic, version, key (workload + scale),
//! workload hash, **and every column checksum** match. The workload hash
//! covers the DSL core plus the workload's own suite source file
//! ([`workload_hash`]), so editing one suite's kernels invalidates only
//! that suite's traces — the rest of the store stays warm. (Version 1
//! hashed *all* kernel sources into every file, so any kernel edit nuked
//! the whole store.) Any mismatch — corruption, version skew, hash skew —
//! is counted as `trace_store.invalidate`, reported with a `warn!`, and
//! falls back to regeneration (which rewrites the file); it never panics
//! and never changes simulation results.
//!
//! # Telemetry
//!
//! `trace_store.hit` / `.miss` / `.write` / `.invalidate` counters, plus
//! `trace_store.load_us` (time to map + verify + adopt a stored trace) and
//! `trace_store.generate_us` (time to generate + pack on a miss). With a
//! span collector attached ([`TraceStore::set_spans`]), each store access
//! additionally emits `trace.load` / `trace.validate` / `trace.generate` /
//! `trace.write` spans on the calling thread's timeline lane.

use crate::{Scale, Suite, WorkloadSpec};
use cbws_telemetry::{warn, Spans, Telemetry};
use cbws_trace::PackedTrace;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Magic bytes opening every trace-store file.
pub const MAGIC: &[u8; 8] = b"CBWSTRCE";

/// Current file-format version. Version 2 replaced the whole-binary DSL
/// hash with the per-workload [`workload_hash`]; version 3 switched the
/// payload's operand lanes to LEB128 varints (`cbws_trace::varint`), so
/// v2 payloads no longer parse and must be regenerated.
pub const FORMAT_VERSION: u32 = 3;

/// Environment variable selecting the store directory.
pub const DIR_ENV: &str = "CBWS_TRACE_STORE_DIR";

/// Number of per-column checksums in the header (mirrors
/// [`PackedTrace::columns`]).
const N_COLUMNS: usize = 6;

/// FNV-1a 64-bit hash — the store's checksum function. Not cryptographic;
/// it detects corruption and version skew, like the xxhash family used by
/// columnar formats, with no dependency.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sources every workload's trace depends on: the DSL core and the kernel
/// plumbing shared by all suites.
const COMMON_SOURCES: &[(&str, &str)] = &[
    ("lib.rs", include_str!("lib.rs")),
    ("dsl.rs", include_str!("dsl.rs")),
    ("kernels/mod.rs", include_str!("kernels/mod.rs")),
    ("kernels/helpers.rs", include_str!("kernels/helpers.rs")),
];

/// The source file holding `suite`'s kernel definitions.
fn suite_source(suite: Suite) -> (&'static str, &'static str) {
    match suite {
        Suite::Spec2006 => ("kernels/spec.rs", include_str!("kernels/spec.rs")),
        Suite::Parboil => ("kernels/parboil.rs", include_str!("kernels/parboil.rs")),
        Suite::Splash => ("kernels/splash.rs", include_str!("kernels/splash.rs")),
        Suite::Parsec => ("kernels/parsec.rs", include_str!("kernels/parsec.rs")),
        Suite::Rodinia => ("kernels/rodinia.rs", include_str!("kernels/rodinia.rs")),
        Suite::Linpack => ("kernels/linpack.rs", include_str!("kernels/linpack.rs")),
    }
}

/// Folds one source file into an FNV-1a state. The file is framed with its
/// name (NUL-separated) so content moving between files still changes the
/// hash.
fn fnv_fold(mut h: u64, name: &str, body: &str) -> u64 {
    for &b in name.as_bytes().iter().chain(&[0u8]).chain(body.as_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of the sources `workload`'s trace depends on, embedded at compile
/// time: the shared DSL core, the workload's own suite source file, and the
/// workload name. Stored traces carry this hash and are invalidated when it
/// changes — so editing `kernels/rodinia.rs` regenerates only the Rodinia
/// traces while every other suite's files keep hitting. The per-suite hash
/// states are folded once per process and cached.
pub fn workload_hash(workload: &WorkloadSpec) -> u64 {
    fn suite_state(suite: Suite) -> u64 {
        const SUITES: [Suite; 6] = [
            Suite::Spec2006,
            Suite::Parboil,
            Suite::Splash,
            Suite::Parsec,
            Suite::Rodinia,
            Suite::Linpack,
        ];
        static STATES: OnceLock<[u64; 6]> = OnceLock::new();
        let states = STATES.get_or_init(|| {
            let mut common: u64 = 0xcbf2_9ce4_8422_2325;
            for (name, body) in COMMON_SOURCES {
                common = fnv_fold(common, name, body);
            }
            SUITES.map(|s| {
                let (name, body) = suite_source(s);
                fnv_fold(common, name, body)
            })
        });
        let idx = SUITES
            .iter()
            .position(|&s| s == suite)
            .expect("every suite is enumerated");
        states[idx]
    }
    fnv_fold(suite_state(workload.suite), "workload", workload.name)
}

fn scale_code(scale: Scale) -> u8 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

/// Read-only memory map of a whole file (unix). Falls back to
/// [`std::fs::read`] when mapping fails or on other platforms.
#[cfg(unix)]
mod mmap {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned read-only mapping; unmapped on drop.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable (PROT_READ, MAP_PRIVATE) for its lifetime.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only; `None` on failure (caller
        /// falls back to reading the file).
        pub fn map(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                None
            } else {
                Some(Mmap { ptr, len })
            }
        }
    }

    impl AsRef<[u8]> for Mmap {
        fn as_ref(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Reads a store file as a shared buffer: memory-mapped where possible,
/// otherwise copied to the heap.
fn read_file_shared(path: &Path) -> std::io::Result<Arc<dyn AsRef<[u8]> + Send + Sync>> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    let len = usize::try_from(len)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
    #[cfg(unix)]
    if let Some(map) = mmap::Mmap::map(&file, len) {
        return Ok(Arc::new(map));
    }
    drop(file);
    Ok(Arc::new(std::fs::read(path)?))
}

/// Why a stored file could not be served.
enum LoadError {
    /// No file yet — a plain miss.
    Missing,
    /// The file exists but is invalid for this binary (corruption, version
    /// skew, workload-hash skew, wrong key). The reason is human-readable.
    Invalid(String),
}

fn invalid<T>(reason: impl Into<String>) -> Result<T, LoadError> {
    Err(LoadError::Invalid(reason.into()))
}

/// Parses and fully verifies a store file, returning the packed trace
/// backed by the (usually memory-mapped) file bytes.
fn load_file(
    path: &Path,
    want_hash: u64,
    want_name: &str,
    want_scale: Scale,
    spans: &Spans,
) -> Result<PackedTrace, LoadError> {
    let data = match read_file_shared(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LoadError::Missing),
        Err(e) => return invalid(format!("unreadable: {e}")),
    };
    let bytes: &[u8] = (*data).as_ref();
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8], LoadError> {
        let end = at.checked_add(n).filter(|&e| e <= bytes.len());
        match end {
            Some(end) => {
                let s = &bytes[*at..end];
                *at = end;
                Ok(s)
            }
            None => invalid(format!("truncated header at byte {at}")),
        }
    };
    if take(&mut at, MAGIC.len())? != MAGIC {
        return invalid("bad magic");
    }
    let version = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
    if version != FORMAT_VERSION {
        return invalid(format!(
            "format version {version}, this binary writes {FORMAT_VERSION}"
        ));
    }
    let file_hash = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    if file_hash != want_hash {
        return invalid(format!(
            "workload hash {file_hash:#018x} does not match this binary's {want_hash:#018x} \
             (this workload's sources changed)"
        ));
    }
    let scale = take(&mut at, 1)?[0];
    let name_len = usize::from(u16::from_le_bytes(take(&mut at, 2)?.try_into().unwrap()));
    let name = take(&mut at, name_len)?;
    if scale != scale_code(want_scale) || name != want_name.as_bytes() {
        return invalid("file key does not match its path");
    }
    let mut checksums = [0u64; N_COLUMNS];
    for c in &mut checksums {
        *c = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    }
    let payload_len = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    let payload_len = match usize::try_from(payload_len) {
        Ok(n) if at + n == bytes.len() => n,
        _ => return invalid("payload length disagrees with file size"),
    };
    let packed = match PackedTrace::from_shared_payload(data.clone(), at, payload_len) {
        Ok(p) => p,
        Err(e) => return invalid(format!("payload rejected: {e}")),
    };
    let _validate = spans.begin("trace.validate");
    for ((column, col_bytes), &want) in packed.columns().iter().zip(&checksums) {
        let got = fnv1a(col_bytes);
        if got != want {
            return invalid(format!(
                "column `{column}` checksum {got:#018x} != stored {want:#018x}"
            ));
        }
    }
    Ok(packed)
}

/// Serializes a packed trace into the version-2 file bytes.
fn encode_file(hash: u64, name: &str, scale: Scale, packed: &PackedTrace) -> Vec<u8> {
    let payload = packed.payload();
    let mut out = Vec::with_capacity(64 + name.len() + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&hash.to_le_bytes());
    out.push(scale_code(scale));
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    for (_, col) in packed.columns() {
        out.extend_from_slice(&fnv1a(col).to_le_bytes());
    }
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

type Slot = Arc<OnceLock<Arc<PackedTrace>>>;

/// A persistent, keyed store of packed traces. See the module docs.
///
/// One instance fronts one directory. Within the process it also memoizes
/// loaded traces per `(workload, scale)` (packed traces are ~4× smaller
/// than the `Vec<TraceEvent>` they replace, and memory-mapped files are
/// reclaimable clean pages, so no eviction budget is needed).
pub struct TraceStore {
    dir: PathBuf,
    /// XORed into every [`workload_hash`]; always 0 outside tests, which
    /// use it to simulate a binary built from different sources.
    hash_salt: u64,
    telemetry: Mutex<Telemetry>,
    spans: Mutex<Spans>,
    map: Mutex<HashMap<(&'static str, Scale), Slot>>,
}

impl TraceStore {
    /// A store over `dir` keyed by this binary's per-workload
    /// [`workload_hash`].
    pub fn at(dir: impl Into<PathBuf>) -> TraceStore {
        TraceStore {
            dir: dir.into(),
            hash_salt: 0,
            telemetry: Mutex::new(Telemetry::disabled()),
            spans: Mutex::new(Spans::disabled()),
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Routes the store's counters (`trace_store.*`) to `telemetry`.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock().unwrap_or_else(|e| e.into_inner()) = telemetry;
    }

    /// Routes the store's `trace.*` spans to `spans` (they appear on the
    /// calling thread's lane, nested inside whatever span is open there).
    pub fn set_spans(&self, spans: Spans) {
        *self.spans.lock().unwrap_or_else(|e| e.into_inner()) = spans;
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn spans(&self) -> Spans {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn path_for(&self, name: &str, scale: Scale) -> PathBuf {
        self.dir.join(format!("{name}-{scale}.cbwstrace"))
    }

    /// The packed trace for `(workload, scale)`: from process memory, else
    /// from a verified store file, else generated (and written back).
    /// Concurrent callers for one key block on a single load/generation.
    pub fn get(&self, workload: &'static WorkloadSpec, scale: Scale) -> Arc<PackedTrace> {
        let slot = {
            let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            map.entry((workload.name, scale))
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        slot.get_or_init(|| Arc::new(self.load_or_generate(workload, scale)))
            .clone()
    }

    /// Drops the in-process memoization (files stay). Subsequent `get`s
    /// reload from disk — used by benches to measure warm-disk loads and by
    /// tests to simulate a fresh process.
    pub fn drop_memory(&self) {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn load_or_generate(&self, workload: &'static WorkloadSpec, scale: Scale) -> PackedTrace {
        let telemetry = self.telemetry();
        let spans = self.spans();
        let hash = workload_hash(workload) ^ self.hash_salt;
        let path = self.path_for(workload.name, scale);
        let started = Instant::now();
        let load_span = spans.begin("trace.load");
        load_span.attr("workload", workload.name);
        let loaded = load_file(&path, hash, workload.name, scale, &spans);
        drop(load_span);
        match loaded {
            Ok(packed) => {
                telemetry.count("trace_store.hit", 1);
                telemetry.count("trace_store.load_us", started.elapsed().as_micros() as u64);
                return packed;
            }
            Err(LoadError::Missing) => {
                telemetry.count("trace_store.miss", 1);
            }
            Err(LoadError::Invalid(reason)) => {
                telemetry.count("trace_store.invalidate", 1);
                warn!(
                    "[trace-store] discarding {}: {reason}; regenerating",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
            }
        }
        let started = Instant::now();
        let gen_span = spans.begin("trace.generate");
        gen_span.attr("workload", workload.name);
        let packed = PackedTrace::from_trace(&workload.generate(scale));
        drop(gen_span);
        telemetry.count(
            "trace_store.generate_us",
            started.elapsed().as_micros() as u64,
        );
        let write_span = spans.begin("trace.write");
        match self.write_atomic(&path, &encode_file(hash, workload.name, scale, &packed)) {
            Ok(()) => telemetry.count("trace_store.write", 1),
            Err(e) => warn!(
                "[trace-store] cannot write {}: {e}; continuing without persistence",
                path.display()
            ),
        }
        drop(write_span);
        packed
    }

    /// Writes `bytes` to `path` via a temporary file + rename, so readers
    /// never observe a half-written store file.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = (|| {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

/// The process-wide store. Directory comes from `CBWS_TRACE_STORE_DIR`;
/// unset falls back to the workspace's `target/trace-store/`.
pub fn shared() -> &'static TraceStore {
    static SHARED: OnceLock<TraceStore> = OnceLock::new();
    SHARED.get_or_init(|| {
        let dir = std::env::var_os(DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/trace-store")
            });
        TraceStore::at(dir)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique per-test scratch directory (no tempfile dependency).
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cbws-trace-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn counter(t: &Telemetry, path: &str) -> u64 {
        t.with_metrics(|m| m.counter(path).unwrap_or(0)).unwrap()
    }

    #[test]
    fn miss_then_hit_round_trips() {
        let dir = scratch_dir("hit");
        let w = by_name("stencil-default").unwrap();
        let telemetry = Telemetry::enabled_default();

        let store = TraceStore::at(&dir);
        store.set_telemetry(telemetry.clone());
        let first = store.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.miss"), 1);
        assert_eq!(counter(&telemetry, "trace_store.write"), 1);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 0);

        // Same store instance: memoized, no extra disk traffic.
        let again = store.get(w, Scale::Tiny);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(counter(&telemetry, "trace_store.miss"), 1);

        // Fresh instance over the same directory = a new process: must hit.
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        let loaded = store2.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(loaded.to_trace(), w.generate(Scale::Tiny));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_memory_reloads_from_disk() {
        let dir = scratch_dir("dropmem");
        let w = by_name("nw").unwrap();
        let telemetry = Telemetry::enabled_default();
        let store = TraceStore::at(&dir);
        store.set_telemetry(telemetry.clone());
        let first = store.get(w, Scale::Tiny);
        store.drop_memory();
        let second = store.get(w, Scale::Tiny);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(first.to_trace(), second.to_trace());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_hash_mismatch_invalidates() {
        let dir = scratch_dir("wlhash");
        let w = by_name("histo-large").unwrap();
        {
            let store = TraceStore::at(&dir);
            store.get(w, Scale::Tiny);
        }
        // A binary with different kernel sources would carry a different
        // hash; simulate one.
        let telemetry = Telemetry::enabled_default();
        let mut skewed = TraceStore::at(&dir);
        skewed.hash_salt = 1;
        skewed.set_telemetry(telemetry.clone());
        let t = skewed.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(counter(&telemetry, "trace_store.write"), 1);
        assert_eq!(t.to_trace(), w.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidation_is_per_workload() {
        let dir = scratch_dir("perworkload");
        let a = by_name("stencil-default").unwrap();
        let b = by_name("nw").unwrap();
        assert_ne!(a.suite, b.suite, "test needs workloads from two suites");
        let store = TraceStore::at(&dir);
        store.get(a, Scale::Tiny);
        store.get(b, Scale::Tiny);

        // Corrupt only B's stored hash (bytes 12..20: after magic+version),
        // simulating an edit to B's suite sources.
        let path = store.path_for(b.name, Scale::Tiny);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len() + 4] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let telemetry = Telemetry::enabled_default();
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        store2.get(a, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 0);
        let t = store2.get(b, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.hit"), 1);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(t.to_trace(), b.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_invalidates() {
        let dir = scratch_dir("version");
        let w = by_name("nw").unwrap();
        let store = TraceStore::at(&dir);
        store.get(w, Scale::Tiny);
        let path = store.path_for(w.name, Scale::Tiny);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len()] ^= 0xFF; // format version field
        std::fs::write(&path, &bytes).unwrap();

        let telemetry = Telemetry::enabled_default();
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        let t = store2.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(t.to_trace(), w.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_invalidates() {
        let dir = scratch_dir("truncate");
        let w = by_name("nw").unwrap();
        let store = TraceStore::at(&dir);
        store.get(w, Scale::Tiny);
        let path = store.path_for(w.name, Scale::Tiny);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let telemetry = Telemetry::enabled_default();
        let store2 = TraceStore::at(&dir);
        store2.set_telemetry(telemetry.clone());
        let t = store2.get(w, Scale::Tiny);
        assert_eq!(counter(&telemetry, "trace_store.invalidate"), 1);
        assert_eq!(t.to_trace(), w.generate(Scale::Tiny));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scales_store_separately() {
        let dir = scratch_dir("scales");
        let w = by_name("stencil-default").unwrap();
        let store = TraceStore::at(&dir);
        let tiny = store.get(w, Scale::Tiny);
        let small = store.get(w, Scale::Small);
        assert!(tiny.event_count() < small.event_count());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_hash_is_stable_and_distinct() {
        let a = by_name("stencil-default").unwrap();
        let b = by_name("nw").unwrap();
        let c = by_name("histo-large").unwrap();
        assert_eq!(workload_hash(a), workload_hash(a));
        assert_ne!(workload_hash(a), 0);
        // Different suites hash apart, and so do different workloads of the
        // same suite (the name is folded in).
        assert_ne!(workload_hash(a), workload_hash(b));
        assert_eq!(a.suite, c.suite);
        assert_ne!(workload_hash(a), workload_hash(c));
    }

    #[test]
    fn store_accesses_emit_spans() {
        let dir = scratch_dir("spans");
        let w = by_name("nw").unwrap();
        let spans = Spans::enabled();
        let store = TraceStore::at(&dir);
        store.set_spans(spans.clone());
        store.get(w, Scale::Tiny); // miss: load attempt, generate, write
        store.drop_memory();
        store.get(w, Scale::Tiny); // hit: load + validate
        let records = spans.records();
        let count = |name: &str| records.iter().filter(|r| r.name == name).count();
        assert_eq!(count("trace.load"), 2);
        assert_eq!(count("trace.generate"), 1);
        assert_eq!(count("trace.write"), 1);
        assert_eq!(count("trace.validate"), 1);
        // The validate span nests inside the load span on the same lane.
        let validate = records.iter().find(|r| r.name == "trace.validate").unwrap();
        assert_eq!(validate.depth, 1);
        assert!(records.iter().all(|r| r.dur_us.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
