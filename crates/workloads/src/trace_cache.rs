//! Process-wide shared trace cache.
//!
//! The evaluation re-uses the same `(workload, scale)` trace many times: the
//! sweep runs every prefetcher over it, and the figure regenerators
//! (Figs. 1, 5, 12–15) each need the same traces again. Kernels are
//! deterministic, so regenerating is pure waste. This module generates each
//! trace **once** per `(workload, scale)` and hands out `Arc<Trace>` clones,
//! so all prefetcher runs — and all figure computations within one binary —
//! share a single in-memory copy.
//!
//! Invariants (relied on by the experiment engine, see DESIGN.md):
//!
//! * **Purity** — kernels are deterministic functions of `(name, scale)`;
//!   a cached trace is indistinguishable from a fresh one.
//! * **Single generation** — concurrent requests for the same key block on
//!   one generator; the kernel never runs twice for a key (pointer-equal
//!   `Arc`s witness this).
//! * **Bounded memory** — the cache evicts least-recently-used entries past
//!   a byte budget (`CBWS_TRACE_CACHE_BYTES`, default 1 GiB). Eviction only
//!   drops the cache's own reference: outstanding `Arc`s stay valid, and a
//!   later request simply regenerates. Timing changes, results never do.
//!
//! This cache materializes whole `Vec<TraceEvent>` traces, so it is the
//! wrong tool for [`Scale::Huge`]: a single huge trace can dwarf the whole
//! byte budget before eviction can help. Huge traces belong to the
//! persistent [`trace_store`](crate::trace_store), whose streamed replay
//! path keeps memory bounded regardless of trace length;
//! [`TraceCache::get`] debug-asserts against huge requests to catch the
//! mistake early.

use crate::{Scale, WorkloadSpec};
use cbws_trace::Trace;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default byte budget when `CBWS_TRACE_CACHE_BYTES` is unset.
pub const DEFAULT_BUDGET_BYTES: u64 = 1 << 30;

type Slot = Arc<OnceLock<Arc<Trace>>>;

struct Entry {
    slot: Slot,
    /// Monotone use counter value at last access (for LRU eviction).
    last_use: u64,
    /// Approximate heap footprint, filled in after generation.
    bytes: u64,
}

/// A keyed, byte-budgeted, LRU trace cache. See the module docs.
pub struct TraceCache {
    map: Mutex<CacheState>,
    budget_bytes: u64,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<(&'static str, Scale), Entry>,
    tick: u64,
}

impl TraceCache {
    /// Creates an empty cache with the given byte budget.
    pub fn with_budget(budget_bytes: u64) -> Self {
        TraceCache {
            map: Mutex::new(CacheState::default()),
            budget_bytes,
        }
    }

    /// Returns the shared trace for `(workload, scale)`, generating it on
    /// first request. Concurrent callers for the same key block on a single
    /// generation; all receive clones of the same `Arc`.
    ///
    /// Debug-asserts that `scale` is not [`Scale::Huge`]: huge traces must
    /// never be materialized in memory — replay them through the trace
    /// store's streaming path instead (see the module docs).
    pub fn get(&self, workload: &'static WorkloadSpec, scale: Scale) -> Arc<Trace> {
        debug_assert!(
            scale != Scale::Huge,
            "huge traces must stream through trace_store, not materialize in trace_cache \
             (workload {})",
            workload.name
        );
        let slot = {
            let mut state = self.map.lock().unwrap_or_else(|e| e.into_inner());
            state.tick += 1;
            let tick = state.tick;
            let entry = state
                .entries
                .entry((workload.name, scale))
                .or_insert_with(|| Entry {
                    slot: Arc::new(OnceLock::new()),
                    last_use: tick,
                    bytes: 0,
                });
            entry.last_use = tick;
            entry.slot.clone()
        };
        // Generate outside the map lock so other keys proceed in parallel;
        // `OnceLock` serializes same-key initializers.
        let freshly_generated = slot.get().is_none();
        let trace = slot
            .get_or_init(|| Arc::new(workload.generate(scale)))
            .clone();
        if freshly_generated {
            self.note_generated(workload.name, scale, trace.footprint_bytes());
        }
        trace
    }

    /// Records the footprint of a newly generated entry and evicts LRU
    /// entries (other than the one just used) past the byte budget.
    fn note_generated(&self, name: &'static str, scale: Scale, bytes: u64) {
        let mut state = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = state.entries.get_mut(&(name, scale)) {
            e.bytes = bytes;
        }
        let mut total: u64 = state.entries.values().map(|e| e.bytes).sum();
        while total > self.budget_bytes {
            let victim = state
                .entries
                .iter()
                .filter(|(k, e)| **k != (name, scale) && e.bytes > 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, e)| (*k, e.bytes));
            match victim {
                Some((key, freed)) => {
                    state.entries.remove(&key);
                    total -= freed;
                }
                None => break, // only the in-use entry remains
            }
        }
    }

    /// `(cached entries, total approximate bytes)` currently held.
    pub fn stats(&self) -> (usize, u64) {
        let state = self.map.lock().unwrap_or_else(|e| e.into_inner());
        (
            state.entries.len(),
            state.entries.values().map(|e| e.bytes).sum(),
        )
    }

    /// Drops every cached trace (outstanding `Arc`s stay valid).
    pub fn clear(&self) {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .clear();
    }
}

/// The process-wide cache. Budget comes from `CBWS_TRACE_CACHE_BYTES`
/// (bytes; invalid or unset falls back to [`DEFAULT_BUDGET_BYTES`]).
pub fn shared() -> &'static TraceCache {
    static SHARED: OnceLock<TraceCache> = OnceLock::new();
    SHARED.get_or_init(|| {
        let budget = std::env::var("CBWS_TRACE_CACHE_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_BUDGET_BYTES);
        TraceCache::with_budget(budget)
    })
}

/// Shorthand: the shared cache's trace for `(workload, scale)`.
pub fn generate_shared(workload: &'static WorkloadSpec, scale: Scale) -> Arc<Trace> {
    shared().get(workload, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    #[test]
    fn repeated_gets_are_pointer_equal() {
        let cache = TraceCache::with_budget(DEFAULT_BUDGET_BYTES);
        let w = by_name("stencil-default").unwrap();
        let a = cache.get(w, Scale::Tiny);
        let b = cache.get(w, Scale::Tiny);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn scales_are_distinct_keys() {
        let cache = TraceCache::with_budget(DEFAULT_BUDGET_BYTES);
        let w = by_name("stencil-default").unwrap();
        let tiny = cache.get(w, Scale::Tiny);
        let small = cache.get(w, Scale::Small);
        assert!(!Arc::ptr_eq(&tiny, &small));
        assert!(tiny.len() < small.len());
    }

    #[test]
    fn cached_trace_matches_fresh_generation() {
        let cache = TraceCache::with_budget(DEFAULT_BUDGET_BYTES);
        let w = by_name("histo-large").unwrap();
        let cached = cache.get(w, Scale::Tiny);
        let fresh = w.generate(Scale::Tiny);
        assert_eq!(cached.events(), fresh.events());
    }

    #[test]
    fn budget_evicts_lru_but_serves_correctly() {
        // A budget of 1 byte forces every new generation to evict the rest.
        let cache = TraceCache::with_budget(1);
        let a = by_name("stencil-default").unwrap();
        let b = by_name("nw").unwrap();
        let t1 = cache.get(a, Scale::Tiny);
        let _t2 = cache.get(b, Scale::Tiny); // evicts a's entry
        let (entries, _) = cache.stats();
        assert!(entries <= 1, "budget not enforced: {entries} entries");
        // The outstanding Arc stays valid and a re-get regenerates equal data.
        let t1_again = cache.get(a, Scale::Tiny);
        assert_eq!(t1.events(), t1_again.events());
    }

    #[test]
    fn clear_drops_entries() {
        let cache = TraceCache::with_budget(DEFAULT_BUDGET_BYTES);
        let w = by_name("nw").unwrap();
        let before = cache.get(w, Scale::Tiny);
        cache.clear();
        assert_eq!(cache.stats().0, 0);
        let after = cache.get(w, Scale::Tiny);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(before.events(), after.events());
    }

    #[test]
    fn shared_cache_is_a_singleton() {
        let w = by_name("mxm-linpack").unwrap();
        let a = generate_shared(w, Scale::Tiny);
        let b = shared().get(w, Scale::Tiny);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
