//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of the proptest 1.x API its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range/tuple/`Just`/`any`
//! strategies,
//! `collection::vec`, `prop_oneof!`, and the `proptest!`/`prop_assert*`
//! macros. Each test runs a fixed number of deterministically-seeded random
//! cases (seeded from the test name, so failures reproduce). There is no
//! shrinking: a failing case reports its inputs via `Debug` instead.

use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const NUM_CASES: u32 = 96;

pub mod test_runner {
    //! Deterministic RNG and case-level error plumbing.

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// SplitMix64: deterministic, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample from `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generates random values of an output type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, for [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_unsigned {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
        )*};
    }

    impl_range_unsigned!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_signed {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_range_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with random length in `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty => |$rng:ident| $body:expr),* $(,)?) => {$(
        impl strategy::Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, $rng: &mut test_runner::TestRng) -> $t {
                $body
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Re-export for `Range` strategies used through the prelude.
pub use std::ops::Range as _ProptestRange;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// Silence an unused-import warning when only macros are used.
#[doc(hidden)]
pub use std::ops::Range as __Range;

/// Declares property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`NUM_CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?} ",)*),
                        $(&$arg,)*
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {case}:\n  {msg}\n  inputs: {}",
                                stringify!($name),
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking
/// directly) so the harness can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Inequality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Rejects the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `Range<usize>` helper mirroring proptest's `SizeRange` conversions.
pub fn size_range(r: Range<usize>) -> Range<usize> {
    r
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        /// The macro surface itself works end to end.
        #[test]
        fn ranges_stay_in_bounds(v in 3u64..17, s in -5i64..5, flag in any::<bool>()) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-5..5).contains(&s), "s = {}", s);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn vec_and_oneof_compose(
            items in collection::vec(prop_oneof![0u32..4, 10u32..14], 0..20)
        ) {
            prop_assert!(items.len() < 20);
            for i in items {
                prop_assert!((i < 4) || (10..14).contains(&i));
            }
        }

        #[test]
        fn map_and_assume(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            let doubled = (0u32..10).prop_map(|x| x * 2);
            let mut rng = TestRng::deterministic("inner");
            let d = doubled.sample(&mut rng);
            prop_assert!(d % 2 == 0 && n % 2 == 0);
        }
    }
}
