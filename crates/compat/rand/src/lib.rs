//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of the rand 0.8 API the workload kernels use:
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and the [`Rng`]
//! sampling methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded via SplitMix64 — high-quality and deterministic, but
//! the streams differ from upstream rand's SmallRng, so absolute workload
//! contents differ from runs linked against the real crate (all simulator
//! results remain internally consistent; nothing in the evaluation depends
//! on the specific stream).

/// Core pseudo-random source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types sampleable from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased sample from `[0, span)` by rejection of the biased tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + uniform_u64(rng, (high - low) as u64) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                (low as i64 + uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the "standard" generator is the same engine here.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = SmallRng::seed_from_u64(7).gen();
        let b: u64 = SmallRng::seed_from_u64(7).gen();
        let c: u64 = SmallRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-64..64i64);
            assert!((-64..64).contains(&s));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn edge_probabilities() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
