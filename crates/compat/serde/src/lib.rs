//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under the same crate name.
//! Instead of serde's visitor-based zero-copy data model, everything routes
//! through an owned [`Value`] tree (the JSON data model): types implement
//! [`Serialize`] by converting themselves *to* a [`Value`] and
//! [`Deserialize`] by converting *from* one. The companion `serde_json`
//! crate renders and parses the textual form, and `serde_derive` provides
//! `#[derive(Serialize, Deserialize)]` matching serde's externally-tagged
//! representation for enums and the transparent representation for newtype
//! structs.
//!
//! Only the surface this workspace uses is implemented; it is not a general
//! serde replacement.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned tree in the JSON data model.
///
/// Objects preserve insertion order so serialized configs and manifests read
/// in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always < 0; non-negative integers use `UInt`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a field of an object value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type convertible to the JSON data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Extracts and deserializes one named field of an object (derive support).
pub fn from_field<T: Deserialize>(fields: &[(String, Value)], key: &str) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_u64().ok_or_else(|| Error::custom("expected usize"))?;
        usize::try_from(n).map_err(Error::custom)
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i16::from_value(&(-7i16).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, [1, 2, 3]);
    }

    #[test]
    fn signed_nonnegative_serializes_as_uint() {
        assert_eq!(5i64.to_value(), Value::UInt(5));
        assert_eq!((-5i64).to_value(), Value::Int(-5));
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(9)).unwrap(), Some(9));
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert!(v.get("b").is_none());
        assert!(from_field::<u64>(v.as_object().unwrap(), "b").is_err());
    }
}
