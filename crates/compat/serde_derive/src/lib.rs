//! Derive macros for the in-tree `serde` stand-in.
//!
//! The build environment has no registry access, so `syn`/`quote` are not
//! available; the input item is parsed by walking `proc_macro` token trees
//! directly and the generated impls are assembled as source strings. Only
//! the shapes used in this workspace are supported: non-generic structs
//! (named, newtype, tuple, unit) and non-generic enums with unit, newtype,
//! tuple, and struct variants. Representations match real serde: structs as
//! objects, newtype structs as their inner value, enums externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed item.
enum Item {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, ...)` with the number of fields.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skips leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a field-list token sequence at top-level commas, tracking
/// angle-bracket depth so `Map<K, V>` does not split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Extracts the field name from one named-field declaration.
fn field_name(tokens: &[TokenTree]) -> Option<String> {
    let i = skip_attrs_and_vis(tokens, 0);
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_top_level(&group_tokens)
        .iter()
        .filter_map(|f| field_name(f))
        .collect()
}

fn parse_variants(group_tokens: Vec<TokenTree>) -> Vec<Variant> {
    split_top_level(&group_tokens)
        .into_iter()
        .filter_map(|part| {
            let i = skip_attrs_and_vis(&part, 0);
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let shape = match part.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Tuple(split_top_level(&inner).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream().into_iter().collect()))
                }
                _ => VariantShape::Unit,
            };
            Some(Variant { name, shape })
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generic types are not supported by the in-tree serde stand-in");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream().into_iter().collect()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::TupleStruct {
                    name,
                    arity: split_top_level(&inner).len(),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream().into_iter().collect()),
            },
            other => panic!("derive: expected enum body, found {other:?}"),
        },
        other => panic!("derive: unsupported item kind `{other}`"),
    }
}

/// Derives `serde::Serialize` (to-`Value` conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Value::Object(vec![{}]))]),",
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("derive(Serialize): generated code parses")
}

/// Derives `serde::Deserialize` (from-`Value` conversion).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(fields, \"{f}\")?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let fields = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::custom(\"missing tuple element\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let items = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::custom(\"missing tuple element\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array\"))?;\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::from_field(fields, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let fields = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object\"))?;\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let Some(s) = v.as_str() {{\n\
                             #[allow(unreachable_patterns)]\n\
                             return match s {{\n\
                                 {}\n\
                                 _ => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{s}}`\"))),\n\
                             }};\n\
                         }}\n\
                         if let Some(fields) = v.as_object() {{\n\
                             if fields.len() == 1 {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 let _ = inner;\n\
                                 #[allow(unreachable_patterns)]\n\
                                 return match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }};\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(\"invalid value for enum {name}\"))\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("derive(Deserialize): generated code parses")
}
