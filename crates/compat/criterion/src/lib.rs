//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal wall-clock benchmarking harness under criterion's API surface:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark warms up briefly, then runs timed batches and reports the
//! median, minimum, and mean per-iteration time to stdout. There are no
//! statistical comparisons against saved baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(80);
/// Number of timed batches the measurement window is split into.
const BATCHES: usize = 16;

/// Drives one benchmark's timing loop.
pub struct Bencher {
    /// Per-iteration nanoseconds for each timed batch.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, calling it repeatedly: a short calibration/warm-up phase
    /// sizes the batches, then `BATCHES` timed batches are recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit one batch?
        let calibrate_start = Instant::now();
        let mut iters: u64 = 0;
        while calibrate_start.elapsed() < WARMUP {
            std_black_box(f());
            iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / iters.max(1) as f64;
        let batch = ((MEASURE.as_secs_f64() / BATCHES as f64) / per_iter).max(1.0) as u64;

        self.samples.clear();
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / batch as f64);
        }
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{name:<40} median {:>12}  min {:>12}  mean {:>12}",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(&name, &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            prefix: name,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Accepted for API compatibility; this harness sizes batches by wall
    /// clock (`MEASURE`/`BATCHES`), not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("x", |b| b.iter(|| black_box(3) * 2));
        g.finish();
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
    }
}
