//! In-tree stand-in for the `serde_json` crate: renders and parses JSON
//! text over the [`serde::Value`] data model of the vendored serde crate.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Integers that fit `u64`/`i64` parse losslessly;
//! everything else falls back to `f64`. Non-finite floats serialize as
//! `null`, matching the spirit of real serde_json's default behavior of
//! refusing them.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// JSON error (parse or data-model mismatch).
pub type Error = serde::Error;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is the shortest round-trip-exact
                // decimal form, so parsing recovers the bit pattern. Emit a
                // trailing `.0` for integral floats so the value reads as a
                // float (parsing as integer is still accepted).
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect_literal("\\u")?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v == 0 {
                        return Ok(Value::UInt(0));
                    }
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::Int(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0, -2.5, 1.0 / 3.0, 1e-300, 123456.789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn integral_float_reads_back_as_float_text() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<u64>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::Object(vec![
            ("z".into(), Value::UInt(1)),
            ("a".into(), Value::UInt(2)),
        ]);
        assert_eq!(to_string(&v).unwrap(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        // Surrogate pair for U+1F600.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::UInt(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": [\n"), "{s}");
    }
}
