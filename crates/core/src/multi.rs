//! Multi-context CBWS prediction.
//!
//! **Extension beyond the paper's evaluation.** The Fig. 8 hardware holds a
//! single tracking context, so switching between static blocks flushes all
//! cross-iteration state (`CbwsPredictor::block_begin`). Workloads that
//! alternate between two or more tight loops at a fine grain — fft's
//! per-stage loops, radix's histogram/permute phases — retrain on every
//! switch. This module keeps a small LRU-managed set of per-block
//! contexts, each a complete [`CbwsPredictor`], so returning to a recently
//! seen block resumes its history. Cost scales linearly: each context
//! carries the full Fig. 8 storage (≈1 KB). The `ext_comparison` binary
//! and the `ablations` bench quantify the benefit.

use crate::predictor::{cbws_metrics, cbws_params, CbwsConfig, CbwsPredictor, CbwsStats};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_prefetchers::{PrefetchContext, Prefetcher};
use cbws_telemetry::Telemetry;
use cbws_trace::{BlockId, LineAddr};

#[derive(Debug, Clone)]
struct Context {
    block: BlockId,
    predictor: CbwsPredictor,
    lru: u64,
}

/// A CBWS prefetcher with `contexts` independent per-block tracking
/// contexts, LRU-replaced.
#[derive(Debug, Clone)]
pub struct MultiCbwsPrefetcher {
    cfg: CbwsConfig,
    contexts: Vec<Context>,
    capacity: usize,
    active: Option<usize>,
    stamp: u64,
    context_evictions: u64,
    telemetry: Telemetry,
}

impl MultiCbwsPrefetcher {
    /// Creates a multi-context CBWS prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero or `cfg` is degenerate.
    pub fn new(cfg: CbwsConfig, contexts: usize) -> Self {
        assert!(contexts > 0, "at least one context required");
        // Validate the configuration eagerly.
        let _ = CbwsPredictor::new(cfg);
        MultiCbwsPrefetcher {
            cfg,
            contexts: Vec::with_capacity(contexts),
            capacity: contexts,
            active: None,
            stamp: 0,
            context_evictions: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A fresh per-block predictor wired to the attached telemetry sink.
    fn new_predictor(&self) -> CbwsPredictor {
        let mut p = CbwsPredictor::new(self.cfg);
        p.set_telemetry(self.telemetry.clone());
        p
    }

    /// Number of contexts currently allocated.
    pub fn allocated_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Contexts evicted due to capacity (block working-set thrash signal).
    pub fn context_evictions(&self) -> u64 {
        self.context_evictions
    }

    /// Aggregated statistics over all live contexts.
    pub fn stats(&self) -> CbwsStats {
        let mut acc = CbwsStats::default();
        for c in &self.contexts {
            let s = c.predictor.stats();
            acc.blocks += s.blocks;
            acc.prediction_hits += s.prediction_hits;
            acc.prediction_misses += s.prediction_misses;
            acc.vector_overflows += s.vector_overflows;
            acc.block_switches += s.block_switches;
        }
        acc
    }

    fn activate(&mut self, id: BlockId) -> usize {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(i) = self.contexts.iter().position(|c| c.block == id) {
            self.contexts[i].lru = stamp;
            return i;
        }
        if self.contexts.len() < self.capacity {
            self.contexts.push(Context {
                block: id,
                predictor: self.new_predictor(),
                lru: stamp,
            });
            return self.contexts.len() - 1;
        }
        let victim = self
            .contexts
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.lru)
            .map(|(i, _)| i)
            .expect("capacity > 0");
        self.context_evictions += 1;
        self.contexts[victim] = Context {
            block: id,
            predictor: self.new_predictor(),
            lru: stamp,
        };
        victim
    }
}

impl Describe for MultiCbwsPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let mut d = ComponentDescription::new(
            format!("CBWSx{}", self.capacity),
            ComponentKind::Prefetcher,
            "Multi-context CBWS: a small LRU-managed set of per-block tracking \
             contexts, each a complete Fig. 8 predictor, so returning to a \
             recently seen block resumes its cross-iteration history instead \
             of retraining. Cost scales linearly with the context count.",
        )
        .paper_section("§V (extension: per-block contexts)")
        .extension()
        .storage_bits(self.storage_bits())
        .param(ParamSpec::new(
            "contexts",
            "independent per-block tracking contexts, LRU-replaced",
            self.capacity.to_string(),
            "≥ 1",
        ))
        .metrics(cbws_metrics())
        .metrics(cbws_describe::instrumented_prefetcher_metrics());
        for p in cbws_params(&self.cfg) {
            d = d.param(ParamSpec::new(
                format!("cbws.{}", p.name),
                p.doc,
                p.default,
                p.range,
            ));
        }
        d
    }
}

impl Prefetcher for MultiCbwsPrefetcher {
    fn name(&self) -> &'static str {
        "CBWSxN"
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits() * self.capacity as u64
    }

    fn on_access(&mut self, ctx: &PrefetchContext, _out: &mut Vec<LineAddr>) {
        if let Some(i) = self.active {
            if self.cfg.observe_l1_hits || ctx.reached_l2() {
                self.contexts[i].predictor.observe(ctx.addr.line());
            }
        }
    }

    fn on_block_begin(&mut self, id: BlockId) {
        let i = self.activate(id);
        self.contexts[i].predictor.block_begin(id);
        self.active = Some(i);
    }

    fn on_block_end(&mut self, id: BlockId, out: &mut Vec<LineAddr>) {
        if let Some(i) = self.active.take() {
            if self.contexts[i].block == id {
                out.extend(self.contexts[i].predictor.block_end(id));
            }
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        for c in &mut self.contexts {
            c.predictor.set_telemetry(telemetry.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::{Addr, Pc};

    fn drive_block(pf: &mut MultiCbwsPrefetcher, id: u32, base: u64, iter: u64) -> Vec<LineAddr> {
        pf.on_block_begin(BlockId(id));
        let mut out = Vec::new();
        let ctx = PrefetchContext {
            pc: Pc(0x40),
            addr: Addr((base + iter * 32) * 64),
            is_store: false,
            l1_hit: true,
            l2_hit: true,
            in_block: true,
        };
        pf.on_access(&ctx, &mut out);
        pf.on_block_end(BlockId(id), &mut out);
        out
    }

    #[test]
    fn interleaved_blocks_keep_independent_histories() {
        // Alternate between two strided loops every iteration: a single
        // context would flush constantly; two contexts both converge.
        let mut pf = MultiCbwsPrefetcher::new(CbwsConfig::default(), 2);
        let mut last_a = Vec::new();
        let mut last_b = Vec::new();
        for i in 0..12 {
            last_a = drive_block(&mut pf, 0, 0x10000, i);
            last_b = drive_block(&mut pf, 1, 0x90000, i);
        }
        assert!(
            !last_a.is_empty(),
            "block 0 should predict despite interleaving"
        );
        assert!(
            !last_b.is_empty(),
            "block 1 should predict despite interleaving"
        );
        assert_eq!(pf.allocated_contexts(), 2);
        assert_eq!(pf.context_evictions(), 0);
    }

    #[test]
    fn single_context_baseline_thrashes_on_interleave() {
        // The same interleave with capacity 1 reproduces the paper's
        // single-context behaviour: every switch flushes.
        let mut pf = MultiCbwsPrefetcher::new(CbwsConfig::default(), 1);
        let mut last = Vec::new();
        for i in 0..12 {
            drive_block(&mut pf, 0, 0x10000, i);
            last = drive_block(&mut pf, 1, 0x90000, i);
        }
        assert!(
            last.is_empty(),
            "single context cannot survive interleaving"
        );
        assert!(pf.context_evictions() > 0);
    }

    #[test]
    fn lru_evicts_the_stalest_block() {
        let mut pf = MultiCbwsPrefetcher::new(CbwsConfig::default(), 2);
        drive_block(&mut pf, 0, 0, 0);
        drive_block(&mut pf, 1, 1 << 16, 0);
        drive_block(&mut pf, 0, 0, 1); // refresh block 0
        drive_block(&mut pf, 2, 1 << 20, 0); // evicts block 1
        assert_eq!(pf.allocated_contexts(), 2);
        let blocks: Vec<u32> = pf.contexts.iter().map(|c| c.block.0).collect();
        assert!(blocks.contains(&0) && blocks.contains(&2), "{blocks:?}");
    }

    #[test]
    fn storage_scales_with_contexts() {
        let one = MultiCbwsPrefetcher::new(CbwsConfig::default(), 1);
        let four = MultiCbwsPrefetcher::new(CbwsConfig::default(), 4);
        assert_eq!(four.storage_bits(), 4 * one.storage_bits());
        assert_eq!(one.storage_bits(), CbwsConfig::default().storage_bits());
    }

    #[test]
    fn aggregated_stats_cover_all_contexts() {
        let mut pf = MultiCbwsPrefetcher::new(CbwsConfig::default(), 2);
        for i in 0..5 {
            drive_block(&mut pf, 0, 0, i);
            drive_block(&mut pf, 1, 1 << 16, i);
        }
        assert_eq!(pf.stats().blocks, 10);
    }
}
