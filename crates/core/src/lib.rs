#![warn(missing_docs)]

//! The paper's contribution: the **code block working set (CBWS)**
//! prefetcher from *Loop-Aware Memory Prefetching Using Code Block Working
//! Sets* (Fuchs, Mannor, Weiser, Etsion — MICRO 2014).
//!
//! A CBWS is the ordered vector of distinct cache lines accessed by one
//! iteration of a compiler-annotated tight loop ([`CbwsVec`], Eq. 1).
//! Element-wise subtraction of two CBWS vectors gives a CBWS *differential*
//! ([`Differential`], Eq. 2) — a stride vector describing how the loop's
//! footprint evolves across iterations. Because the distribution of distinct
//! differentials is highly skewed (Fig. 5), a tiny (< 1 KB) hardware
//! structure can predict the complete working set of pending iterations and
//! prefetch it in lock-step.
//!
//! The crate provides:
//!
//! * [`CbwsVec`] / [`Differential`] — the formal objects;
//! * [`CbwsPredictor`] — the hardware model of Fig. 8: current-CBWS buffer,
//!   last-4-CBWS buffer, incremental multi-step differentials, history
//!   shift registers, and the 16-entry differential history table
//!   (Algorithm 1);
//! * [`CbwsPrefetcher`] — the standalone policy (prefetch only on a history
//!   table hit);
//! * [`CbwsSmsPrefetcher`] — the headline CBWS+SMS hybrid that falls back
//!   to spatial memory streaming when CBWS has no confident prediction;
//! * [`analysis`] — offline CBWS reconstruction backing Figs. 3-5.
//!
//! # Example
//!
//! ```
//! use cbws_core::{CbwsConfig, CbwsPredictor};
//! use cbws_trace::{BlockId, LineAddr};
//!
//! let mut p = CbwsPredictor::new(CbwsConfig::default());
//! // A tight loop striding 16 lines per iteration over two arrays.
//! let mut predicted = Vec::new();
//! for i in 0..12u64 {
//!     p.block_begin(BlockId(0));
//!     p.observe(LineAddr(0x1000 + i * 16));
//!     p.observe(LineAddr(0x8000 + i * 16));
//!     predicted = p.block_end(BlockId(0));
//! }
//! // In steady state the predictor prefetches the next iteration's
//! // complete working set.
//! assert!(predicted.contains(&LineAddr(0x1000 + 12 * 16)));
//! assert!(predicted.contains(&LineAddr(0x8000 + 12 * 16)));
//! ```

pub mod analysis;
mod hybrid;
mod multi;
mod predictor;
mod vector;

pub use hybrid::{CbwsSmsPrefetcher, HybridStats, SmsSuppression};
pub use multi::MultiCbwsPrefetcher;
pub use predictor::{CbwsConfig, CbwsPredictor, CbwsPrefetcher, CbwsStats};
pub use vector::{CbwsVec, Differential};
